//! F2 integration: the full Figure 2 pipeline, end to end, with the
//! invariants that make the framework trustworthy as a testbed:
//! conservation of bytes, zero misrouting, determinism, and the
//! configure-before-grant ordering.

use xdsched::prelude::*;

/// Test shorthand over `SimBuilder` (the positional shape the old
/// constructor had).
fn sim(
    cfg: NodeConfig,
    workload: Workload,
    scheduler: Box<dyn Scheduler>,
    estimator: Box<dyn DemandEstimator>,
) -> HybridSim {
    SimBuilder::new(cfg)
        .workload(workload)
        .scheduler(scheduler)
        .estimator(estimator)
        .build()
        .expect("test sim must build")
}

fn fast_cfg(n: usize, reconfig_ns: u64) -> NodeConfig {
    NodeConfig::fast(
        n,
        SimDuration::from_nanos(reconfig_ns),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    )
}

fn uniform_flows(n: usize, load: f64, seed: u64, size: u64) -> Workload {
    Workload::flows(FlowGenerator::with_load(
        TrafficMatrix::uniform(n),
        FlowSizeDist::Fixed(size),
        load,
        BitRate::GBPS_10,
        SimRng::new(seed),
    ))
}

#[test]
fn no_misrouting_ever_in_hardware_mode() {
    // The OCS rejects dark-window or wrong-circuit transmissions; the
    // framework's grant discipline must make rejections impossible.
    for reconfig in [100u64, 10_000, 1_000_000] {
        let n = 8;
        let cfg = fast_cfg(n, reconfig);
        // Enough horizon for several epochs even at millisecond switching.
        let horizon = SimTime::ZERO + cfg.epoch * 6 + SimDuration::from_millis(10);
        let r = sim(
            cfg,
            uniform_flows(n, 0.5, 11, 150_000),
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(horizon);
        assert_eq!(r.ocs.rejected, 0, "reconfig={reconfig}ns");
        assert_eq!(r.drops.sync_violation, 0);
        assert!(r.delivered_ocs_bytes > 0);
    }
}

#[test]
fn byte_conservation_with_drainage() {
    // Stop flow injection early, run long: everything offered must be
    // delivered (zero drops configured ⇒ zero loss).
    let n = 4;
    let w = uniform_flows(n, 0.4, 13, 150_000).with_flow_stop(SimTime::from_millis(1));
    let r = sim(
        fast_cfg(n, 1_000),
        w,
        Box::new(IslipScheduler::new(n, 3)),
        Box::new(MirrorEstimator::new(n)),
    )
    .run(SimTime::from_millis(30));
    assert_eq!(r.drops.total(), 0);
    assert_eq!(
        r.delivered_bytes(),
        r.offered_bytes,
        "all offered bytes must eventually arrive"
    );
    assert_eq!(r.completed_flows, r.offered_flows);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let n = 8;
        let apps = vec![CbrApp::voip(0, PortNo(0), PortNo(4), SimTime::ZERO)];
        sim(
            fast_cfg(n, 5_000),
            uniform_flows(n, 0.6, 17, 80_000).with_apps(apps),
            Box::new(SolsticeScheduler::new(4)),
            Box::new(EwmaEstimator::new(n, 0.3)),
        )
        .run(SimTime::from_millis(8))
    };
    let a = run();
    let b = run();
    assert_eq!(a.events, b.events);
    assert_eq!(a.delivered_ocs_bytes, b.delivered_ocs_bytes);
    assert_eq!(a.delivered_eps_bytes, b.delivered_eps_bytes);
    assert_eq!(a.latency_bulk.p99(), b.latency_bulk.p99());
    assert_eq!(a.ocs.reconfigurations, b.ocs.reconfigurations);
    assert_eq!(a.peak_switch_buffer, b.peak_switch_buffer);
}

#[test]
fn different_seeds_give_different_runs() {
    let run = |seed| {
        let n = 4;
        sim(
            fast_cfg(n, 1_000),
            uniform_flows(n, 0.5, seed, 150_000),
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(5))
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.offered_bytes, b.offered_bytes);
}

#[test]
fn short_flows_ride_the_eps_bulk_rides_the_ocs() {
    let n = 4;
    // 50 KB flows are below the default 100 KB bulk threshold → EPS.
    let short = sim(
        fast_cfg(n, 1_000),
        uniform_flows(n, 0.05, 19, 50_000),
        Box::new(IslipScheduler::new(n, 3)),
        Box::new(MirrorEstimator::new(n)),
    )
    .run(SimTime::from_millis(5));
    assert_eq!(short.delivered_ocs_bytes, 0);
    assert!(short.delivered_eps_bytes > 0);

    // 200 KB flows are bulk → OCS.
    let bulk = sim(
        fast_cfg(n, 1_000),
        uniform_flows(n, 0.3, 19, 200_000),
        Box::new(IslipScheduler::new(n, 3)),
        Box::new(MirrorEstimator::new(n)),
    )
    .run(SimTime::from_millis(5));
    assert!(bulk.delivered_ocs_bytes > 0);
    assert_eq!(bulk.delivered_eps_bytes, 0);
}

#[test]
fn faster_switching_means_less_dark_time_same_workload() {
    let n = 8;
    let mut dark = Vec::new();
    for reconfig in [100u64, 100_000] {
        let r = sim(
            fast_cfg(n, reconfig),
            uniform_flows(n, 0.5, 23, 150_000),
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(10));
        dark.push((r.ocs_duty_cycle(), r.throughput_gbps()));
    }
    assert!(
        dark[0].0 > dark[1].0,
        "ns switching must waste less time dark: {dark:?}"
    );
}

#[test]
fn epoch_cadence_matches_decisions() {
    let n = 4;
    let cfg = fast_cfg(n, 1_000);
    let epoch = cfg.epoch;
    let horizon = SimTime::from_millis(5);
    let r = sim(
        cfg,
        uniform_flows(n, 0.3, 29, 150_000),
        Box::new(IslipScheduler::new(n, 3)),
        Box::new(MirrorEstimator::new(n)),
    )
    .run(horizon);
    let expected = horizon.saturating_since(SimTime::ZERO) / epoch;
    let got = r.decisions;
    assert!(
        got.abs_diff(expected) <= 2,
        "expected ≈{expected} epochs, got {got}"
    );
}

#[test]
fn all_estimators_run_the_full_stack() {
    let n = 4;
    let mk: Vec<Box<dyn xdsched::core::demand::DemandEstimator>> = vec![
        Box::new(MirrorEstimator::new(n)),
        Box::new(EwmaEstimator::new(n, 0.25)),
        Box::new(WindowEstimator::new(n, SimDuration::from_micros(200))),
        Box::new(CountMinEstimator::new(
            n,
            4,
            64,
            SimDuration::from_millis(1),
        )),
    ];
    for est in mk {
        let r = sim(
            fast_cfg(n, 1_000),
            uniform_flows(n, 0.4, 31, 150_000),
            Box::new(GreedyLqfScheduler::new()),
            est,
        )
        .run(SimTime::from_millis(5));
        assert!(r.delivered_bytes() > 0);
        assert!(r.demand_error_mean.is_some());
    }
}
