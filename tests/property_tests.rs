//! Property-based tests (proptest) on the core data structures and
//! invariants: permutations/matchings, schedules, histograms, LPM,
//! checksums, traffic matrices and the demand pipeline.

use proptest::prelude::*;
use xdsched::core::demand::DemandMatrix;
use xdsched::core::sched::{
    BvnScheduler, GreedyLqfScheduler, HungarianScheduler, IslipScheduler, ScheduleCtx, Scheduler,
    SolsticeScheduler, WavefrontScheduler,
};
use xdsched::metrics::LatencyHistogram;
use xdsched::net::classify::LpmTable;
use xdsched::net::wire::{checksum, Ipv4Addr};
use xdsched::prelude::*;

fn ctx() -> ScheduleCtx {
    ScheduleCtx {
        now: SimTime::ZERO,
        line_rate: BitRate::GBPS_10,
        reconfig: SimDuration::from_micros(1),
        epoch: SimDuration::from_micros(100),
        max_entries: 6,
    }
}

/// Strategy: a demand matrix over n ports with arbitrary entries.
fn demand_strategy(n: usize) -> impl Strategy<Value = DemandMatrix> {
    proptest::collection::vec(0u64..2_000_000, n * n).prop_map(move |mut v| {
        for i in 0..n {
            v[i * n + i] = 0;
        }
        DemandMatrix::from_vec(n, v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_scheduler_emits_valid_schedules(demand in demand_strategy(8), seed in 0u64..1000) {
        let n = 8;
        let c = ctx();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(WavefrontScheduler::new(n)),
            Box::new(GreedyLqfScheduler::new()),
            Box::new(HungarianScheduler::new()),
            Box::new(BvnScheduler::new(6)),
            Box::new(SolsticeScheduler::new(6)),
            Box::new(PimScheduler::new(n, 3, SimRng::new(seed))),
        ];
        for s in &mut schedulers {
            let sched = s.schedule(&demand, &c);
            prop_assert!(sched.validate(&c, n).is_ok(), "{} invalid: {:?}", s.name(), sched);
            // Circuits are only configured for pairs with demand (TDMA excepted, not in this list).
            for e in &sched.entries {
                for (i, j) in e.perm.pairs() {
                    prop_assert!(demand.get(i, j) > 0, "{} granted empty pair ({i},{j})", s.name());
                }
            }
        }
    }

    #[test]
    fn hungarian_dominates_greedy_weight(demand in demand_strategy(6)) {
        let h = HungarianScheduler::matching(&demand);
        let g = GreedyLqfScheduler::matching(&demand);
        let wh: u64 = h.pairs().map(|(i, j)| demand.get(i, j)).sum();
        let wg: u64 = g.pairs().map(|(i, j)| demand.get(i, j)).sum();
        prop_assert!(wh >= wg, "optimal {wh} < greedy {wg}");
        // ½-approximation bound of greedy maximal matching.
        prop_assert!(2 * wg >= wh, "greedy {wg} below half of optimal {wh}");
    }

    #[test]
    fn bvn_decomposition_never_over_serves(demand in demand_strategy(6)) {
        let decomp = BvnScheduler::decompose(&demand, 32);
        let n = demand.n();
        let mut served = DemandMatrix::zero(n);
        for (perm, w) in &decomp {
            perm.check_invariants().unwrap();
            for (i, j) in perm.pairs() {
                served.add(i, j, *w);
            }
        }
        for s in 0..n {
            for d in 0..n {
                prop_assert!(served.get(s, d) <= demand.get(s, d),
                    "pair ({s},{d}) served {} of {}", served.get(s, d), demand.get(s, d));
            }
        }
    }

    #[test]
    fn random_permutations_satisfy_invariants(seed in 0u64..10_000, n in 2usize..64) {
        let mut rng = SimRng::new(seed);
        let p = Permutation::random(n, &mut rng);
        prop_assert!(p.is_full());
        p.check_invariants().unwrap();
        // output_of and input_of are inverse.
        for i in 0..n {
            let o = p.output_of(i).unwrap();
            prop_assert_eq!(p.input_of(o), Some(i));
        }
    }

    #[test]
    fn histogram_quantiles_within_bound(values in proptest::collection::vec(1u64..1_000_000_000, 1..500)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let approx = h.quantile(q) as f64;
            let rel = (approx - exact).abs() / exact;
            prop_assert!(rel <= 2.0 / 64.0 + 1e-9, "q={q} approx={approx} exact={exact}");
        }
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    #[test]
    fn histogram_merge_equals_combined_recording(a in proptest::collection::vec(1u64..1_000_000, 0..100),
                                                 b in proptest::collection::vec(1u64..1_000_000, 0..100)) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hc = LatencyHistogram::new();
        for &v in &a { ha.record(v); hc.record(v); }
        for &v in &b { hb.record(v); hc.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }

    #[test]
    fn lpm_matches_linear_reference(entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 0..40),
                                    probes in proptest::collection::vec(any::<u32>(), 0..40)) {
        let mut table = LpmTable::new();
        for (i, &(addr, len)) in entries.iter().enumerate() {
            table.insert(Ipv4Addr::from_u32(addr), len, i);
        }
        let mask = |len: u8| -> u32 {
            match len {
                0 => 0,
                32 => u32::MAX,
                _ => !(u32::MAX >> len),
            }
        };
        for &probe in &probes {
            // Linear reference: longest matching prefix, later insertions
            // replace earlier identical prefixes.
            let mut best: Option<(u8, usize)> = None;
            for (i, &(addr, len)) in entries.iter().enumerate() {
                if addr & mask(len) == probe & mask(len) {
                    // Same (masked prefix, len) inserted later replaces.
                    let replace = match best {
                        None => true,
                        Some((blen, bi)) => {
                            len > blen
                                || (len == blen
                                    && entries[bi].0 & mask(blen) == addr & mask(len))
                        }
                    };
                    if replace {
                        best = Some((len, i));
                    }
                }
            }
            let got = table.lookup(Ipv4Addr::from_u32(probe)).copied();
            prop_assert_eq!(got.map(|_| ()), best.map(|_| ()), "presence mismatch for {:#x}", probe);
            if let (Some(g), Some((blen, _))) = (got, best) {
                // The trie returns *some* entry with the longest length;
                // verify the prefix length matches the reference.
                let (gaddr, glen) = entries[g];
                prop_assert_eq!(glen, blen);
                prop_assert_eq!(gaddr & mask(glen), probe & mask(glen));
            }
        }
    }

    #[test]
    fn internet_checksum_verifies_and_detects(words in proptest::collection::vec(any::<u16>(), 1..32),
                                              flip in 0usize..64) {
        // Even-length data (checksummed messages are word-aligned; an odd
        // tail would shift the appended checksum's word boundary).
        let data: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        // Append the checksum; the summed whole must verify.
        let c = checksum::checksum(&data);
        let mut msg = data.clone();
        msg.extend_from_slice(&c.to_be_bytes());
        prop_assert_eq!(checksum::sum(&msg), 0xffff);
        // Flip one byte: verification must fail (ones-complement detects
        // all single-byte errors).
        let at = flip % data.len();
        let mut bad = msg.clone();
        bad[at] ^= 0x5a;
        prop_assert_ne!(checksum::sum(&bad), 0xffff);
    }

    #[test]
    fn traffic_matrix_sampling_never_hits_diagonal(n in 2usize..16, seed in 0u64..500) {
        let mut rng = SimRng::new(seed);
        let m = TrafficMatrix::zipf(n, 1.0, &mut rng);
        for _ in 0..100 {
            let (s, d) = m.sample_pair(&mut rng);
            prop_assert!(s < n && d < n);
            prop_assert_ne!(s, d);
        }
    }

    #[test]
    fn packetize_conserves_bytes(bytes in 0u64..10_000_000, mtu in 64u32..9000) {
        let total: u64 = xds_traffic_packet_sizes(bytes, mtu);
        prop_assert_eq!(total, bytes);
    }
}

fn xds_traffic_packet_sizes(bytes: u64, mtu: u32) -> u64 {
    xdsched::traffic::packet_sizes(bytes, mtu)
        .map(u64::from)
        .sum()
}
