//! E5-flavoured integration: every shipped scheduler runs the full stack
//! on the canonical traffic patterns, and the qualitative orderings the
//! literature predicts actually hold.

use xdsched::prelude::*;

/// Test shorthand over `SimBuilder` (the positional shape the old
/// constructor had).
fn sim(
    cfg: NodeConfig,
    workload: Workload,
    scheduler: Box<dyn Scheduler>,
    estimator: Box<dyn DemandEstimator>,
) -> HybridSim {
    SimBuilder::new(cfg)
        .workload(workload)
        .scheduler(scheduler)
        .estimator(estimator)
        .build()
        .expect("test sim must build")
}

fn cfg(n: usize) -> NodeConfig {
    NodeConfig::fast(
        n,
        SimDuration::from_micros(1),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    )
}

fn workload(_n: usize, matrix: TrafficMatrix, load: f64, seed: u64) -> Workload {
    // Mixed sizes: short flows exercise the EPS path, elephants the OCS
    // path — so even the EPS-only baseline has something to deliver.
    Workload::flows(FlowGenerator::with_load(
        matrix,
        FlowSizeDist::WebSearch,
        load,
        BitRate::GBPS_10,
        SimRng::new(seed),
    ))
}

fn bulk_workload(_n: usize, matrix: TrafficMatrix, load: f64, seed: u64) -> Workload {
    // All-bulk fixed-size flows: every byte needs a circuit grant.
    Workload::flows(FlowGenerator::with_load(
        matrix,
        FlowSizeDist::Fixed(150_000),
        load,
        BitRate::GBPS_10,
        SimRng::new(seed),
    ))
}

fn all_schedulers(n: usize) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(TdmaScheduler::new(n)),
        Box::new(IslipScheduler::new(n, 3)),
        Box::new(PimScheduler::new(n, 3, SimRng::new(77))),
        Box::new(RrmScheduler::new(n, 3)),
        Box::new(WavefrontScheduler::new(n)),
        Box::new(GreedyLqfScheduler::new()),
        Box::new(HungarianScheduler::new()),
        Box::new(BvnScheduler::new(4)),
        Box::new(SolsticeScheduler::new(4)),
        Box::new(HotspotScheduler::new(50_000)),
        Box::new(EpsOnlyScheduler::new()),
    ]
}

#[test]
fn every_scheduler_survives_every_pattern() {
    let n = 8;
    let mut rng = SimRng::new(3);
    let patterns = vec![
        TrafficMatrix::uniform(n),
        TrafficMatrix::permutation(n, 3),
        TrafficMatrix::hotspot(n, 2, 0.5, 0),
        TrafficMatrix::zipf(n, 1.2, &mut rng),
        TrafficMatrix::incast(n, 4, 0),
    ];
    for m in patterns {
        for s in all_schedulers(n) {
            let name = s.name();
            let r = sim(
                cfg(n),
                workload(n, m.clone(), 0.2, 5),
                s,
                Box::new(MirrorEstimator::new(n)),
            )
            .run(SimTime::from_millis(3));
            assert!(r.delivered_bytes() > 0, "{name} delivered nothing on {m:?}");
            assert_eq!(r.ocs.rejected, 0, "{name} misrouted");
        }
    }
}

#[test]
fn demand_aware_beats_tdma_on_skewed_traffic() {
    let n = 8;
    let matrix = TrafficMatrix::hotspot(n, 2, 0.7, 0);
    let run = |s: Box<dyn Scheduler>| {
        sim(
            cfg(n),
            workload(n, matrix.clone(), 0.35, 7),
            s,
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(10))
    };
    let tdma = run(Box::new(TdmaScheduler::new(n)));
    let islip = run(Box::new(IslipScheduler::new(n, 3)));
    let solstice = run(Box::new(SolsticeScheduler::new(4)));
    assert!(
        islip.delivered_bytes() > tdma.delivered_bytes(),
        "islip {} vs tdma {}",
        islip.delivered_bytes(),
        tdma.delivered_bytes()
    );
    assert!(
        solstice.delivered_bytes() > tdma.delivered_bytes(),
        "solstice {} vs tdma {}",
        solstice.delivered_bytes(),
        tdma.delivered_bytes()
    );
}

#[test]
fn hybrid_beats_eps_only_for_bulk_traffic() {
    let n = 8;
    let run = |s: Box<dyn Scheduler>| {
        sim(
            cfg(n),
            workload(n, TrafficMatrix::uniform(n), 0.4, 9),
            s,
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(10))
    };
    let hybrid = run(Box::new(IslipScheduler::new(n, 3)));
    let eps_only = run(Box::new(EpsOnlyScheduler::new()));
    // The EPS is 1/10 line rate: bulk-heavy traffic needs the circuits.
    assert!(
        hybrid.delivered_bytes() > 2 * eps_only.delivered_bytes(),
        "hybrid {} vs eps-only {}",
        hybrid.delivered_bytes(),
        eps_only.delivered_bytes()
    );
}

#[test]
fn multi_entry_schedulers_reconfigure_more_but_cover_more_pairs() {
    let n = 8;
    // Demand spread over 2 disjoint permutations.
    let mut w = vec![0.0; n * n];
    for i in 0..n {
        w[i * n + (i + 1) % n] = 1.0;
        w[i * n + (i + 3) % n] = 1.0;
    }
    let matrix = TrafficMatrix::from_weights(n, w).unwrap();
    let run = |s: Box<dyn Scheduler>| {
        sim(
            cfg(n),
            bulk_workload(n, matrix.clone(), 0.4, 11),
            s,
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(10))
    };
    let single = run(Box::new(HungarianScheduler::new()));
    let multi = run(Box::new(BvnScheduler::new(4)));
    assert!(
        multi.ocs.reconfigurations > single.ocs.reconfigurations,
        "decomposition pays more reconfigurations"
    );
    // And turns them into at least comparable delivery.
    assert!(multi.delivered_bytes() * 10 > single.delivered_bytes() * 8);
}

#[test]
fn permutation_traffic_is_the_ocs_best_case() {
    let n = 8;
    let run = |m: TrafficMatrix| {
        sim(
            cfg(n),
            bulk_workload(n, m, 0.5, 13),
            Box::new(HungarianScheduler::new()),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(10))
    };
    let perm = run(TrafficMatrix::permutation(n, 1));
    let incast = run(TrafficMatrix::incast(n, 7, 0));
    // A permutation saturates all circuits; incast can use only one.
    assert!(
        perm.delivered_ocs_bytes > 3 * incast.delivered_ocs_bytes,
        "perm {} vs incast {}",
        perm.delivered_ocs_bytes,
        incast.delivered_ocs_bytes
    );
}
