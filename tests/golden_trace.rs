//! Golden-trace regression tests: pinned-seed end-to-end runs whose full
//! [`RunReport`](xds_core::report::RunReport) serialization is snapshotted
//! under `tests/golden/` and asserted **byte-identical** on every run.
//!
//! The snapshots were captured on `main` *before* the hot-path runtime
//! overhaul (schedule slab ids in the event queue, scratch-buffer reuse,
//! borrowed permutations), so they pin the pre-refactor behavior: any
//! event-ordering or accounting drift introduced by a performance change
//! fails these tests with a precise field-level diff.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! XDS_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and commit the diff with an explanation of why the behavior moved.

use std::path::{Path, PathBuf};

use xds_scenario::{
    library, InstrProfile, PlacementKind, ScenarioSpec, SchedulerKind, SwModelKind, SyncSpec,
    TrafficPattern,
};
use xds_sim::SimDuration;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The fast-mode (hardware placement) golden point: the `websearch`
/// catalogue entry — heavy-tailed sizes exercise the EPS (mice) and OCS
/// (elephants) paths plus the FCT machinery — pinned to seed 42.
fn fast_spec() -> ScenarioSpec {
    library::scenario("websearch")
        .expect("catalogue entry")
        .with_name("golden-fast")
        .with_seed(42)
        .with_duration(SimDuration::from_millis(3))
}

/// The slow-mode (software placement) golden point: a hotspot workload
/// with PTP-grade sync and a guard band — exercises host VOQs, control-
/// channel grants, skewed-clock transmission and sync-violation
/// accounting — pinned to seed 7.
fn slow_spec() -> ScenarioSpec {
    ScenarioSpec::new("golden-slow")
        .with_ports(8)
        .with_pattern(TrafficPattern::Hotspot {
            pairs: 2,
            fraction: 0.6,
            offset: 0,
        })
        .with_scheduler(SchedulerKind::Hotspot {
            threshold_bytes: 10_000,
        })
        .with_placement(PlacementKind::Software {
            model: SwModelKind::TunedUserspace,
            sync: SyncSpec::Ptp,
        })
        .with_reconfig(SimDuration::from_micros(100))
        .with_epoch(SimDuration::from_millis(1))
        .with_guard(SimDuration::from_micros(5))
        .with_seed(7)
        .with_duration(SimDuration::from_millis(12))
}

/// The fault-storm golden point: the `fault-storm` catalogue entry —
/// the websearch mix with every fault family armed (link flaps, OCS
/// misfires, scheduler stalls) — pinned to seed 42 at 8 ports. Pins the
/// entire degraded trajectory: fault draws, EPS failover, dark-link
/// drops and the degraded-time ledger.
fn fault_storm_spec() -> ScenarioSpec {
    library::scenario("fault-storm")
        .expect("catalogue entry")
        .with_name("golden-fault-storm")
        .with_ports(8)
        .with_seed(42)
        .with_duration(SimDuration::from_millis(2))
}

fn check_golden(spec: ScenarioSpec, file: &str) {
    let report = spec.run().expect("golden spec must run");
    let got = report.trace_json();
    let path = golden_dir().join(file);
    if std::env::var_os("XDS_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &got).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with XDS_UPDATE_GOLDEN=1 to capture",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "golden trace {} drifted — the runtime's behavior changed. If the \
         change is intentional, regenerate with XDS_UPDATE_GOLDEN=1 and \
         commit the diff.",
        path.display()
    );
}

/// Snapshot-compare a counters dump (`{name} {value}` per line), with
/// the same `XDS_UPDATE_GOLDEN=1` regeneration path as the traces.
fn check_golden_counters(got: &str, file: &str) {
    let path = golden_dir().join(file);
    if std::env::var_os("XDS_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, got).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with XDS_UPDATE_GOLDEN=1 to capture",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "golden counters {} drifted — a deterministic internal tally moved. \
         If the change is intentional, regenerate with XDS_UPDATE_GOLDEN=1 \
         and commit the diff.",
        path.display()
    );
}

#[test]
fn golden_fast_mode_trace_is_byte_identical() {
    check_golden(fast_spec(), "fast_websearch.json");
}

/// The internal-counters registry on the fast golden point, pinned
/// **exactly**: every counter is a pure function of the seeded event
/// sequence, so a one-count drift in memo hits or pool churn is a
/// behavior change, not noise. Counters live outside `trace_json()`
/// (like the wall-clock phase split), so they get their own snapshot
/// instead of riding in the trace goldens.
#[test]
fn golden_fast_mode_counters_are_pinned_exactly() {
    let report = fast_spec().run().expect("golden spec must run");
    let mut got = String::new();
    for (name, value) in report.counters.items() {
        got.push_str(&format!("{name} {value}\n"));
    }
    // The snapshot must not be vacuous: the fast path ticks the pool,
    // the grant machinery and the scheduler on this scenario.
    assert!(report.counters.pool_allocs > 0);
    assert!(report.counters.grant_bursts > 0);
    assert!(report.counters.delivery_batches > 0);
    check_golden_counters(&got, "fast_websearch.counters.txt");
}

/// The degraded trajectory under the full fault storm, pinned exactly:
/// fault injections are seeded coordinator-side draws, so the number of
/// injected events, the bytes failed over to the EPS and the dark-link
/// drop tally are as deterministic as the scheduler counters — any
/// drift means the fault machinery's draw order or failover behavior
/// changed.
#[test]
fn golden_fault_storm_counters_are_pinned_exactly() {
    let report = fault_storm_spec().run().expect("golden spec must run");
    let mut got = String::new();
    for (name, value) in report.counters.items() {
        got.push_str(&format!("{name} {value}\n"));
    }
    // Non-vacuous: the storm must visibly inject and visibly degrade.
    assert!(report.counters.fault_events_injected > 0);
    assert!(report.fault_degraded_ns > 0);
    assert!(
        report.fault_failover_bytes > 0 || report.counters.drop_link_dark > 0,
        "degradation must be observable as failover bytes or dark-link drops"
    );
    check_golden_counters(&got, "fault_storm.counters.txt");
}

#[test]
fn golden_slow_mode_trace_is_byte_identical() {
    check_golden(slow_spec(), "slow_hotspot.json");
}

/// The golden runs themselves must be deterministic, or byte-identity
/// against a snapshot would be meaningless: run each spec twice and
/// require identical serializations within the same process.
#[test]
fn golden_specs_are_self_deterministic() {
    for spec in [fast_spec(), slow_spec(), fault_storm_spec()] {
        let a = spec.run().expect("spec runs").trace_json();
        let b = spec.run().expect("spec runs").trace_json();
        assert_eq!(a, b, "{} is not deterministic", spec.name);
    }
}

/// Instrumentation profiles must not perturb the simulation: on the
/// golden scenarios, `lean` (no per-packet observation) and `timeseries`
/// (full + epoch telemetry) must reproduce the full-fidelity run's
/// event count and byte accounting exactly. (The bench subset gets the
/// same check in `crates/bench/tests/instrument_equivalence.rs`.)
#[test]
fn golden_scenarios_are_profile_invariant() {
    for spec in [fast_spec(), slow_spec()] {
        let full = spec.clone().run().expect("full runs");
        for profile in [InstrProfile::Lean, InstrProfile::TimeSeries] {
            let other = spec
                .clone()
                .with_profile(profile)
                .run()
                .expect("profiled run");
            let label = profile.label();
            assert_eq!(full.events, other.events, "{}: {label}", spec.name);
            assert_eq!(
                (full.delivered_ocs_bytes, full.delivered_eps_bytes),
                (other.delivered_ocs_bytes, other.delivered_eps_bytes),
                "{}: {label}",
                spec.name
            );
            assert_eq!(
                full.drops.total(),
                other.drops.total(),
                "{}: {label}",
                spec.name
            );
        }
    }
}
