//! # xdsched — extreme data-rate scheduling for the data center
//!
//! A framework for prototyping and evaluating **hybrid electrical/optical
//! switch schedulers**, reproducing *"Extreme data-rate scheduling for the
//! Data Center"* (Manihatty-Bojan, Zilberman, Antichi, Moore — SIGCOMM
//! 2015). The paper argues that software schedulers (milliseconds) cannot
//! keep up with fast optical switching (nanoseconds), forcing host-side
//! buffering, latency, jitter and synchronization complexity — and that
//! the way forward is a framework for rapidly prototyping *hardware*
//! schedulers. This workspace is that framework, in Rust, with the
//! NetFPGA/OCS substrates replaced by validated timing models (see
//! DESIGN.md for the substitution table).
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | deterministic discrete-event kernel (ns clock, seeded RNG) |
//! | [`net`] | packets, wire formats, TCAM/LPM classification |
//! | [`traffic`] | data-center workloads (heavy-tailed flows, VOIP apps) |
//! | [`switch`] | EPS, OCS (dark reconfiguration windows), buffer tracking |
//! | [`hw`] | hardware/software scheduler timing, sync, FPGA resources |
//! | [`metrics`] | histograms, RFC 3550 jitter, FCT, report tables |
//! | [`core`] | **the framework**: VOQs → demand → scheduler → grants |
//! | [`scenario`] | declarative scenario library + parallel sweep engine |
//!
//! ## Quickstart
//!
//! ```
//! use xdsched::prelude::*;
//!
//! let n = 4;
//! let cfg = NodeConfig::fast(
//!     n,
//!     SimDuration::from_nanos(100), // PLZT-class optical switching time
//!     HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
//! );
//! let workload = Workload::flows(FlowGenerator::with_load(
//!     TrafficMatrix::uniform(n),
//!     FlowSizeDist::Fixed(200_000), // bulk flows: every byte needs a grant
//!     0.4,
//!     BitRate::GBPS_10,
//!     SimRng::new(42),
//! ));
//! let report = SimBuilder::new(cfg)
//!     .workload(workload)
//!     .scheduler(Box::new(IslipScheduler::new(n, 3)))
//!     .estimator(Box::new(MirrorEstimator::new(n)))
//!     .build()
//!     .expect("valid configuration")
//!     .run(SimTime::from_millis(5));
//! assert!(report.delivered_bytes() > 0);
//! ```

#![warn(missing_docs)]

pub use xds_core as core;
pub use xds_hw as hw;
pub use xds_metrics as metrics;
pub use xds_net as net;
pub use xds_scenario as scenario;
pub use xds_sim as sim;
pub use xds_switch as switch;
pub use xds_traffic as traffic;

/// One-stop imports for examples, tests and downstream users.
pub mod prelude {
    pub use xds_core::config::{NodeConfig, Placement};
    pub use xds_core::demand::{
        CountMinEstimator, DemandEstimator, DemandMatrix, EwmaEstimator, MirrorEstimator,
        SchedRequest, WindowEstimator,
    };
    pub use xds_core::instrument::{
        DeliveryPath, DeliveryRecord, DeliverySink, DropCause, DropSink, EpochProbe, EpochSample,
        InstrProfile, Instrumentation, SinkCtx,
    };
    pub use xds_core::node::{MatrixCycle, Workload};
    pub use xds_core::report::{MetricValue, RunReport};
    pub use xds_core::runtime::{BuildError, HybridSim, SimBuilder};
    pub use xds_core::sched::{
        BvnScheduler, EpsOnlyScheduler, GreedyLqfScheduler, HotspotScheduler, HungarianScheduler,
        IlqfScheduler, IslipScheduler, PimScheduler, RrmScheduler, Schedule, ScheduleCtx,
        ScheduleEntry, Scheduler, SolsticeScheduler, TdmaScheduler, WavefrontScheduler,
    };
    pub use xds_hw::{
        ClockDomain, HwAlgo, HwSchedulerModel, Pipeline, Stage, SwSchedulerModel, SyncModel,
    };
    pub use xds_metrics::{fmt_bytes, fmt_f64, LatencyHistogram, SizeClass, Table};
    pub use xds_net::{FiveTuple, IpProtocol, Packet, PortNo, TrafficClass};
    pub use xds_scenario::{
        library as scenario_library, AppMix, EstimatorKind, PlacementKind, ScenarioSpec,
        SchedulerKind, SweepExecutor, SweepGrid, TrafficPattern,
    };
    pub use xds_sim::{BitRate, Dist, SimDuration, SimRng, SimTime};
    pub use xds_switch::{Eps, Link, Ocs, Permutation, Site};
    pub use xds_traffic::{ArrivalProcess, CbrApp, FlowGenerator, FlowSizeDist, TrafficMatrix};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_builds_a_minimal_run() {
        let n = 4;
        let cfg = NodeConfig::fast(
            n,
            SimDuration::from_nanos(100),
            HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
        );
        let workload = Workload::flows(FlowGenerator::with_load(
            TrafficMatrix::uniform(n),
            FlowSizeDist::Fixed(200_000),
            0.2,
            BitRate::GBPS_10,
            SimRng::new(1),
        ));
        let report = SimBuilder::new(cfg)
            .workload(workload)
            .scheduler(Box::new(IslipScheduler::new(n, 3)))
            .estimator(Box::new(MirrorEstimator::new(n)))
            .build()
            .expect("valid configuration")
            .run(SimTime::from_millis(1));
        assert!(report.delivered_bytes() > 0);
    }
}
