//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the slice of proptest's surface its tests actually
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]` headers),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, integer-range and
//! tuple strategies, `proptest::collection::vec`, `any::<T>()` and
//! [`Strategy::prop_map`]. Semantics differences vs the real crate:
//!
//! * cases are generated from a deterministic per-test seed (derived from
//!   the test's module path and name), so failures reproduce exactly;
//! * there is no shrinking — the failing inputs are printed as-is;
//! * generation is uniform (no edge-case biasing).
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifest; no test source changes are required.

#![forbid(unsafe_code)]

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic split-mix-64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier string and a case index.
    pub fn for_case(test_id: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. The subset mirrors proptest's `Strategy` trait
/// closely enough for `impl Strategy<Value = T>` signatures to compile.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Full-range strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Any value of `T` (integers only in this subset).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the `size` argument of [`vec`].
    pub trait SizeRange {
        /// Chooses a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
        }
    }

    /// Strategy for vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?}; {}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that generates inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = strategies;
                        ($($crate::Strategy::generate($arg, &mut rng),)+)
                    };
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    if let Err(msg) = outcome {
                        panic!(
                            "property {} failed on case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let mut a = crate::TestRng::for_case("t::x", 3);
        let mut b = crate::TestRng::for_case("t::x", 3);
        let mut c = crate::TestRng::for_case("t::x", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..100, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            for x in &v {
                prop_assert!(*x < 100);
            }
        }

        #[test]
        fn prop_map_applies(d in (0u64..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 11);
        }

        #[test]
        fn tuples_generate_componentwise(t in (0u64..4, 0usize..2, any::<u16>())) {
            prop_assert!(t.0 < 4 && t.1 < 2);
            let _: u16 = t.2;
        }
    }
}
