//! An offline, API-compatible subset of the `criterion` benchmarking
//! crate — enough surface for the workspace's `[[bench]]` targets to
//! compile and produce useful numbers without network access to crates.io.
//!
//! Differences vs the real crate: fixed-budget timing (no adaptive
//! sampling, no statistical analysis, no HTML reports); each benchmark is
//! warmed up briefly and then timed for a fixed number of batches, and the
//! per-iteration mean / min are printed to stdout.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! manifest; no bench source changes are required.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation (printed alongside results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    iters_per_batch: u64,
    batches: u64,
    /// (mean, min) nanoseconds per iteration, filled by [`Bencher::iter`].
    result_ns: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `routine`, recording mean and best per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one batch, untimed.
        for _ in 0..self.iters_per_batch.min(10) {
            std::hint::black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        let iters = (self.iters_per_batch * self.batches).max(1) as f64;
        self.result_ns = Some((
            total.as_secs_f64() * 1e9 / iters,
            best.as_secs_f64() * 1e9 / self.iters_per_batch.max(1) as f64,
        ));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Lowers/raises the timing budget (kept as a hint in this subset).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with the group's settings.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, &mut f);
        self
    }

    /// Runs a parameterized benchmark; `input` is passed through.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: one probe iteration bounds the batch size so heavy
        // benchmarks (whole simulations) stay fast under the stub.
        let mut probe = Bencher {
            iters_per_batch: 1,
            batches: 1,
            result_ns: None,
        };
        f(&mut probe);
        let probe_ns = probe.result_ns.map(|(m, _)| m).unwrap_or(1e3).max(1.0);
        // Aim for ~20 ms of measured time across batches.
        let budget_ns = 2e7_f64;
        let total_iters = (budget_ns / probe_ns).clamp(1.0, 1e6) as u64;
        let batches = (self.sample_size as u64).clamp(1, 10);
        let mut b = Bencher {
            iters_per_batch: (total_iters / batches).max(1),
            batches,
            result_ns: None,
        };
        f(&mut b);
        let (mean, best) = b.result_ns.unwrap_or((f64::NAN, f64::NAN));
        let thru = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / mean * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MB/s)", n as f64 / mean * 1e3)
            }
            None => String::new(),
        };
        println!("bench: {label:<50} mean {mean:>12.1} ns/iter  best {best:>12.1}{thru}");
    }

    /// Ends the group (no-op in this subset; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: R) -> &mut Self {
        self.benchmark_group("crit").bench_function(id, f);
        self
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(4));
        g.sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn stub_benches_run_to_completion() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
