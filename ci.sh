#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run

echo "==> sweep bench --smoke (perf harness liveness; output under results/)"
cargo run --release -q -p xds-bench --bin sweep -- bench --smoke \
    --out results/bench_smoke_ci.json
grep -q '"name": "scale-stress/n512"' results/bench_smoke_ci.json \
    || { echo "ci.sh: smoke subset lost the 512-port scale point"; exit 1; }
grep -q '"name": "scale-stress/n1024"' results/bench_smoke_ci.json \
    || { echo "ci.sh: smoke subset lost the kilofabric scale point"; exit 1; }
grep -q '"phase_decompose_ns"' results/bench_smoke_ci.json \
    || { echo "ci.sh: per-phase epoch timings missing from bench artifact"; exit 1; }
grep -q '"phase_estimate_ns"' results/bench_smoke_ci.json \
    || { echo "ci.sh: per-phase epoch timings missing from bench artifact"; exit 1; }

echo "==> sweep bench --smoke --baseline (the baseline-diff path must run)"
# Diff a second smoke pass against the first: per-point and aggregate
# speedup fields must be emitted (values hover around 1.0 — the check is
# that the comparison code path runs, not the number). The exact
# self-diff (same artifact on both sides -> speedup 1.00) is pinned by
# the bench_json_roundtrips_through_baseline_parser unit test.
cargo run --release -q -p xds-bench --bin sweep -- bench --smoke \
    --baseline results/bench_smoke_ci.json --out results/bench_smoke_ci_diff.json
grep -q '"baseline"' results/bench_smoke_ci_diff.json \
    || { echo "ci.sh: baseline diff missing from smoke artifact"; exit 1; }
grep -q '"speedup"' results/bench_smoke_ci_diff.json \
    || { echo "ci.sh: speedup fields missing from smoke artifact"; exit 1; }

echo "ci.sh: all green"
