#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> xlint (workspace determinism-contract static analysis)"
# Zero unwaived findings, and the waiver count is pinned: a new inline
# `// xlint: allow(...)` waiver anywhere in the tree requires an
# explicit diff of the expected number below.
XLINT_EXPECTED_WAIVERS=22
xlint_out=$(cargo run -q -p xds-lint -- --stats) || {
    printf '%s\n' "$xlint_out"
    echo "ci.sh: xlint found determinism-contract violations"
    exit 1
}
printf '%s\n' "$xlint_out"
xlint_waivers=$(printf '%s\n' "$xlint_out" | sed -n 's/^waivers: \([0-9][0-9]*\)$/\1/p')
[ "$xlint_waivers" = "$XLINT_EXPECTED_WAIVERS" ] \
    || { echo "ci.sh: xlint waiver count ${xlint_waivers:-?} != expected $XLINT_EXPECTED_WAIVERS (new waivers need an explicit diff here)"; exit 1; }

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run

echo "==> sweep bench --smoke (perf harness liveness; output under results/)"
cargo run --release -q -p xds-bench --bin sweep -- bench --smoke \
    --out results/bench_smoke_ci.json
grep -q '"name": "scale-stress/n512"' results/bench_smoke_ci.json \
    || { echo "ci.sh: smoke subset lost the 512-port scale point"; exit 1; }
grep -q '"name": "scale-stress/n1024"' results/bench_smoke_ci.json \
    || { echo "ci.sh: smoke subset lost the kilofabric scale point"; exit 1; }
grep -q '"name": "scale-stress/n2048"' results/bench_smoke_ci.json \
    || { echo "ci.sh: smoke subset lost the 2048-port sharded scale point"; exit 1; }
grep -q '"phase_decompose_ns"' results/bench_smoke_ci.json \
    || { echo "ci.sh: per-phase epoch timings missing from bench artifact"; exit 1; }
grep -q '"phase_estimate_ns"' results/bench_smoke_ci.json \
    || { echo "ci.sh: per-phase epoch timings missing from bench artifact"; exit 1; }
grep -q '"profile": "lean"' results/bench_smoke_ci.json \
    || { echo "ci.sh: bench artifact must record the lean instrumentation profile"; exit 1; }

echo "==> sweep bench --smoke --shards 2 (sharded core: events/bytes are shard-count-invariant)"
# Force every smoke point onto 2 shards (the catalogue default runs the
# kilofabric rungs at K=n and the rest at K=1): the simulated behavior —
# event and delivered-byte counts per point — must not move at all.
cargo run --release -q -p xds-bench --bin sweep -- bench --smoke --shards 2 \
    --out results/bench_smoke_ci_sh2.json
for field in events delivered_bytes; do
    ref=$(grep -o "\"$field\": [0-9]*" results/bench_smoke_ci.json)
    sh2=$(grep -o "\"$field\": [0-9]*" results/bench_smoke_ci_sh2.json)
    [ -n "$ref" ] \
        || { echo "ci.sh: smoke artifact lost its $field fields"; exit 1; }
    [ "$ref" = "$sh2" ] \
        || { echo "ci.sh: $field diverged between the default and --shards 2 smoke runs"; exit 1; }
done

echo "==> instrumentation profiles (lean/full event counts must agree on one point)"
cargo run --release -q -p xds-bench --bin sweep -- run uniform \
    --duration-ms 1 --threads 1 --profile full --out ci_profile_full >/dev/null
cargo run --release -q -p xds-bench --bin sweep -- run uniform \
    --duration-ms 1 --threads 1 --profile lean --out ci_profile_lean >/dev/null
full_events=$(grep -o '"events": [0-9]*' results/ci_profile_full.json | head -1)
lean_events=$(grep -o '"events": [0-9]*' results/ci_profile_lean.json | head -1)
[ -n "$full_events" ] \
    || { echo "ci.sh: full-profile sweep row lost its event count"; exit 1; }
[ "$full_events" = "$lean_events" ] \
    || { echo "ci.sh: lean/full event counts diverged ($lean_events vs $full_events)"; exit 1; }

echo "==> sweep timeseries (epoch-resolution artifact must be non-empty)"
cargo run --release -q -p xds-bench --bin sweep -- timeseries uniform \
    --duration-ms 1 --threads 1 --out ci_timeseries >/dev/null
grep -q '"epoch": 0' results/ci_timeseries.timeseries.json \
    || { echo "ci.sh: timeseries artifact is empty"; exit 1; }
grep -q '"duty_cycle"' results/ci_timeseries.timeseries.json \
    || { echo "ci.sh: timeseries rows lost the duty-cycle column"; exit 1; }

echo "==> sweep trace (flight-recorder artifact must be valid Chrome-trace JSON)"
cargo run --release -q -p xds-bench --bin sweep -- trace scale-stress-256 \
    --duration-ms 1 --threads 1 --out ci_trace >/dev/null
[ -s results/ci_trace.trace.json ] \
    || { echo "ci.sh: trace artifact missing or empty"; exit 1; }
grep -q '"traceEvents"' results/ci_trace.trace.json \
    || { echo "ci.sh: trace artifact is not Chrome Trace Event Format"; exit 1; }
grep -q '"ph": "X"' results/ci_trace.trace.json \
    || { echo "ci.sh: trace artifact has no complete events"; exit 1; }
for span in epoch estimate decompose apply probe grant_burst; do
    grep -q "\"name\": \"$span\"" results/ci_trace.trace.json \
        || { echo "ci.sh: trace artifact lost the $span span family"; exit 1; }
done
grep -q 'sched_probes' results/ci_trace.json \
    || { echo "ci.sh: counters columns missing from traced sweep output"; exit 1; }

echo "==> counters columns (--counters must add the registry to sweep output)"
cargo run --release -q -p xds-bench --bin sweep -- run uniform \
    --duration-ms 1 --threads 1 --counters --out ci_counters >/dev/null
grep -q '"pool_allocs"' results/ci_counters.json \
    || { echo "ci.sh: counters columns missing from sweep JSON"; exit 1; }
head -1 results/ci_counters.csv | grep -q 'sched_memo_hits' \
    || { echo "ci.sh: counters columns missing from sweep CSV header"; exit 1; }

echo "==> fault injection (a faulted smoke point must visibly degrade, gracefully)"
# The watchdog flag rides along so the guarded-runner path is the one
# CI exercises; 600 s is a liveness bound, not a measurement.
cargo run --release -q -p xds-bench --bin sweep -- run fault-storm \
    --duration-ms 2 --threads 1 --counters --point-timeout 600 \
    --out ci_faults >/dev/null
grep -q '"faults": "link+misfire+stall"' results/ci_faults.json \
    || { echo "ci.sh: fault-storm row lost its fault-plan tag"; exit 1; }
grep -o '"fault_events_injected": [0-9]*' results/ci_faults.json | grep -qv ': 0$' \
    || { echo "ci.sh: fault-storm injected no faults"; exit 1; }
grep -o '"fault_degraded_ns": [0-9]*' results/ci_faults.json | grep -qv ': 0$' \
    || { echo "ci.sh: fault-storm registered no degraded time"; exit 1; }
head -1 results/ci_faults.csv | grep -q 'fault_failover_bytes' \
    || { echo "ci.sh: degraded-mode columns missing from sweep CSV header"; exit 1; }
# Zero-cost-off: a spec with no fault plan must report the axis as
# "none" with every fault tally at exactly zero — the fault machinery
# may not perturb (or even touch) an unfaulted run. Byte-identity of
# the unfaulted goldens themselves is pinned by `cargo test` above.
grep -q '"faults": "none"' results/ci_counters.json \
    || { echo "ci.sh: unfaulted sweep rows lost the faults=none column"; exit 1; }
if grep -o '"fault_events_injected": [0-9]*' results/ci_counters.json | grep -qv ': 0$'; then
    echo "ci.sh: an unfaulted run reported injected faults"; exit 1
fi

echo "==> fidelity axis (estimate rows must ride the same artifact schema)"
cargo run --release -q -p xds-bench --bin sweep -- run uniform \
    --duration-ms 1 --threads 2 --fidelity exact,estimate \
    --out ci_fidelity >/dev/null
grep -q '"fidelity": "exact"' results/ci_fidelity.json \
    || { echo "ci.sh: exact rows lost the fidelity column"; exit 1; }
grep -q '"fidelity": "estimate"' results/ci_fidelity.json \
    || { echo "ci.sh: estimate rows missing from the fidelity sweep"; exit 1; }
head -1 results/ci_fidelity.csv | grep -q ',fidelity,' \
    || { echo "ci.sh: fidelity column missing from sweep CSV header"; exit 1; }

echo "==> sweep validate-estimates --smoke (estimate-tier error envelope)"
cargo run --release -q -p xds-bench --bin sweep -- validate-estimates --smoke \
    --out validate_ci --point-timeout 600
[ -s results/validate_ci.validation.json ] \
    || { echo "ci.sh: validation artifact missing or empty"; exit 1; }
grep -q '"schema": "xds-validate-v1"' results/validate_ci.validation.json \
    || { echo "ci.sh: validation artifact is not xds-validate-v1"; exit 1; }
# Coverage: every pinned catalogue point (the names the smoke bench just
# emitted) must have a validation row.
names=$(grep -o '"name": "[^"]*"' results/bench_smoke_ci.json | sed 's/"name": "//;s/"$//' | sort -u)
[ -n "$names" ] || { echo "ci.sh: could not enumerate catalogue names"; exit 1; }
for n in $names; do
    grep -q "\"name\": \"$n\"" results/validate_ci.validation.json \
        || { echo "ci.sh: validation artifact lost catalogue point $n"; exit 1; }
done
# The envelope must be recorded and finite (smoke horizons are too short
# to gate its magnitude; the full-catalogue envelope is the contract).
grep -q '"err_p95"' results/validate_ci.validation.json \
    || { echo "ci.sh: error percentiles missing from validation artifact"; exit 1; }
if grep -E '"err_(p50|p95|max)": *(inf|-inf|NaN)' -q results/validate_ci.validation.json; then
    echo "ci.sh: smoke error envelope is not finite"; exit 1
fi
grep -q '"min_kilofabric_speedup"' results/validate_ci.validation.json \
    || { echo "ci.sh: kilofabric speedup missing from validation artifact"; exit 1; }
[ -s results/validate_ci.validation.csv ] \
    || { echo "ci.sh: validation CSV missing or empty"; exit 1; }
head -1 results/validate_ci.validation.csv | grep -q '^scenario,n_ports,metric,' \
    || { echo "ci.sh: validation CSV header drifted"; exit 1; }

echo "==> sweep bench --smoke --baseline (the baseline-diff path must run)"
# Diff a second smoke pass against the first: per-point and aggregate
# speedup fields must be emitted (values hover around 1.0 — the check is
# that the comparison code path runs, not the number). The exact
# self-diff (same artifact on both sides -> speedup 1.00) is pinned by
# the bench_json_roundtrips_through_baseline_parser unit test.
cargo run --release -q -p xds-bench --bin sweep -- bench --smoke \
    --baseline results/bench_smoke_ci.json --out results/bench_smoke_ci_diff.json
grep -q '"baseline"' results/bench_smoke_ci_diff.json \
    || { echo "ci.sh: baseline diff missing from smoke artifact"; exit 1; }
grep -q '"speedup"' results/bench_smoke_ci_diff.json \
    || { echo "ci.sh: speedup fields missing from smoke artifact"; exit 1; }

echo "ci.sh: all green"
