#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run

echo "==> sweep bench --smoke (perf harness liveness; output under results/)"
cargo run --release -q -p xds-bench --bin sweep -- bench --smoke

echo "ci.sh: all green"
