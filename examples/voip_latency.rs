//! The §2 claim, demonstrated: "slow schedulers … can increase the overall
//! traffic latency and jitter of widely used applications (i.e., VOIP,
//! multiuser gaming etc.)".
//!
//! Three configurations carry the same VOIP calls over the same bulk
//! background:
//!   1. fast hardware scheduling (calls on the EPS, bulk on the OCS);
//!   2. slow software scheduling (same classification);
//!   3. slow software scheduling with calls *gated like bulk*
//!      (`voip_on_ocs`) — the pathological case where interactive traffic
//!      waits for millisecond grants.
//!
//! ```sh
//! cargo run --release --example voip_latency
//! ```

use xdsched::prelude::*;

fn apps(n: usize) -> Vec<CbrApp> {
    (0..4)
        .map(|i| {
            let mut a = CbrApp::voip(
                i as u64,
                PortNo(i),
                PortNo((i + n as u16 / 2) % n as u16),
                SimTime::ZERO,
            );
            a.interval = SimDuration::from_millis(2); // accelerated G.711
            a
        })
        .collect()
}

fn workload(n: usize) -> Workload {
    Workload::flows(FlowGenerator::with_load(
        TrafficMatrix::uniform(n),
        FlowSizeDist::WebSearch,
        0.4,
        BitRate::GBPS_10,
        SimRng::new(5),
    ))
    .with_apps(apps(n))
}

fn main() {
    let n = 8;
    let horizon = SimTime::from_millis(60);
    let mut table = Table::new(
        "VOIP under slow vs fast scheduling (4 calls over websearch @ 0.4)",
        &[
            "configuration",
            "p50 lat",
            "p99 lat",
            "jitter(mean)",
            "jitter(max)",
            "lost",
        ],
    );

    let fast_cfg = NodeConfig::fast(
        n,
        SimDuration::from_nanos(100),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    );
    let mut slow_cfg = NodeConfig::slow(
        n,
        SimDuration::from_millis(1),
        SwSchedulerModel::kernel_driver(),
    );
    slow_cfg.seed = 2;
    let mut gated_cfg = slow_cfg.clone();
    gated_cfg.voip_on_ocs = true;

    let runs: Vec<(&str, NodeConfig, Box<dyn Scheduler>)> = vec![
        (
            "fast hw, voip on EPS",
            fast_cfg,
            Box::new(IslipScheduler::new(n, 3)),
        ),
        (
            "slow sw, voip on EPS",
            slow_cfg,
            Box::new(HotspotScheduler::new(100_000)),
        ),
        (
            "slow sw, voip gated on OCS",
            gated_cfg,
            Box::new(HotspotScheduler::new(100_000)),
        ),
    ];

    for (label, cfg, sched) in runs {
        let r = SimBuilder::new(cfg)
            .workload(workload(n))
            .scheduler(sched)
            .estimator(Box::new(MirrorEstimator::new(n)))
            .build()
            .expect("valid testbed")
            .run(horizon);
        table.row(vec![
            label.to_string(),
            format!("{:.1}us", r.latency_interactive.p50() as f64 / 1e3),
            format!("{:.1}us", r.latency_interactive.p99() as f64 / 1e3),
            format!("{:.1}us", r.voip_jitter_mean_ns.unwrap_or(0.0) / 1e3),
            format!("{:.1}us", r.voip_jitter_max_ns.unwrap_or(0.0) / 1e3),
            r.drops.sync_violation.to_string(),
        ]);
    }
    print!("{}", table.render_text());
    println!("\nGating interactive packets behind millisecond grants inflates their");
    println!("latency by orders of magnitude — why the EPS must carry them.");
}
