//! The framework doing what §3 promises: "rapid prototyping, exploration
//! and evaluation of novel hybrid schedulers" — six schedulers, one
//! workload, one table.
//!
//! ```sh
//! cargo run --release --example scheduler_faceoff
//! ```

use xdsched::prelude::*;

fn run_one(n: usize, scheduler: Box<dyn Scheduler>, horizon: SimTime) -> RunReport {
    let cfg = NodeConfig::fast(
        n,
        SimDuration::from_micros(1),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    );
    let workload = Workload::flows(FlowGenerator::with_load(
        TrafficMatrix::hotspot(n, 4, 0.5, 0),
        FlowSizeDist::WebSearch,
        0.5,
        cfg.line_rate,
        SimRng::new(99),
    ));
    SimBuilder::new(cfg)
        .workload(workload)
        .scheduler(scheduler)
        .estimator(Box::new(MirrorEstimator::new(n)))
        .build()
        .expect("valid testbed")
        .run(horizon)
}

fn main() {
    let n = 16;
    let horizon = SimTime::from_millis(20);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(EpsOnlyScheduler::new()),
        Box::new(TdmaScheduler::new(n)),
        Box::new(IslipScheduler::new(n, 3)),
        Box::new(WavefrontScheduler::new(n)),
        Box::new(SolsticeScheduler::new(4)),
        Box::new(HungarianScheduler::new()),
    ];

    let mut table = Table::new(
        format!("scheduler face-off: {n}x{n}, hotspot(4 pairs, 50%), websearch @ 0.5 load"),
        &[
            "scheduler",
            "thru(Gbps)",
            "goodput%",
            "ocs share%",
            "p99 bulk(us)",
            "reconfigs",
            "voq drops",
        ],
    );
    for s in schedulers {
        let r = run_one(n, s, horizon);
        table.row(vec![
            r.scheduler.clone(),
            format!("{:.2}", r.throughput_gbps()),
            format!("{:.1}", r.goodput_fraction() * 100.0),
            format!("{:.1}", r.ocs_byte_share() * 100.0),
            format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
            r.ocs.reconfigurations.to_string(),
            r.drops.voq_full.to_string(),
        ]);
    }
    print!("{}", table.render_text());
    println!("\nExpected shape: demand-aware schedulers beat TDMA under skew; EPS-only");
    println!("collapses once bulk exceeds the (deliberately undersized) packet switch.");
}
