//! Figure 1 as a runnable demo: the same workload under **slow
//! scheduling** (software scheduler, host buffering, grant round-trips)
//! and **fast scheduling** (hardware scheduler, switch buffering).
//!
//! ```sh
//! cargo run --release --example slow_vs_fast
//! ```

use xdsched::prelude::*;

fn workload(n: usize, seed: u64) -> Workload {
    Workload::flows(FlowGenerator::with_load(
        TrafficMatrix::hotspot(n, 4, 0.5, 0),
        FlowSizeDist::WebSearch,
        0.4,
        BitRate::GBPS_10,
        SimRng::new(seed),
    ))
}

fn main() {
    let n = 16;
    let horizon = SimTime::from_millis(40);
    let mut table = Table::new(
        "slow (software, host-buffered) vs fast (hardware, switch-buffered) scheduling",
        &[
            "placement",
            "switching",
            "decision(mean)",
            "thru(Gbps)",
            "p99 bulk lat",
            "host buf",
            "switch buf",
            "sync drops",
        ],
    );

    // Slow scheduling: c-Through-era software control plane with a
    // millisecond-class optical switch.
    let slow_cfg = NodeConfig::slow(
        n,
        SimDuration::from_millis(1),
        SwSchedulerModel::kernel_driver(),
    );
    let slow = SimBuilder::new(slow_cfg)
        .workload(workload(n, 7))
        .scheduler(Box::new(HotspotScheduler::new(100_000)))
        .estimator(Box::new(MirrorEstimator::new(n)))
        .build()
        .expect("valid testbed")
        .run(horizon);

    // Fast scheduling: hardware iSLIP with a 100 ns optical switch.
    let fast_cfg = NodeConfig::fast(
        n,
        SimDuration::from_nanos(100),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    );
    let fast = SimBuilder::new(fast_cfg)
        .workload(workload(n, 7))
        .scheduler(Box::new(IslipScheduler::new(n, 3)))
        .estimator(Box::new(MirrorEstimator::new(n)))
        .build()
        .expect("valid testbed")
        .run(horizon);

    for (label, reconfig, r) in [
        ("slow/software", "1ms", &slow),
        ("fast/hardware", "100ns", &fast),
    ] {
        table.row(vec![
            label.to_string(),
            reconfig.to_string(),
            format!("{:.1}us", r.decision_latency_mean_ns / 1e3),
            format!("{:.2}", r.throughput_gbps()),
            format!("{:.1}us", r.latency_bulk.p99() as f64 / 1e3),
            fmt_bytes(r.peak_host_buffer),
            fmt_bytes(r.peak_switch_buffer),
            r.drops.sync_violation.to_string(),
        ]);
    }
    print!("{}", table.render_text());
    println!(
        "\nThe paper's Figure 1 in numbers: slow scheduling parks {} in host memory;\n\
         fast scheduling needs only {} of switch buffering and its decisions are\n\
         ~{:.0}x faster.",
        fmt_bytes(slow.peak_host_buffer),
        fmt_bytes(fast.peak_switch_buffer),
        slow.decision_latency_mean_ns / fast.decision_latency_mean_ns.max(1.0),
    );
}
