//! A staged all-to-all shuffle (the map-reduce traffic pattern) over the
//! hybrid switch: every period the communication pattern shifts to the
//! next cyclic permutation. Each stage is the OCS's best case; the
//! *transitions* are where scheduling speed shows, because every stage
//! change forces fresh demand estimation and a reconfiguration.
//!
//! ```sh
//! cargo run --release --example shuffle_stages
//! ```

use xdsched::prelude::*;

fn run(n: usize, stage_period: SimDuration, sched: Box<dyn Scheduler>, label: &str) -> Vec<String> {
    let cfg = NodeConfig::fast(
        n,
        SimDuration::from_micros(1),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    );
    let stages = TrafficMatrix::shuffle_stages(n);
    let gen = FlowGenerator::with_load(
        stages[0].clone(),
        FlowSizeDist::Fixed(300_000),
        0.6,
        cfg.line_rate,
        SimRng::new(17),
    );
    let w = Workload::flows(gen).with_matrix_cycle(stage_period, stages);
    let r = SimBuilder::new(cfg)
        .workload(w)
        .scheduler(sched)
        .estimator(Box::new(MirrorEstimator::new(n)))
        .build()
        .expect("valid testbed")
        .run(SimTime::from_millis(30));
    vec![
        label.to_string(),
        stage_period.to_string(),
        format!("{:.2}", r.throughput_gbps()),
        format!("{:.1}", r.ocs_duty_cycle() * 100.0),
        r.ocs.reconfigurations.to_string(),
        format!("{:.1}", r.latency_bulk.p99() as f64 / 1e3),
    ]
}

fn main() {
    let n = 16;
    let mut table = Table::new(
        "staged shuffle over the hybrid switch (16x16 @ 10G, load 0.6)",
        &[
            "scheduler",
            "stage period",
            "thru(Gbps)",
            "duty%",
            "reconfigs",
            "p99 bulk(us)",
        ],
    );
    for period in [SimDuration::from_millis(5), SimDuration::from_millis(1)] {
        table.row(run(n, period, Box::new(IslipScheduler::new(n, 3)), "islip"));
        table.row(run(n, period, Box::new(TdmaScheduler::new(n)), "tdma"));
    }
    print!("{}", table.render_text());
    println!(
        "\nEach shuffle stage is a pure permutation — the circuit switch's best\n\
         case — so the demand-aware scheduler tracks every stage change while\n\
         TDMA only aligns with 1 of {} rotations per epoch.",
        n - 1
    );
}
