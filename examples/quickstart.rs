//! Quickstart: assemble the Figure 2 framework, run a workload, read the
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xdsched::prelude::*;

fn main() {
    let n = 8;

    // 1. The infrastructure: an 8-port hybrid ToR with a 100 ns optical
    //    switch (PLZT-class) and a NetFPGA-hosted hardware scheduler.
    let cfg = NodeConfig::fast(
        n,
        SimDuration::from_nanos(100),
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
    );
    println!(
        "testbed: {n}x{n} @ {} | OCS reconfig {} | epoch {} | EPS {}",
        cfg.line_rate, cfg.reconfig, cfg.epoch, cfg.eps_rate
    );

    // 2. The workload: web-search flows at 50 % load plus two VOIP calls.
    let flows = FlowGenerator::with_load(
        TrafficMatrix::hotspot(n, 2, 0.4, 0),
        FlowSizeDist::WebSearch,
        0.4,
        cfg.line_rate,
        SimRng::new(42),
    );
    let apps = vec![
        CbrApp::voip(0, PortNo(0), PortNo(5), SimTime::ZERO),
        CbrApp::voip(1, PortNo(3), PortNo(6), SimTime::ZERO),
    ];
    let workload = Workload::flows(flows).with_apps(apps);

    // 3. The scheduling logic: users plug their algorithm in here.
    let scheduler = Box::new(IslipScheduler::new(n, 3));
    let estimator = Box::new(MirrorEstimator::new(n));

    // 4. Assemble (typed errors, no panics), run and report.
    let report = SimBuilder::new(cfg)
        .workload(workload)
        .scheduler(scheduler)
        .estimator(estimator)
        .build()
        .expect("valid testbed")
        .run(SimTime::from_millis(50));
    println!();
    print!("{}", report.summary_table().render_text());
    println!(
        "ocs byte share {:.1}% | duty cycle {:.2}% | goodput {:.1}%",
        report.ocs_byte_share() * 100.0,
        report.ocs_duty_cycle() * 100.0,
        report.goodput_fraction() * 100.0
    );
    if let Some(j) = report.voip_jitter_mean_ns {
        println!("voip jitter (rfc3550): mean {:.0} ns", j);
    }
    if let Some(f) = &report.fct_overall {
        println!(
            "fct: {} flows, p50 {:.1} us, p99 {:.1} us",
            f.count,
            f.p50_ns as f64 / 1e3,
            f.p99_ns as f64 / 1e3
        );
    }
}
