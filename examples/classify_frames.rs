//! The processing-logic front end of Figure 2 on real bytes:
//! "classifies packets into flows based on configurable look-up rules".
//!
//! Builds genuine Ethernet/IPv4/UDP frames, extracts 5-tuples (checksums
//! verified), and runs them through a TCAM-style rule table plus an LPM
//! egress table — exactly what the FPGA lookup stage would do.
//!
//! ```sh
//! cargo run --release --example classify_frames
//! ```

use xdsched::net::classify::{Action, LpmTable, Rule, RuleMatch, RuleTable};
use xdsched::net::fivetuple::build_udp_frame;
use xdsched::net::wire::Ipv4Addr;
use xdsched::prelude::*;

fn main() {
    // Rule table: RTP port range → interactive; a storage subnet pair →
    // bulk; everything else defaults to short.
    let mut rules = RuleTable::new(Action::classify(TrafficClass::Short));
    rules.insert(Rule {
        priority: 100,
        matcher: RuleMatch {
            dst_port: Some((5000, 5099)),
            proto: Some(IpProtocol::Udp),
            ..RuleMatch::default()
        },
        action: Action::classify(TrafficClass::Interactive),
    });
    rules.insert(Rule {
        priority: 50,
        matcher: RuleMatch {
            src_prefix: Some((Ipv4Addr::new(10, 0, 0, 0), 28)), // hosts 0..15
            dst_prefix: Some((Ipv4Addr::new(10, 0, 0, 16), 28)), // hosts 16..31
            ..RuleMatch::default()
        },
        action: Action::classify(TrafficClass::Bulk),
    });

    // LPM egress: one /32 per host.
    let mut egress: LpmTable<u16> = LpmTable::new();
    for host in 0..32u16 {
        egress.insert(Ipv4Addr::for_host(host), 32, host);
    }

    let frames = [
        (
            "voip rtp",
            build_udp_frame(1, 2, 16_384, 5_004, b"rtp audio frame"),
        ),
        (
            "storage replication",
            build_udp_frame(3, 20, 9_000, 9_000, &[0u8; 256]),
        ),
        (
            "ordinary rpc",
            build_udp_frame(7, 9, 40_000, 8_080, b"rpc call"),
        ),
    ];

    let mut table = Table::new(
        "Figure 2 processing logic: look-up rules on real frames",
        &["frame", "five-tuple", "class", "egress port"],
    );
    for (label, frame) in &frames {
        let tuple = FiveTuple::from_frame(frame).expect("well-formed frame");
        let action = rules.lookup(&tuple);
        let port = egress.lookup(tuple.dst).copied().expect("known host");
        table.row(vec![
            label.to_string(),
            tuple.to_string(),
            action.class.label().to_string(),
            format!("p{port}"),
        ]);
    }
    print!("{}", table.render_text());

    let (lookups, hits) = rules.stats();
    println!("\nrule table: {lookups} lookups, {hits} rule hits (misses hit the default)");
    println!("A corrupted frame never reaches classification:");
    let mut bad = build_udp_frame(1, 2, 1, 5_004, b"x");
    bad[20] ^= 0xff; // flip a bit inside the IP header
    match FiveTuple::from_frame(&bad) {
        Err(e) => println!("  parse error as expected: {e}"),
        Ok(_) => unreachable!("checksum must catch the corruption"),
    }
}
