//! Differential pin: the production [`SolsticeScheduler`] — value-
//! bucketed worklists, incremental halving probes, support-tracked
//! residuals and the epoch-to-epoch matching memo — must emit schedules
//! **identical** to the straightforward dense reference implementation
//! ([`reference_schedule`]) on every epoch of every run.
//!
//! The scheduler is stateful on purpose (warm residual, memos), so each
//! proptest case drives a *sequence* of epochs with demand that persists,
//! drifts and jumps between them: steady epochs exercise the memo-replay
//! path, jumps exercise the miss path, and port-count changes exercise
//! the warm-start reset. The reference is stateless and recomputed from
//! scratch each epoch — any divergence is a determinism bug in the
//! optimized path.

use proptest::prelude::*;
use xds_core::demand::DemandMatrix;
use xds_core::sched::solstice::{reference_schedule, SolsticeScheduler};
use xds_core::sched::{ScheduleCtx, Scheduler};
use xds_sim::{BitRate, SimDuration, SimRng, SimTime};

fn ctx(reconfig_ns: u64, epoch_us: u64, max_entries: usize) -> ScheduleCtx {
    ScheduleCtx {
        now: SimTime::ZERO,
        line_rate: BitRate::GBPS_10,
        reconfig: SimDuration::from_nanos(reconfig_ns),
        epoch: SimDuration::from_micros(epoch_us),
        max_entries,
    }
}

/// Random demand over `n` ports: `cells` non-zero entries with values
/// spanning several value buckets (equal values included — ties are
/// where matching choice is most sensitive).
fn random_demand(n: usize, cells: usize, rng: &mut SimRng, tracked: bool) -> DemandMatrix {
    let mut d = if tracked {
        DemandMatrix::zero_tracked(n)
    } else {
        DemandMatrix::zero(n)
    };
    for _ in 0..cells {
        let idx = rng.below((n * n) as u64) as usize;
        // Mix tiny, mid and elephant values; bias toward round numbers
        // so equal entries (matching ties) are common.
        let v = match rng.below(4) {
            0 => 1 + rng.below(64),
            1 => 10_000,
            2 => 50_000 + 1_000 * rng.below(8),
            _ => 1 << (10 + rng.below(20)),
        };
        d.set(idx / n, idx % n, v);
    }
    d
}

/// Mutates a demand in place the way epoch-to-epoch churn does: some
/// cells drain to zero, some grow, some appear.
fn drift_demand(d: &mut DemandMatrix, rng: &mut SimRng) {
    let n = d.n();
    let changes = rng.below(1 + (n as u64)) as usize;
    for _ in 0..changes {
        let idx = rng.below((n * n) as u64) as usize;
        let (s, t) = (idx / n, idx % n);
        match rng.below(3) {
            0 => d.set(s, t, 0),
            1 => d.add(s, t, 1 + rng.below(100_000)),
            _ => d.set(s, t, 1 + rng.below(1 << 24)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Multi-epoch runs over drifting demand: every epoch's schedule
    /// equals the stateless reference's.
    #[test]
    fn optimized_solstice_equals_reference_across_epochs(
        n in 2usize..24,
        seed in 0u64..10_000,
        perms in 1u32..9,
        tracked in any::<bool>(),
    ) {
        let mut rng = SimRng::new(seed);
        let c = ctx(1_000, 100, 8);
        let mut s = SolsticeScheduler::new(perms);
        let cells = 1 + rng.below((2 * n) as u64) as usize;
        let mut d = random_demand(n, cells, &mut rng, tracked);
        for epoch in 0..5 {
            let got = s.schedule(&d, &c);
            let want = reference_schedule(&d, &c, perms);
            prop_assert_eq!(
                &got, &want,
                "epoch {} (n={}, seed={}, perms={}, tracked={}) diverged",
                epoch, n, seed, perms, tracked
            );
            // Epochs 0→1 keep demand identical (pure memo replay); later
            // epochs drift it.
            if epoch >= 1 {
                drift_demand(&mut d, &mut rng);
            }
        }
    }

    /// Tight budgets and coarse reconfiguration: the slot-sizing branch
    /// points (`remaining <= 2*reconfig`, zero slots) must agree too.
    #[test]
    fn optimized_solstice_equals_reference_under_tight_budgets(
        n in 2usize..10,
        seed in 0u64..10_000,
        max_entries in 1usize..4,
    ) {
        let mut rng = SimRng::new(seed);
        let c = ctx(2_000, 10, max_entries);
        let mut s = SolsticeScheduler::new(8);
        for _ in 0..3 {
            let cells = 1 + rng.below((n * n) as u64) as usize;
            let d = random_demand(n, cells, &mut rng, true);
            let got = s.schedule(&d, &c);
            let want = reference_schedule(&d, &c, 8);
            prop_assert_eq!(&got, &want);
        }
    }

    /// Port-count changes mid-run: the optimized scheduler's warm state
    /// resets and still matches the reference at every size.
    #[test]
    fn optimized_solstice_equals_reference_across_port_changes(
        seed in 0u64..10_000,
        sizes in proptest::collection::vec(2usize..17, 2..5),
    ) {
        let mut rng = SimRng::new(seed);
        let c = ctx(1_000, 100, 8);
        let mut s = SolsticeScheduler::new(4);
        for n in sizes {
            let cells = 1 + rng.below((2 * n) as u64) as usize;
            let tracked = rng.bool(0.5);
            let d = random_demand(n, cells, &mut rng, tracked);
            let got = s.schedule(&d, &c);
            let want = reference_schedule(&d, &c, 4);
            prop_assert_eq!(&got, &want, "diverged after switching to n={}", n);
        }
    }
}
