//! Run reports: every experiment consumes the same measurement bundle.

use xds_metrics::{FctStats, LatencyHistogram, SizeClass, Table};
use xds_sim::SimDuration;
use xds_switch::{EpsStats, OcsStats};

/// Packet drops by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Switch VOQ overflow (fast mode).
    pub voq_full: u64,
    /// EPS output-queue overflow.
    pub eps_full: u64,
    /// Packets that hit a dark or re-assigned circuit (slow mode
    /// synchronization failures).
    pub sync_violation: u64,
}

impl DropStats {
    /// Total drops.
    pub fn total(&self) -> u64 {
        self.voq_full + self.eps_full + self.sync_violation
    }
}

/// The measurement bundle of one run.
#[derive(Debug)]
pub struct RunReport {
    /// Scheduler used.
    pub scheduler: String,
    /// Placement label ("hardware" / "software").
    pub placement: String,
    /// Measured horizon.
    pub horizon: SimDuration,
    /// Events processed.
    pub events: u64,

    /// Bytes offered by the workload (flow sizes + app packets).
    pub offered_bytes: u64,
    /// Flows injected.
    pub offered_flows: u64,
    /// Flows fully delivered.
    pub completed_flows: u64,
    /// Bytes delivered over the OCS.
    pub delivered_ocs_bytes: u64,
    /// Bytes delivered over the EPS.
    pub delivered_eps_bytes: u64,

    /// One-way latency of interactive packets (ns).
    pub latency_interactive: LatencyHistogram,
    /// One-way latency of short-class packets (ns).
    pub latency_short: LatencyHistogram,
    /// One-way latency of bulk packets (ns).
    pub latency_bulk: LatencyHistogram,
    /// Mean RFC 3550 jitter across apps (ns), if any apps ran.
    pub voip_jitter_mean_ns: Option<f64>,
    /// Worst per-app RFC 3550 jitter (ns).
    pub voip_jitter_max_ns: Option<f64>,

    /// FCT stats per size class.
    pub fct_mice: Option<FctStats>,
    /// FCT stats for medium flows.
    pub fct_medium: Option<FctStats>,
    /// FCT stats for elephants.
    pub fct_elephant: Option<FctStats>,
    /// FCT stats over all flows.
    pub fct_overall: Option<FctStats>,

    /// Peak bytes buffered in host memory.
    pub peak_host_buffer: u64,
    /// Peak bytes buffered in the switch.
    pub peak_switch_buffer: u64,

    /// Drops by cause.
    pub drops: DropStats,
    /// OCS lifetime stats.
    pub ocs: OcsStats,
    /// EPS lifetime stats.
    pub eps: EpsStats,

    /// Scheduler decisions taken.
    pub decisions: u64,
    /// Mean decision latency (ns).
    pub decision_latency_mean_ns: f64,
    /// Mean relative L1 demand-estimation error (E6), if sampled.
    pub demand_error_mean: Option<f64>,

    /// Wall-clock split of the per-epoch scheduling path (host time, not
    /// simulated time — which phase of the epoch loop the simulator
    /// itself spends its cycles in). Deliberately **not** part of
    /// [`trace_json`](Self::trace_json): wall-clock is nondeterministic,
    /// and the golden traces pin simulated behavior only.
    pub phases: EpochPhaseNs,
}

/// Wall-clock nanoseconds the simulator spent in each phase of the
/// epoch path, summed over the run: request intake plus demand
/// estimation plus error sampling (`estimate`), the scheduling
/// algorithm proper (`decompose`), and grant-burst execution at slot
/// activation (`apply`, fast mode). The bench harness emits these per
/// point so a scale regression names its phase instead of just its
/// point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochPhaseNs {
    /// Requests → estimator → demand-error sample.
    pub estimate: u64,
    /// `Scheduler::schedule` (the decomposition / matching work).
    pub decompose: u64,
    /// Grant execution when a slot activates (fast mode).
    pub apply: u64,
}

impl RunReport {
    /// Total delivered bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_ocs_bytes + self.delivered_eps_bytes
    }

    /// Achieved aggregate throughput in Gb/s over the horizon.
    pub fn throughput_gbps(&self) -> f64 {
        if self.horizon.is_zero() {
            return 0.0;
        }
        self.delivered_bytes() as f64 * 8.0 / self.horizon.as_secs_f64() / 1e9
    }

    /// Delivered / offered bytes (may legitimately be < 1 when queues
    /// still hold traffic at the horizon).
    pub fn goodput_fraction(&self) -> f64 {
        if self.offered_bytes == 0 {
            return 0.0;
        }
        self.delivered_bytes() as f64 / self.offered_bytes as f64
    }

    /// Fraction of delivered bytes that rode the OCS.
    pub fn ocs_byte_share(&self) -> f64 {
        let total = self.delivered_bytes();
        if total == 0 {
            return 0.0;
        }
        self.delivered_ocs_bytes as f64 / total as f64
    }

    /// OCS duty cycle: fraction of the horizon *not* spent dark.
    pub fn ocs_duty_cycle(&self) -> f64 {
        if self.horizon.is_zero() {
            return 0.0;
        }
        1.0 - (self.ocs.dark_time.as_secs_f64() / self.horizon.as_secs_f64()).min(1.0)
    }

    /// Canonical deep serialization of the whole measurement bundle as
    /// deterministic JSON: every counter, drop cause, histogram digest and
    /// FCT class, formatted identically on every run of the same
    /// simulation. This is the golden-trace format — regression tests
    /// snapshot it byte-for-byte, so any behavioral drift in the runtime
    /// (event ordering, byte accounting, latency recording) shows up as a
    /// diff even when headline aggregates happen to agree.
    pub fn trace_json(&self) -> String {
        use std::fmt::Write as _;
        fn f64j(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".into()
            }
        }
        fn hist(out: &mut String, key: &str, h: &LatencyHistogram) {
            let _ = writeln!(
                out,
                "  \"{key}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}},",
                h.count(),
                h.min(),
                h.max(),
                f64j(h.mean()),
                h.p50(),
                h.quantile(0.90),
                h.p99(),
                h.p999()
            );
        }
        fn fct(out: &mut String, key: &str, s: &Option<FctStats>) {
            match s {
                None => {
                    let _ = writeln!(out, "  \"{key}\": null,");
                }
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "  \"{key}\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
                         \"p99_ns\": {}, \"max_ns\": {}}},",
                        s.count,
                        f64j(s.mean_ns),
                        s.p50_ns,
                        s.p99_ns,
                        s.max_ns
                    );
                }
            }
        }
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"scheduler\": \"{}\",", self.scheduler);
        let _ = writeln!(o, "  \"placement\": \"{}\",", self.placement);
        let _ = writeln!(o, "  \"horizon_ns\": {},", self.horizon.as_nanos());
        let _ = writeln!(o, "  \"events\": {},", self.events);
        let _ = writeln!(o, "  \"offered_bytes\": {},", self.offered_bytes);
        let _ = writeln!(o, "  \"offered_flows\": {},", self.offered_flows);
        let _ = writeln!(o, "  \"completed_flows\": {},", self.completed_flows);
        let _ = writeln!(
            o,
            "  \"delivered_ocs_bytes\": {},",
            self.delivered_ocs_bytes
        );
        let _ = writeln!(
            o,
            "  \"delivered_eps_bytes\": {},",
            self.delivered_eps_bytes
        );
        hist(&mut o, "latency_interactive", &self.latency_interactive);
        hist(&mut o, "latency_short", &self.latency_short);
        hist(&mut o, "latency_bulk", &self.latency_bulk);
        let _ = writeln!(
            o,
            "  \"voip_jitter_mean_ns\": {},",
            self.voip_jitter_mean_ns
                .map(f64j)
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            o,
            "  \"voip_jitter_max_ns\": {},",
            self.voip_jitter_max_ns
                .map(f64j)
                .unwrap_or_else(|| "null".into())
        );
        fct(&mut o, "fct_mice", &self.fct_mice);
        fct(&mut o, "fct_medium", &self.fct_medium);
        fct(&mut o, "fct_elephant", &self.fct_elephant);
        fct(&mut o, "fct_overall", &self.fct_overall);
        let _ = writeln!(o, "  \"peak_host_buffer\": {},", self.peak_host_buffer);
        let _ = writeln!(o, "  \"peak_switch_buffer\": {},", self.peak_switch_buffer);
        let _ = writeln!(
            o,
            "  \"drops\": {{\"voq_full\": {}, \"eps_full\": {}, \"sync_violation\": {}}},",
            self.drops.voq_full, self.drops.eps_full, self.drops.sync_violation
        );
        let _ = writeln!(
            o,
            "  \"ocs\": {{\"reconfigurations\": {}, \"dark_time_ns\": {}, \
             \"delivered_bytes\": {}, \"delivered_packets\": {}, \"rejected\": {}}},",
            self.ocs.reconfigurations,
            self.ocs.dark_time.as_nanos(),
            self.ocs.delivered_bytes,
            self.ocs.delivered_packets,
            self.ocs.rejected
        );
        let _ = writeln!(
            o,
            "  \"eps\": {{\"delivered_bytes\": {}, \"delivered_packets\": {}, \
             \"drops\": {}, \"dropped_bytes\": {}}},",
            self.eps.delivered_bytes,
            self.eps.delivered_packets,
            self.eps.drops,
            self.eps.dropped_bytes
        );
        let _ = writeln!(o, "  \"decisions\": {},", self.decisions);
        let _ = writeln!(
            o,
            "  \"decision_latency_mean_ns\": {},",
            f64j(self.decision_latency_mean_ns)
        );
        let _ = writeln!(
            o,
            "  \"demand_error_mean\": {}",
            self.demand_error_mean
                .map(f64j)
                .unwrap_or_else(|| "null".into())
        );
        o.push_str("}\n");
        o
    }

    /// FCT stats for one class.
    pub fn fct(&self, class: SizeClass) -> Option<&FctStats> {
        match class {
            SizeClass::Mice => self.fct_mice.as_ref(),
            SizeClass::Medium => self.fct_medium.as_ref(),
            SizeClass::Elephant => self.fct_elephant.as_ref(),
        }
    }

    /// Renders the headline numbers as a table (used by the quickstart
    /// example and F2).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            format!("run summary: {} / {}", self.scheduler, self.placement),
            &["metric", "value"],
        );
        let mut row = |k: &str, v: String| {
            t.row(vec![k.to_string(), v]);
        };
        row("horizon", self.horizon.to_string());
        row("offered", xds_metrics::fmt_bytes(self.offered_bytes));
        row(
            "delivered (ocs/eps)",
            format!(
                "{} / {}",
                xds_metrics::fmt_bytes(self.delivered_ocs_bytes),
                xds_metrics::fmt_bytes(self.delivered_eps_bytes)
            ),
        );
        row("throughput", format!("{:.3} Gbps", self.throughput_gbps()));
        row("p99 latency bulk", format!("{}ns", self.latency_bulk.p99()));
        row(
            "p99 latency interactive",
            format!("{}ns", self.latency_interactive.p99()),
        );
        row(
            "peak buffer host/switch",
            format!(
                "{} / {}",
                xds_metrics::fmt_bytes(self.peak_host_buffer),
                xds_metrics::fmt_bytes(self.peak_switch_buffer)
            ),
        );
        row("drops", format!("{:?}", self.drops));
        row("decisions", self.decisions.to_string());
        row(
            "mean decision latency",
            format!("{:.0}ns", self.decision_latency_mean_ns),
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> RunReport {
        RunReport {
            scheduler: "test".into(),
            placement: "hardware".into(),
            horizon: SimDuration::from_millis(1),
            events: 0,
            offered_bytes: 0,
            offered_flows: 0,
            completed_flows: 0,
            delivered_ocs_bytes: 0,
            delivered_eps_bytes: 0,
            latency_interactive: LatencyHistogram::new(),
            latency_short: LatencyHistogram::new(),
            latency_bulk: LatencyHistogram::new(),
            voip_jitter_mean_ns: None,
            voip_jitter_max_ns: None,
            fct_mice: None,
            fct_medium: None,
            fct_elephant: None,
            fct_overall: None,
            peak_host_buffer: 0,
            peak_switch_buffer: 0,
            drops: DropStats::default(),
            ocs: OcsStats::default(),
            eps: EpsStats::default(),
            decisions: 0,
            decision_latency_mean_ns: 0.0,
            demand_error_mean: None,
            phases: EpochPhaseNs::default(),
        }
    }

    #[test]
    fn throughput_and_shares() {
        let mut r = blank();
        r.delivered_ocs_bytes = 9_000_000;
        r.delivered_eps_bytes = 1_000_000;
        r.offered_bytes = 20_000_000;
        // 10 MB over 1 ms = 80 Gb/s.
        assert!((r.throughput_gbps() - 80.0).abs() < 1e-9);
        assert!((r.goodput_fraction() - 0.5).abs() < 1e-12);
        assert!((r.ocs_byte_share() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_all_zeros() {
        let r = blank();
        assert_eq!(r.throughput_gbps(), 0.0);
        assert_eq!(r.goodput_fraction(), 0.0);
        assert_eq!(r.ocs_byte_share(), 0.0);
        assert_eq!(r.drops.total(), 0);
    }

    #[test]
    fn duty_cycle_subtracts_dark_time() {
        let mut r = blank();
        r.ocs.dark_time = SimDuration::from_micros(100);
        // 100 µs dark of 1 ms = 90 % duty.
        assert!((r.ocs_duty_cycle() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn summary_table_renders() {
        let r = blank();
        let t = r.summary_table();
        assert!(!t.is_empty());
        let text = t.render_text();
        assert!(text.contains("throughput"));
    }
}
