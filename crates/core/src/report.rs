//! Run reports: every experiment consumes the same measurement bundle.
//!
//! Derived metrics are exposed twice: as typed methods
//! ([`RunReport::throughput_gbps`], …) and as the canonical
//! [`RunReport::metric_columns`] list — the single accessor layer both
//! the human [`RunReport::summary_table`] and the machine-readable sweep
//! rows (`xds_scenario::output`) derive their cells from, so the two can
//! never disagree on what a column means.

use xds_metrics::{CounterSet, EpochSeries, FctStats, LatencyHistogram, SizeClass, Table};
use xds_sim::SimDuration;
use xds_switch::{EpsStats, OcsStats};

/// Packet drops by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Switch VOQ overflow (fast mode).
    pub voq_full: u64,
    /// EPS output-queue overflow.
    pub eps_full: u64,
    /// Packets that hit a dark or re-assigned circuit (slow mode
    /// synchronization failures).
    pub sync_violation: u64,
    /// Packets that hit a fault-injected dark link (see
    /// [`crate::fault::FaultPlan`]).
    pub link_dark: u64,
}

impl DropStats {
    /// Total drops.
    pub fn total(&self) -> u64 {
        self.voq_full + self.eps_full + self.sync_violation + self.link_dark
    }
}

/// The measurement bundle of one run.
#[derive(Debug)]
pub struct RunReport {
    /// Scheduler used.
    pub scheduler: String,
    /// Placement label ("hardware" / "software").
    pub placement: String,
    /// Measured horizon.
    pub horizon: SimDuration,
    /// Events processed.
    pub events: u64,

    /// Bytes offered by the workload (flow sizes + app packets).
    pub offered_bytes: u64,
    /// Flows injected.
    pub offered_flows: u64,
    /// Flows fully delivered.
    pub completed_flows: u64,
    /// Bytes delivered over the OCS.
    pub delivered_ocs_bytes: u64,
    /// Bytes delivered over the EPS.
    pub delivered_eps_bytes: u64,

    /// One-way latency of interactive packets (ns).
    pub latency_interactive: LatencyHistogram,
    /// One-way latency of short-class packets (ns).
    pub latency_short: LatencyHistogram,
    /// One-way latency of bulk packets (ns).
    pub latency_bulk: LatencyHistogram,
    /// Mean RFC 3550 jitter across apps (ns), if any apps ran.
    pub voip_jitter_mean_ns: Option<f64>,
    /// Worst per-app RFC 3550 jitter (ns).
    pub voip_jitter_max_ns: Option<f64>,

    /// FCT stats per size class.
    pub fct_mice: Option<FctStats>,
    /// FCT stats for medium flows.
    pub fct_medium: Option<FctStats>,
    /// FCT stats for elephants.
    pub fct_elephant: Option<FctStats>,
    /// FCT stats over all flows.
    pub fct_overall: Option<FctStats>,

    /// Peak bytes buffered in host memory.
    pub peak_host_buffer: u64,
    /// Peak bytes buffered in the switch.
    pub peak_switch_buffer: u64,

    /// Drops by cause.
    pub drops: DropStats,
    /// OCS lifetime stats.
    pub ocs: OcsStats,
    /// EPS lifetime stats.
    pub eps: EpsStats,

    /// Scheduler decisions taken.
    pub decisions: u64,
    /// Mean decision latency (ns).
    pub decision_latency_mean_ns: f64,
    /// Mean relative L1 demand-estimation error (E6), if sampled.
    pub demand_error_mean: Option<f64>,

    /// Simulated nanoseconds the fabric spent in degraded mode (at
    /// least one port dark to injected faults). Zero when no fault plan
    /// was armed.
    pub fault_degraded_ns: u64,
    /// Bytes diverted from granted OCS bursts onto the EPS slow path
    /// because the circuit was faulted or stale. Zero when no fault
    /// plan was armed.
    pub fault_failover_bytes: u64,

    /// Wall-clock split of the per-epoch scheduling path (host time, not
    /// simulated time — which phase of the epoch loop the simulator
    /// itself spends its cycles in). Deliberately **not** part of
    /// [`trace_json`](Self::trace_json): wall-clock is nondeterministic,
    /// and the golden traces pin simulated behavior only.
    pub phases: EpochPhaseNs,

    /// Epoch-resolution telemetry (per-epoch demand error, duty cycle,
    /// VOQ backlog), recorded only under the `timeseries`
    /// instrumentation profile. Like [`phases`](Self::phases), excluded
    /// from [`trace_json`](Self::trace_json) — the golden traces pin the
    /// classic aggregate bundle.
    pub timeseries: Option<EpochSeries>,

    /// Deterministic internal counters (scheduler memoization, ladder-
    /// queue structural paths, packet-pool conservation ledger, grant
    /// batching): pure functions of the simulated event sequence, so
    /// they are pinnable and thread-count-invariant. Deliberately **not**
    /// part of [`trace_json`](Self::trace_json) — the golden traces pin
    /// the classic aggregate bundle and must not churn when a counter is
    /// added. Surfaced to sweep rows via
    /// [`counter_columns`](Self::counter_columns).
    pub counters: CounterSet,

    /// Serialized Chrome Trace Event Format JSON from the flight
    /// recorder, present only when the run was built with
    /// `SimBuilder::trace(true)`. Wall-clock data — like
    /// [`phases`](Self::phases), excluded from
    /// [`trace_json`](Self::trace_json).
    pub chrome_trace: Option<String>,

    /// Whether a delivery sink actually observed this run (false under
    /// the `lean` profile). When false, the latency/FCT fields above are
    /// *unmeasured*, not zero, and [`metric_columns`](Self::metric_columns)
    /// renders them as `null` so lean rows cannot be mistaken for
    /// "measured zero". Excluded from `trace_json` (goldens always run
    /// full fidelity).
    pub measured_deliveries: bool,
    /// Whether buffer-peak accounting ran (false under `lean`): when
    /// false the peak-buffer fields are unmeasured, not zero.
    pub measured_buffers: bool,
}

/// Wall-clock nanoseconds the simulator spent in each phase of the
/// epoch path, summed over the run: request intake plus demand
/// estimation plus error sampling (`estimate`), the scheduling
/// algorithm proper (`decompose`), and grant-burst execution at slot
/// activation (`apply`, fast mode). The bench harness emits these per
/// point so a scale regression names its phase instead of just its
/// point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochPhaseNs {
    /// Requests → estimator → demand-error sample.
    pub estimate: u64,
    /// `Scheduler::schedule` (the decomposition / matching work).
    pub decompose: u64,
    /// Grant execution when a slot activates (fast mode).
    pub apply: u64,
}

/// A single machine-readable metric value from the
/// [`RunReport::metric_columns`] accessor layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Exact counter.
    U64(u64),
    /// Derived rate/ratio.
    F64(f64),
    /// Optional float (absent renders as `null`/empty).
    OptF64(Option<f64>),
    /// Optional counter (absent renders as `null`/empty).
    OptU64(Option<u64>),
}

impl MetricValue {
    /// Deterministic JSON literal: integers verbatim, floats in Rust's
    /// shortest-roundtrip `{:?}` form, absent/non-finite as `null`.
    pub fn json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".into()
            }
        }
        match self {
            MetricValue::U64(v) => v.to_string(),
            MetricValue::F64(v) => f(*v),
            MetricValue::OptF64(v) => v.map(f).unwrap_or_else(|| "null".into()),
            MetricValue::OptU64(v) => v.map(|x| x.to_string()).unwrap_or_else(|| "null".into()),
        }
    }

    /// The value as a float, if present (counters widen losslessly
    /// enough for presentation).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::U64(v) => Some(*v as f64),
            MetricValue::F64(v) => Some(*v),
            MetricValue::OptF64(v) => *v,
            MetricValue::OptU64(v) => v.map(|x| x as f64),
        }
    }

    /// The value as an exact counter, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::U64(v) => Some(*v),
            MetricValue::OptU64(v) => *v,
            _ => None,
        }
    }
}

impl RunReport {
    /// An all-zero report skeleton for the given identity: every counter
    /// zero, every histogram empty, every optional absent, observation
    /// flags set to "measured". The exact runtime fills its bundle
    /// incrementally; synthetic producers (the `xds-estimate` fidelity
    /// tier, test fixtures) start from this skeleton so adding a report
    /// field breaks exactly one constructor.
    pub fn skeleton(
        scheduler: impl Into<String>,
        placement: impl Into<String>,
        horizon: SimDuration,
    ) -> RunReport {
        RunReport {
            scheduler: scheduler.into(),
            placement: placement.into(),
            horizon,
            events: 0,
            offered_bytes: 0,
            offered_flows: 0,
            completed_flows: 0,
            delivered_ocs_bytes: 0,
            delivered_eps_bytes: 0,
            latency_interactive: LatencyHistogram::new(),
            latency_short: LatencyHistogram::new(),
            latency_bulk: LatencyHistogram::new(),
            voip_jitter_mean_ns: None,
            voip_jitter_max_ns: None,
            fct_mice: None,
            fct_medium: None,
            fct_elephant: None,
            fct_overall: None,
            peak_host_buffer: 0,
            peak_switch_buffer: 0,
            drops: DropStats::default(),
            ocs: OcsStats::default(),
            eps: EpsStats::default(),
            decisions: 0,
            decision_latency_mean_ns: 0.0,
            demand_error_mean: None,
            fault_degraded_ns: 0,
            fault_failover_bytes: 0,
            phases: EpochPhaseNs::default(),
            timeseries: None,
            counters: CounterSet::default(),
            chrome_trace: None,
            measured_deliveries: true,
            measured_buffers: true,
        }
    }

    /// Total delivered bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_ocs_bytes + self.delivered_eps_bytes
    }

    /// Achieved aggregate throughput in Gb/s over the horizon.
    pub fn throughput_gbps(&self) -> f64 {
        if self.horizon.is_zero() {
            return 0.0;
        }
        self.delivered_bytes() as f64 * 8.0 / self.horizon.as_secs_f64() / 1e9
    }

    /// Delivered / offered bytes (may legitimately be < 1 when queues
    /// still hold traffic at the horizon).
    pub fn goodput_fraction(&self) -> f64 {
        if self.offered_bytes == 0 {
            return 0.0;
        }
        self.delivered_bytes() as f64 / self.offered_bytes as f64
    }

    /// Fraction of delivered bytes that rode the OCS.
    pub fn ocs_byte_share(&self) -> f64 {
        let total = self.delivered_bytes();
        if total == 0 {
            return 0.0;
        }
        self.delivered_ocs_bytes as f64 / total as f64
    }

    /// OCS duty cycle: fraction of the horizon *not* spent dark.
    pub fn ocs_duty_cycle(&self) -> f64 {
        if self.horizon.is_zero() {
            return 0.0;
        }
        1.0 - (self.ocs.dark_time.as_secs_f64() / self.horizon.as_secs_f64()).min(1.0)
    }

    /// Canonical deep serialization of the whole measurement bundle as
    /// deterministic JSON: every counter, drop cause, histogram digest and
    /// FCT class, formatted identically on every run of the same
    /// simulation. This is the golden-trace format — regression tests
    /// snapshot it byte-for-byte, so any behavioral drift in the runtime
    /// (event ordering, byte accounting, latency recording) shows up as a
    /// diff even when headline aggregates happen to agree.
    pub fn trace_json(&self) -> String {
        use std::fmt::Write as _;
        fn f64j(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".into()
            }
        }
        fn hist(out: &mut String, key: &str, h: &LatencyHistogram) {
            let _ = writeln!(
                out,
                "  \"{key}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}},",
                h.count(),
                h.min(),
                h.max(),
                f64j(h.mean()),
                h.p50(),
                h.quantile(0.90),
                h.p99(),
                h.p999()
            );
        }
        fn fct(out: &mut String, key: &str, s: &Option<FctStats>) {
            match s {
                None => {
                    let _ = writeln!(out, "  \"{key}\": null,");
                }
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "  \"{key}\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
                         \"p99_ns\": {}, \"max_ns\": {}}},",
                        s.count,
                        f64j(s.mean_ns),
                        s.p50_ns,
                        s.p99_ns,
                        s.max_ns
                    );
                }
            }
        }
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"scheduler\": \"{}\",", self.scheduler);
        let _ = writeln!(o, "  \"placement\": \"{}\",", self.placement);
        let _ = writeln!(o, "  \"horizon_ns\": {},", self.horizon.as_nanos());
        let _ = writeln!(o, "  \"events\": {},", self.events);
        let _ = writeln!(o, "  \"offered_bytes\": {},", self.offered_bytes);
        let _ = writeln!(o, "  \"offered_flows\": {},", self.offered_flows);
        let _ = writeln!(o, "  \"completed_flows\": {},", self.completed_flows);
        let _ = writeln!(
            o,
            "  \"delivered_ocs_bytes\": {},",
            self.delivered_ocs_bytes
        );
        let _ = writeln!(
            o,
            "  \"delivered_eps_bytes\": {},",
            self.delivered_eps_bytes
        );
        hist(&mut o, "latency_interactive", &self.latency_interactive);
        hist(&mut o, "latency_short", &self.latency_short);
        hist(&mut o, "latency_bulk", &self.latency_bulk);
        let _ = writeln!(
            o,
            "  \"voip_jitter_mean_ns\": {},",
            self.voip_jitter_mean_ns
                .map(f64j)
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            o,
            "  \"voip_jitter_max_ns\": {},",
            self.voip_jitter_max_ns
                .map(f64j)
                .unwrap_or_else(|| "null".into())
        );
        fct(&mut o, "fct_mice", &self.fct_mice);
        fct(&mut o, "fct_medium", &self.fct_medium);
        fct(&mut o, "fct_elephant", &self.fct_elephant);
        fct(&mut o, "fct_overall", &self.fct_overall);
        let _ = writeln!(o, "  \"peak_host_buffer\": {},", self.peak_host_buffer);
        let _ = writeln!(o, "  \"peak_switch_buffer\": {},", self.peak_switch_buffer);
        let _ = writeln!(
            o,
            "  \"drops\": {{\"voq_full\": {}, \"eps_full\": {}, \"sync_violation\": {}}},",
            self.drops.voq_full, self.drops.eps_full, self.drops.sync_violation
        );
        let _ = writeln!(
            o,
            "  \"ocs\": {{\"reconfigurations\": {}, \"dark_time_ns\": {}, \
             \"delivered_bytes\": {}, \"delivered_packets\": {}, \"rejected\": {}}},",
            self.ocs.reconfigurations,
            self.ocs.dark_time.as_nanos(),
            self.ocs.delivered_bytes,
            self.ocs.delivered_packets,
            self.ocs.rejected
        );
        let _ = writeln!(
            o,
            "  \"eps\": {{\"delivered_bytes\": {}, \"delivered_packets\": {}, \
             \"drops\": {}, \"dropped_bytes\": {}}},",
            self.eps.delivered_bytes,
            self.eps.delivered_packets,
            self.eps.drops,
            self.eps.dropped_bytes
        );
        let _ = writeln!(o, "  \"decisions\": {},", self.decisions);
        let _ = writeln!(
            o,
            "  \"decision_latency_mean_ns\": {},",
            f64j(self.decision_latency_mean_ns)
        );
        let _ = writeln!(
            o,
            "  \"demand_error_mean\": {}",
            self.demand_error_mean
                .map(f64j)
                .unwrap_or_else(|| "null".into())
        );
        o.push_str("}\n");
        o
    }

    /// The canonical machine-readable metric columns, in stable order:
    /// the one list every row emitter (sweep JSON/CSV) and the summary
    /// table derive their report-backed cells from. Names are stable
    /// column identifiers.
    pub fn metric_columns(&self) -> Vec<(&'static str, MetricValue)> {
        use MetricValue as V;
        // Observation-derived columns render as absent (`null`/empty)
        // when their recorder did not run: a lean row must not read as
        // "measured zero latency / zero buffering".
        let obs = |v: u64| {
            if self.measured_deliveries {
                V::OptU64(Some(v))
            } else {
                V::OptU64(None)
            }
        };
        let buf = |v: u64| {
            if self.measured_buffers {
                V::OptU64(Some(v))
            } else {
                V::OptU64(None)
            }
        };
        vec![
            ("events", V::U64(self.events)),
            ("offered_bytes", V::U64(self.offered_bytes)),
            ("offered_flows", V::U64(self.offered_flows)),
            ("completed_flows", obs(self.completed_flows)),
            ("delivered_ocs_bytes", V::U64(self.delivered_ocs_bytes)),
            ("delivered_eps_bytes", V::U64(self.delivered_eps_bytes)),
            ("throughput_gbps", V::F64(self.throughput_gbps())),
            ("goodput", V::F64(self.goodput_fraction())),
            ("ocs_byte_share", V::F64(self.ocs_byte_share())),
            ("ocs_duty_cycle", V::F64(self.ocs_duty_cycle())),
            ("p50_bulk_ns", obs(self.latency_bulk.p50())),
            ("p99_bulk_ns", obs(self.latency_bulk.p99())),
            ("p50_inter_ns", obs(self.latency_interactive.p50())),
            ("p99_inter_ns", obs(self.latency_interactive.p99())),
            ("jitter_mean_ns", V::OptF64(self.voip_jitter_mean_ns)),
            ("jitter_max_ns", V::OptF64(self.voip_jitter_max_ns)),
            (
                "fct_p99_ns",
                V::OptU64(self.fct_overall.as_ref().map(|x| x.p99_ns)),
            ),
            ("drops_voq", V::U64(self.drops.voq_full)),
            ("drops_eps", V::U64(self.drops.eps_full)),
            ("drops_sync", V::U64(self.drops.sync_violation)),
            ("drops_link_dark", V::U64(self.drops.link_dark)),
            ("peak_host_buffer", buf(self.peak_host_buffer)),
            ("peak_switch_buffer", buf(self.peak_switch_buffer)),
            ("ocs_reconfigurations", V::U64(self.ocs.reconfigurations)),
            ("decisions", V::U64(self.decisions)),
            (
                "decision_latency_mean_ns",
                V::F64(self.decision_latency_mean_ns),
            ),
            ("demand_error_mean", V::OptF64(self.demand_error_mean)),
            ("fault_degraded_ns", V::U64(self.fault_degraded_ns)),
            ("fault_failover_bytes", V::U64(self.fault_failover_bytes)),
        ]
    }

    /// The deterministic internal-counter columns, in [`CounterSet`]'s
    /// canonical order. Kept separate from
    /// [`metric_columns`](Self::metric_columns) so the classic sweep
    /// row layout is unchanged unless a caller opts the counter group
    /// in.
    pub fn counter_columns(&self) -> Vec<(&'static str, MetricValue)> {
        self.counters
            .items()
            .iter()
            .map(|&(k, v)| (k, MetricValue::U64(v)))
            .collect()
    }

    /// Looks one canonical metric column up by name.
    pub fn metric(&self, name: &str) -> Option<MetricValue> {
        self.metric_columns()
            .into_iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    /// Looks a canonical column up in an already-materialized
    /// [`metric_columns`](Self::metric_columns) slice — the shared lens
    /// every table renderer uses, so a renamed column fails in one
    /// place.
    ///
    /// # Panics
    /// Panics on an unknown name (the canonical set is closed).
    pub fn column(cols: &[(&'static str, MetricValue)], name: &str) -> MetricValue {
        cols.iter()
            .find(|(k, _)| *k == name)
            .unwrap_or_else(|| panic!("unknown metric column {name}"))
            .1
    }

    /// FCT stats for one class.
    pub fn fct(&self, class: SizeClass) -> Option<&FctStats> {
        match class {
            SizeClass::Mice => self.fct_mice.as_ref(),
            SizeClass::Medium => self.fct_medium.as_ref(),
            SizeClass::Elephant => self.fct_elephant.as_ref(),
        }
    }

    /// Renders the headline numbers as a table (used by the quickstart
    /// example and F2). Every report-derived cell is pulled from the
    /// same [`metric_columns`](Self::metric_columns) accessor layer the
    /// machine-readable sweep rows use — only the formatting differs.
    /// Unmeasured observables (lean profile) render as `-`.
    pub fn summary_table(&self) -> Table {
        let cols = self.metric_columns();
        let m = |name: &str| Self::column(&cols, name);
        let u = |name: &str| m(name).as_u64().expect("counter column");
        let f = |name: &str| m(name).as_f64().expect("numeric column");
        // Observation columns may be absent (unmeasured).
        let bytes_or_dash = |name: &str| {
            m(name)
                .as_u64()
                .map(xds_metrics::fmt_bytes)
                .unwrap_or_else(|| "-".into())
        };
        let ns_or_dash = |name: &str| {
            m(name)
                .as_u64()
                .map(|v| format!("{v}ns"))
                .unwrap_or_else(|| "-".into())
        };
        let mut t = Table::new(
            format!("run summary: {} / {}", self.scheduler, self.placement),
            &["metric", "value"],
        );
        let mut row = |k: &str, v: String| {
            t.row(vec![k.to_string(), v]);
        };
        row("horizon", self.horizon.to_string());
        row("offered", xds_metrics::fmt_bytes(u("offered_bytes")));
        row(
            "delivered (ocs/eps)",
            format!(
                "{} / {}",
                xds_metrics::fmt_bytes(u("delivered_ocs_bytes")),
                xds_metrics::fmt_bytes(u("delivered_eps_bytes"))
            ),
        );
        row("throughput", format!("{:.3} Gbps", f("throughput_gbps")));
        row("p99 latency bulk", ns_or_dash("p99_bulk_ns"));
        row("p99 latency interactive", ns_or_dash("p99_inter_ns"));
        row(
            "peak buffer host/switch",
            format!(
                "{} / {}",
                bytes_or_dash("peak_host_buffer"),
                bytes_or_dash("peak_switch_buffer")
            ),
        );
        row("drops", format!("{:?}", self.drops));
        row("decisions", u("decisions").to_string());
        row(
            "mean decision latency",
            format!("{:.0}ns", f("decision_latency_mean_ns")),
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> RunReport {
        RunReport::skeleton("test", "hardware", SimDuration::from_millis(1))
    }

    #[test]
    fn throughput_and_shares() {
        let mut r = blank();
        r.delivered_ocs_bytes = 9_000_000;
        r.delivered_eps_bytes = 1_000_000;
        r.offered_bytes = 20_000_000;
        // 10 MB over 1 ms = 80 Gb/s.
        assert!((r.throughput_gbps() - 80.0).abs() < 1e-9);
        assert!((r.goodput_fraction() - 0.5).abs() < 1e-12);
        assert!((r.ocs_byte_share() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_all_zeros() {
        let r = blank();
        assert_eq!(r.throughput_gbps(), 0.0);
        assert_eq!(r.goodput_fraction(), 0.0);
        assert_eq!(r.ocs_byte_share(), 0.0);
        assert_eq!(r.drops.total(), 0);
    }

    #[test]
    fn duty_cycle_subtracts_dark_time() {
        let mut r = blank();
        r.ocs.dark_time = SimDuration::from_micros(100);
        // 100 µs dark of 1 ms = 90 % duty.
        assert!((r.ocs_duty_cycle() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn summary_table_renders() {
        let r = blank();
        let t = r.summary_table();
        assert!(!t.is_empty());
        let text = t.render_text();
        assert!(text.contains("throughput"));
    }

    #[test]
    fn counter_columns_mirror_the_counter_set_and_stay_out_of_goldens() {
        let mut r = blank();
        r.counters.sched_probes = 4;
        r.counters.pool_allocs = 9;
        let cols = r.counter_columns();
        assert_eq!(cols.len(), CounterSet::LEN);
        assert_eq!(cols[0].0, "sched_memo_hits");
        assert_eq!(
            RunReport::column(&cols, "sched_probes"),
            MetricValue::U64(4)
        );
        // Counters and flight-recorder output stay out of the golden-
        // trace serialization: adding one must not churn pinned traces.
        r.chrome_trace = Some("{\"traceEvents\": []}".into());
        let golden = r.trace_json();
        assert!(!golden.contains("sched_probes"));
        assert!(!golden.contains("traceEvents"));
    }

    #[test]
    fn metric_columns_cover_the_canonical_set_and_agree_with_methods() {
        let mut r = blank();
        r.delivered_ocs_bytes = 9_000_000;
        r.delivered_eps_bytes = 1_000_000;
        r.offered_bytes = 20_000_000;
        r.decisions = 7;
        let cols = r.metric_columns();
        // Stable, duplicate-free names.
        let mut names: Vec<&str> = cols.iter().map(|(k, _)| *k).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n, "metric column names must be unique");
        // The accessor agrees with the typed methods it wraps.
        assert_eq!(
            r.metric("throughput_gbps").unwrap().as_f64().unwrap(),
            r.throughput_gbps()
        );
        assert_eq!(r.metric("decisions").unwrap().as_u64(), Some(7));
        assert_eq!(r.metric("no_such_column"), None);
        // JSON literals are deterministic and null-safe.
        assert_eq!(MetricValue::U64(3).json(), "3");
        assert_eq!(MetricValue::F64(0.5).json(), "0.5");
        assert_eq!(MetricValue::F64(f64::NAN).json(), "null");
        assert_eq!(MetricValue::OptF64(None).json(), "null");
        assert_eq!(MetricValue::OptU64(Some(9)).json(), "9");
    }
}
