//! Testbed configuration: the "constant (yet configurable) infrastructure"
//! around the pluggable scheduling logic.

use xds_hw::{HwSchedulerModel, SwSchedulerModel, SyncModel};
use xds_sim::{BitRate, SimDuration, SimRng};
use xds_switch::{Link, Site};

/// Where the scheduler runs — the axis of the whole paper.
#[derive(Debug, Clone)]
pub enum Placement {
    /// On-switch hardware scheduler (Figure 1 "Fast Scheduling"):
    /// deterministic pipeline latency, packets buffered in switch VOQs,
    /// grants never leave the chip.
    Hardware(HwSchedulerModel),
    /// Off-switch software scheduler (Figure 1 "Slow Scheduling"):
    /// sampled decision latency with OS jitter, packets buffered at hosts,
    /// grants travel the control channel, hosts obey their skewed clocks.
    Software {
        /// Decision latency model.
        timing: SwSchedulerModel,
        /// One-way control-channel latency (grant distribution to hosts).
        ctrl_oneway: SimDuration,
        /// Host↔switch clock synchronization quality.
        sync: SyncModel,
    },
}

impl Placement {
    /// Where bulk packets wait for grants under this placement.
    pub fn buffering_site(&self) -> Site {
        match self {
            Placement::Hardware(_) => Site::Switch,
            Placement::Software { .. } => Site::Host,
        }
    }

    /// Samples the scheduler decision latency.
    pub fn decision_latency(&self, n_ports: usize, rng: &mut SimRng) -> SimDuration {
        match self {
            Placement::Hardware(m) => m.decision_latency(n_ports, rng),
            Placement::Software { timing, .. } => timing.decision_latency(n_ports, rng),
        }
    }

    /// Analytic mean decision latency (no sampling — for closed-form
    /// models and tables).
    pub fn mean_decision_latency(&self, n_ports: usize) -> SimDuration {
        match self {
            Placement::Hardware(m) => m.mean_decision_latency(n_ports),
            Placement::Software { timing, .. } => timing.mean_decision_latency(n_ports),
        }
    }

    /// Label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Hardware(_) => "hardware",
            Placement::Software { .. } => "software",
        }
    }
}

/// Full testbed configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Switch port count (= host count).
    pub n_ports: usize,
    /// Host link / OCS circuit rate.
    pub line_rate: BitRate,
    /// EPS per-output-port rate (hybrid designs undersize this —
    /// typically 1/10 of line rate).
    pub eps_rate: BitRate,
    /// EPS per-port buffer in bytes.
    pub eps_buffer: u64,
    /// Per-VOQ capacity in bytes (switch-side VOQs; host VOQs are
    /// unbounded because host memory is the thing Figure 1 measures).
    pub voq_capacity: u64,
    /// MTU for packetization.
    pub mtu: u32,
    /// OCS reconfiguration (switching) time.
    pub reconfig: SimDuration,
    /// Scheduler epoch (decision cadence).
    pub epoch: SimDuration,
    /// Max OCS configurations per epoch.
    pub max_entries: usize,
    /// Scheduler placement.
    pub placement: Placement,
    /// Guard band applied to each edge of every grant window under slow
    /// (host-gated) scheduling: hosts start `guard` late and stop `guard`
    /// early, trading capacity for immunity to clock skew up to `guard`
    /// (§2's synchronization cost; E8 measures the trade).
    pub guard: SimDuration,
    /// Host↔switch link.
    pub host_link: Link,
    /// Route interactive (VOIP) packets through the OCS path instead of
    /// the EPS (an ablation: shows why interactive traffic must not wait
    /// for grants).
    pub voip_on_ocs: bool,
    /// Master seed.
    pub seed: u64,
}

impl NodeConfig {
    /// A sensible epoch for a given switching time: 10× the reconfiguration
    /// cost (90 % best-case duty cycle), floored at 16 MTU transmission
    /// times so a slot always fits a useful burst of packets.
    pub fn default_epoch(reconfig: SimDuration, line_rate: BitRate, mtu: u32) -> SimDuration {
        let duty_floor = reconfig * 10;
        let packet_floor = line_rate.tx_time(mtu as u64) * 16;
        duty_floor.max(packet_floor)
    }

    /// Fast-scheduling preset: hardware iSLIP-class scheduler on a switch
    /// with the given port count and OCS switching time.
    pub fn fast(n_ports: usize, reconfig: SimDuration, hw: HwSchedulerModel) -> Self {
        let line_rate = BitRate::GBPS_10;
        let mtu = 1500;
        NodeConfig {
            n_ports,
            line_rate,
            eps_rate: line_rate.scale(0.1),
            eps_buffer: 1_000_000,
            // Open-loop workloads park whole elephants in VOQs (no
            // end-to-end flow control is modelled); size for that rather
            // than for reconfiguration transients, which F1 measures
            // separately with unbounded queues.
            voq_capacity: 32_000_000,
            mtu,
            reconfig,
            epoch: Self::default_epoch(reconfig, line_rate, mtu),
            max_entries: 4,
            placement: Placement::Hardware(hw),
            guard: SimDuration::ZERO,
            host_link: Link::intra_rack(line_rate),
            voip_on_ocs: false,
            seed: 1,
        }
    }

    /// Slow-scheduling preset: software scheduler with a control channel
    /// and PTP-grade synchronization.
    pub fn slow(n_ports: usize, reconfig: SimDuration, sw: SwSchedulerModel) -> Self {
        let line_rate = BitRate::GBPS_10;
        let mtu = 1500;
        // A software scheduler cannot sustain 10×reconfig epochs at ns
        // switching times; its epoch is floored by its own decision
        // latency. Callers usually override; this default keeps runs
        // self-consistent.
        let decision = sw.mean_decision_latency(n_ports);
        let epoch = Self::default_epoch(reconfig, line_rate, mtu).max(decision * 2);
        NodeConfig {
            n_ports,
            line_rate,
            eps_rate: line_rate.scale(0.1),
            eps_buffer: 1_000_000,
            voq_capacity: 4_000_000,
            mtu,
            reconfig,
            epoch,
            max_entries: 4,
            placement: Placement::Software {
                timing: sw,
                ctrl_oneway: SimDuration::from_micros(5),
                sync: SyncModel::ptp(),
            },
            guard: SimDuration::ZERO,
            host_link: Link::intra_rack(line_rate),
            voip_on_ocs: false,
            seed: 1,
        }
    }

    /// Validates cross-field consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_ports < 2 {
            return Err("need at least 2 ports".into());
        }
        if self.mtu == 0 {
            return Err("MTU must be positive".into());
        }
        if self.epoch <= self.reconfig {
            return Err(format!(
                "epoch {} must exceed reconfiguration time {}",
                self.epoch, self.reconfig
            ));
        }
        if self.max_entries == 0 {
            return Err("need at least one schedule entry per epoch".into());
        }
        let slot = self.epoch.saturating_sub(self.reconfig);
        if self.line_rate.bytes_in(slot) < self.mtu as u64 {
            return Err(format!(
                "a full epoch slot ({slot}) cannot carry one MTU — widen the epoch"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_hw::HwAlgo;

    fn hw() -> HwSchedulerModel {
        HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 })
    }

    #[test]
    fn fast_preset_validates() {
        let cfg = NodeConfig::fast(16, SimDuration::from_nanos(100), hw());
        cfg.validate().unwrap();
        assert_eq!(cfg.placement.label(), "hardware");
        assert_eq!(cfg.placement.buffering_site(), Site::Switch);
    }

    #[test]
    fn slow_preset_validates_and_buffers_at_hosts() {
        let cfg = NodeConfig::slow(
            16,
            SimDuration::from_millis(1),
            SwSchedulerModel::kernel_driver(),
        );
        cfg.validate().unwrap();
        assert_eq!(cfg.placement.label(), "software");
        assert_eq!(cfg.placement.buffering_site(), Site::Host);
    }

    #[test]
    fn default_epoch_scales_with_reconfig_but_floors_at_packets() {
        let r = BitRate::GBPS_10;
        // ns switching: floor dominates (16 × 1.2 µs = 19.2 µs).
        let fast = NodeConfig::default_epoch(SimDuration::from_nanos(10), r, 1500);
        assert_eq!(fast, SimDuration::from_micros(19).max(fast)); // ≈19.2µs
        assert!(fast >= SimDuration::from_micros(19));
        // ms switching: duty cycle dominates (10 ms).
        let slow = NodeConfig::default_epoch(SimDuration::from_millis(1), r, 1500);
        assert_eq!(slow, SimDuration::from_millis(10));
    }

    #[test]
    fn validation_catches_bad_epochs() {
        let mut cfg = NodeConfig::fast(8, SimDuration::from_micros(10), hw());
        cfg.epoch = SimDuration::from_micros(5);
        assert!(cfg.validate().is_err(), "epoch below reconfig");
        let mut cfg2 = NodeConfig::fast(8, SimDuration::from_micros(10), hw());
        cfg2.n_ports = 1;
        assert!(cfg2.validate().is_err());
    }

    #[test]
    fn hardware_decision_is_deterministic_software_is_not() {
        let fast = NodeConfig::fast(16, SimDuration::from_nanos(100), hw());
        let mut rng = SimRng::new(1);
        let a = fast.placement.decision_latency(16, &mut rng);
        let b = fast.placement.decision_latency(16, &mut rng);
        assert_eq!(a, b);
        let slow = NodeConfig::slow(
            16,
            SimDuration::from_millis(1),
            SwSchedulerModel::kernel_driver(),
        );
        let c = slow.placement.decision_latency(16, &mut rng);
        let d = slow.placement.decision_latency(16, &mut rng);
        assert_ne!(c, d);
        assert!(c > a, "software decisions are slower");
    }
}
