//! Instrumentation API v2: pluggable probes and batched delivery sinks.
//!
//! The paper's evaluation lives and dies on visibility into the epoch
//! loop — demand-estimation error, circuit duty cycle, FCT distributions
//! — but recording those must not tax the hot path it observes. This
//! module separates the two concerns:
//!
//! * **What is observed** is defined by three small traits. A
//!   [`DeliverySink`] receives delivered packets *batched per grant
//!   burst* (one virtual call per slot activation, not per packet), an
//!   [`EpochProbe`] receives one [`EpochSample`] per scheduler epoch, and
//!   a [`DropSink`] receives individual drop events (drops are rare by
//!   construction).
//! * **How much is recorded** is an [`Instrumentation`] bundle wired in
//!   through `SimBuilder`. [`Instrumentation::full`] reproduces the
//!   classic `RunReport` byte-for-byte (the golden traces pin this);
//!   [`Instrumentation::lean`] skips per-packet histogram/jitter/FCT and
//!   buffer-peak work for bench runs — simulated behavior (event counts,
//!   delivered bytes) is *identical*, only the observation cost drops;
//!   [`Instrumentation::timeseries`] is full fidelity plus an
//!   epoch-resolution [`EpochSeries`] (demand error, duty cycle, VOQ
//!   backlog per epoch).
//!
//! Custom studies implement one of the traits and plug it in via
//! [`Instrumentation::custom`] — the runtime itself never needs editing
//! to grow a new observable.

use xds_metrics::{
    EpochRow, EpochSeries, FctStats, FctTracker, LatencyHistogram, Rfc3550Jitter, SizeClass,
};
use xds_net::TrafficClass;
use xds_sim::SimTime;

use crate::report::DropStats;

/// Flow ids at or above this are interactive app streams (`flow ==
/// APP_FLOW_BASE + app index`), not tracked by the FCT machinery. Sinks
/// use it to split app packets (jitter) from flow packets (FCT).
pub const APP_FLOW_BASE: u64 = u64::MAX / 2;

/// Which data plane delivered a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryPath {
    /// Optical circuit switch (granted bulk).
    Ocs,
    /// Electrical packet switch (residual traffic).
    Eps,
}

/// One delivered packet, as observed by a [`DeliverySink`].
///
/// Records carry explicit timestamps, so batching them per grant burst
/// changes nothing the sink can observe: per-flow and per-app orders are
/// the append order, and every latency is `delivered - created`.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryRecord {
    /// Flow id (app streams are `>= APP_FLOW_BASE`).
    pub flow: u64,
    /// Packet size in bytes.
    pub bytes: u32,
    /// Traffic class the packet was classified into.
    pub class: TrafficClass,
    /// Creation (send) timestamp.
    pub created: SimTime,
    /// Delivery timestamp at the destination host.
    pub delivered: SimTime,
    /// Which data plane carried it.
    pub via: DeliveryPath,
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Switch VOQ overflow (fast mode).
    VoqFull,
    /// EPS output-queue overflow.
    EpsFull,
    /// Slow-mode synchronization failure: the packet hit a dark or
    /// re-assigned circuit.
    SyncViolation,
    /// The packet hit a fault-injected dark link (see
    /// [`crate::fault::FaultPlan`]).
    LinkDark,
}

/// Sizing context handed to sinks when the simulation is assembled.
#[derive(Debug, Clone, Copy)]
pub struct SinkCtx {
    /// Switch port count (= host count).
    pub n_ports: usize,
    /// Number of interactive app streams in the workload.
    pub n_apps: usize,
}

/// One per-epoch observation of the scheduling loop.
#[derive(Debug, Clone, Copy)]
pub struct EpochSample {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Simulated time of the epoch boundary.
    pub at: SimTime,
    /// Relative L1 demand-estimation error (`None` when the ground truth
    /// was empty, or when the probe declined the sample via
    /// [`EpochProbe::wants_demand_error`]).
    pub demand_err_rel: Option<f64>,
    /// Ground-truth queued bytes across all pairs at the boundary.
    pub backlog_bytes: u64,
    /// Decision latency charged to this epoch (ns).
    pub decision_ns: u64,
    /// Cumulative OCS dark time so far (ns) — probes difference
    /// consecutive samples to derive a per-epoch duty cycle.
    pub ocs_dark_ns: u64,
    /// Schedule entries (OCS configurations) the decision produced.
    pub entries: usize,
}

/// What a delivery sink contributes to the final `RunReport`.
#[derive(Debug)]
pub struct DeliveryMetrics {
    /// One-way latency of interactive packets (ns).
    pub latency_interactive: LatencyHistogram,
    /// One-way latency of short-class packets (ns).
    pub latency_short: LatencyHistogram,
    /// One-way latency of bulk packets (ns).
    pub latency_bulk: LatencyHistogram,
    /// Mean RFC 3550 jitter across apps (ns), if any apps ran.
    pub voip_jitter_mean_ns: Option<f64>,
    /// Worst per-app RFC 3550 jitter (ns).
    pub voip_jitter_max_ns: Option<f64>,
    /// Flows fully delivered.
    pub completed_flows: u64,
    /// FCT stats for mice.
    pub fct_mice: Option<FctStats>,
    /// FCT stats for medium flows.
    pub fct_medium: Option<FctStats>,
    /// FCT stats for elephants.
    pub fct_elephant: Option<FctStats>,
    /// FCT stats over all flows.
    pub fct_overall: Option<FctStats>,
}

impl DeliveryMetrics {
    /// The all-empty contribution (what a no-op sink reports).
    pub fn empty() -> Self {
        DeliveryMetrics {
            latency_interactive: LatencyHistogram::new(),
            latency_short: LatencyHistogram::new(),
            latency_bulk: LatencyHistogram::new(),
            voip_jitter_mean_ns: None,
            voip_jitter_max_ns: None,
            completed_flows: 0,
            fct_mice: None,
            fct_medium: None,
            fct_elephant: None,
            fct_overall: None,
        }
    }
}

/// What an epoch probe contributes to the final `RunReport`.
#[derive(Debug, Default)]
pub struct EpochMetrics {
    /// Mean relative L1 demand-estimation error, if sampled.
    pub demand_error_mean: Option<f64>,
    /// Epoch-resolution telemetry, if the probe recorded one.
    pub series: Option<EpochSeries>,
}

/// Observes delivered packets, batched per grant burst.
///
/// The runtime accumulates a slot activation's deliveries (across every
/// granted pair) into one scratch batch and hands it over in a single
/// call; EPS and slow-mode deliveries arrive as singleton batches. Within
/// a batch, records appear in delivery order, so per-flow byte streams
/// and per-app packet sequences are exactly the classic per-packet order.
pub trait DeliverySink {
    /// Called once at build time with sizing context (port/app counts).
    fn bind(&mut self, ctx: &SinkCtx) {
        let _ = ctx;
    }

    /// Whether the runtime should materialize delivery records at all.
    /// A sink that returns `false` (the lean profile) removes the
    /// per-packet record construction from the hot path entirely;
    /// [`DeliverySink::on_batch`] is then never called.
    fn wants_batches(&self) -> bool {
        true
    }

    /// A tracked flow entered the system (FCT start-of-clock).
    fn on_flow_started(&mut self, flow: u64, bytes: u64, at: SimTime);

    /// A burst of deliveries, in delivery order.
    fn on_batch(&mut self, batch: &[DeliveryRecord]);

    /// Consumes the recorded state into report contributions.
    fn finish(&mut self) -> DeliveryMetrics;
}

/// Observes the scheduling loop once per epoch.
pub trait EpochProbe {
    /// Whether the runtime should pay for the ground-truth occupancy
    /// snapshot and L1 error pass this probe's samples would carry
    /// (an O(n²) walk per epoch for non-mirror estimators). The lean
    /// profile declines; `demand_err_rel` then arrives as `None`.
    fn wants_demand_error(&self) -> bool {
        true
    }

    /// One sample per scheduler epoch, in epoch order.
    fn on_epoch(&mut self, sample: &EpochSample);

    /// Consumes the recorded state into report contributions.
    fn finish(&mut self) -> EpochMetrics;
}

/// Observes packet drops (rare by construction — per-event calls).
pub trait DropSink {
    /// One drop event.
    fn on_drop(&mut self, cause: DropCause, at: SimTime);

    /// Consumes the recorded state into the report's drop counters.
    fn finish(&mut self) -> DropStats;
}

// ---------------------------------------------------------------------
// Built-in sinks.
// ---------------------------------------------------------------------

/// The full-fidelity delivery sink: latency histograms per class, RFC
/// 3550 jitter per app, FCT tracking — exactly the classic inline
/// recording, reproduced byte-for-byte (the golden traces pin it).
#[derive(Debug, Default)]
pub struct FullDeliverySink {
    latency_interactive: LatencyHistogram,
    latency_short: LatencyHistogram,
    latency_bulk: LatencyHistogram,
    fct: FctTracker,
    jitters: Vec<Rfc3550Jitter>,
}

impl FullDeliverySink {
    /// An unbound sink; `bind` sizes the per-app jitter estimators.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DeliverySink for FullDeliverySink {
    fn bind(&mut self, ctx: &SinkCtx) {
        self.jitters = (0..ctx.n_apps).map(|_| Rfc3550Jitter::new()).collect();
    }

    fn on_flow_started(&mut self, flow: u64, bytes: u64, at: SimTime) {
        self.fct.flow_started(flow, bytes, at);
    }

    fn on_batch(&mut self, batch: &[DeliveryRecord]) {
        for r in batch {
            let lat = r.delivered.saturating_since(r.created).as_nanos();
            match r.class {
                TrafficClass::Interactive => {
                    self.latency_interactive.record(lat);
                    if r.flow >= APP_FLOW_BASE {
                        let app = (r.flow - APP_FLOW_BASE) as usize;
                        if let Some(j) = self.jitters.get_mut(app) {
                            j.on_packet(r.created, r.delivered);
                        }
                    }
                }
                TrafficClass::Short => self.latency_short.record(lat),
                TrafficClass::Bulk => self.latency_bulk.record(lat),
            }
            if r.flow < APP_FLOW_BASE {
                self.fct
                    .bytes_delivered(r.flow, r.bytes as u64, r.delivered);
            }
        }
    }

    fn finish(&mut self) -> DeliveryMetrics {
        DeliveryMetrics {
            completed_flows: self.fct.completed(),
            fct_mice: self.fct.stats(SizeClass::Mice),
            fct_medium: self.fct.stats(SizeClass::Medium),
            fct_elephant: self.fct.stats(SizeClass::Elephant),
            fct_overall: self.fct.overall(),
            voip_jitter_mean_ns: (!self.jitters.is_empty()).then(|| {
                self.jitters.iter().map(|j| j.jitter_ns()).sum::<f64>() / self.jitters.len() as f64
            }),
            voip_jitter_max_ns: self
                .jitters
                .iter()
                .map(|j| j.jitter_ns())
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.max(x)))
                }),
            latency_interactive: std::mem::replace(
                &mut self.latency_interactive,
                LatencyHistogram::new(),
            ),
            latency_short: std::mem::replace(&mut self.latency_short, LatencyHistogram::new()),
            latency_bulk: std::mem::replace(&mut self.latency_bulk, LatencyHistogram::new()),
        }
    }
}

/// The lean delivery sink: declines batches entirely, contributes empty
/// metrics. Simulated behavior is untouched — only observation cost.
#[derive(Debug, Default)]
pub struct NullDeliverySink;

impl DeliverySink for NullDeliverySink {
    fn wants_batches(&self) -> bool {
        false
    }

    fn on_flow_started(&mut self, _flow: u64, _bytes: u64, _at: SimTime) {}

    fn on_batch(&mut self, _batch: &[DeliveryRecord]) {}

    fn finish(&mut self) -> DeliveryMetrics {
        DeliveryMetrics::empty()
    }
}

/// The classic epoch probe: accumulates the mean relative L1
/// demand-estimation error exactly as the pre-v2 runtime did.
#[derive(Debug, Default)]
pub struct MeanErrorEpochProbe {
    err_sum: f64,
    err_n: u64,
}

impl MeanErrorEpochProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EpochProbe for MeanErrorEpochProbe {
    fn on_epoch(&mut self, sample: &EpochSample) {
        if let Some(e) = sample.demand_err_rel {
            self.err_sum += e;
            self.err_n += 1;
        }
    }

    fn finish(&mut self) -> EpochMetrics {
        EpochMetrics {
            demand_error_mean: (self.err_n > 0).then(|| self.err_sum / self.err_n as f64),
            series: None,
        }
    }
}

/// The lean epoch probe: declines the demand-error sample (skipping the
/// per-epoch ground-truth snapshot and L1 pass for non-mirror
/// estimators) and records nothing.
#[derive(Debug, Default)]
pub struct NullEpochProbe;

impl EpochProbe for NullEpochProbe {
    fn wants_demand_error(&self) -> bool {
        false
    }

    fn on_epoch(&mut self, _sample: &EpochSample) {}

    fn finish(&mut self) -> EpochMetrics {
        EpochMetrics::default()
    }
}

/// Epoch-resolution telemetry probe: everything [`MeanErrorEpochProbe`]
/// records, plus one [`EpochRow`] per epoch — demand error, OCS duty
/// cycle over the preceding interval, ground-truth VOQ backlog, decision
/// latency and entry count. The row stream is what `sweep timeseries`
/// serializes for kilofabric studies.
#[derive(Debug, Default)]
pub struct TimeSeriesEpochProbe {
    mean: MeanErrorEpochProbe,
    rows: EpochSeries,
    /// `(at, cumulative dark ns)` of the previous sample.
    last: Option<(SimTime, u64)>,
}

impl TimeSeriesEpochProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EpochProbe for TimeSeriesEpochProbe {
    fn on_epoch(&mut self, sample: &EpochSample) {
        self.mean.on_epoch(sample);
        let duty_cycle = self.last.and_then(|(t0, dark0)| {
            let dt = sample.at.saturating_since(t0).as_nanos();
            (dt > 0).then(|| {
                let dark = sample.ocs_dark_ns.saturating_sub(dark0);
                (1.0 - dark as f64 / dt as f64).clamp(0.0, 1.0)
            })
        });
        self.rows.push(EpochRow {
            epoch: sample.epoch,
            at: sample.at,
            demand_err_rel: sample.demand_err_rel,
            duty_cycle,
            backlog_bytes: sample.backlog_bytes,
            decision_ns: sample.decision_ns,
            entries: sample.entries as u32,
        });
        self.last = Some((sample.at, sample.ocs_dark_ns));
    }

    fn finish(&mut self) -> EpochMetrics {
        let mut m = self.mean.finish();
        m.series = Some(std::mem::take(&mut self.rows));
        m
    }
}

/// Counts drops by cause (used by every built-in profile — a drop is one
/// integer add, so even lean keeps the tally).
#[derive(Debug, Default)]
pub struct CountingDropSink {
    drops: DropStats,
}

impl CountingDropSink {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DropSink for CountingDropSink {
    fn on_drop(&mut self, cause: DropCause, _at: SimTime) {
        match cause {
            DropCause::VoqFull => self.drops.voq_full += 1,
            DropCause::EpsFull => self.drops.eps_full += 1,
            DropCause::SyncViolation => self.drops.sync_violation += 1,
            DropCause::LinkDark => self.drops.link_dark += 1,
        }
    }

    fn finish(&mut self) -> DropStats {
        self.drops
    }
}

// ---------------------------------------------------------------------
// Bundles.
// ---------------------------------------------------------------------

/// A named instrumentation profile, as plain data — the declarative form
/// of [`Instrumentation`] that scenario specs and CLIs carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrProfile {
    /// Full fidelity: histograms, jitter, FCT, buffer peaks, demand
    /// error. Reproduces the classic `RunReport` byte-for-byte.
    Full,
    /// Bench mode: identical simulated behavior (events, delivered
    /// bytes), no per-packet observation cost.
    Lean,
    /// Full fidelity plus the epoch-resolution telemetry series.
    TimeSeries,
}

impl InstrProfile {
    /// Stable CLI/result-row label.
    pub fn label(self) -> &'static str {
        match self {
            InstrProfile::Full => "full",
            InstrProfile::Lean => "lean",
            InstrProfile::TimeSeries => "timeseries",
        }
    }

    /// Parses a [`label`](Self::label) back (the CLI entry point).
    pub fn from_name(name: &str) -> Option<InstrProfile> {
        Some(match name {
            "full" => InstrProfile::Full,
            "lean" => InstrProfile::Lean,
            "timeseries" => InstrProfile::TimeSeries,
            _ => return None,
        })
    }

    /// Materializes the bundle this profile names.
    pub fn instrumentation(self) -> Instrumentation {
        match self {
            InstrProfile::Full => Instrumentation::full(),
            InstrProfile::Lean => Instrumentation::lean(),
            InstrProfile::TimeSeries => Instrumentation::timeseries(),
        }
    }
}

/// The instrumentation bundle a simulation is built with: one sink per
/// observation family plus the buffer-peak switch. Construct via
/// [`full`](Self::full) / [`lean`](Self::lean) /
/// [`timeseries`](Self::timeseries), or [`custom`](Self::custom) to plug
/// in study-specific sinks.
pub struct Instrumentation {
    pub(crate) delivery: Box<dyn DeliverySink>,
    pub(crate) epoch: Box<dyn EpochProbe>,
    pub(crate) drops: Box<dyn DropSink>,
    pub(crate) track_buffers: bool,
}

impl std::fmt::Debug for Instrumentation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instrumentation")
            .field("track_buffers", &self.track_buffers)
            .finish_non_exhaustive()
    }
}

impl Instrumentation {
    /// Full fidelity (the default): reproduces the classic report
    /// byte-for-byte.
    pub fn full() -> Self {
        Instrumentation {
            delivery: Box::new(FullDeliverySink::new()),
            epoch: Box::new(MeanErrorEpochProbe::new()),
            drops: Box::new(CountingDropSink::new()),
            track_buffers: true,
        }
    }

    /// Bench mode: no per-packet histogram/jitter/FCT work, no
    /// buffer-peak radix traffic, no per-epoch error pass. Event counts
    /// and delivered bytes are identical to [`full`](Self::full).
    pub fn lean() -> Self {
        Instrumentation {
            delivery: Box::new(NullDeliverySink),
            epoch: Box::new(NullEpochProbe),
            drops: Box::new(CountingDropSink::new()),
            track_buffers: false,
        }
    }

    /// Full fidelity plus the per-epoch telemetry series.
    pub fn timeseries() -> Self {
        Instrumentation {
            delivery: Box::new(FullDeliverySink::new()),
            epoch: Box::new(TimeSeriesEpochProbe::new()),
            drops: Box::new(CountingDropSink::new()),
            track_buffers: true,
        }
    }

    /// A bundle from explicit sinks (study-specific instrumentation).
    pub fn custom(
        delivery: Box<dyn DeliverySink>,
        epoch: Box<dyn EpochProbe>,
        drops: Box<dyn DropSink>,
    ) -> Self {
        Instrumentation {
            delivery,
            epoch,
            drops,
            track_buffers: true,
        }
    }

    /// Replaces the delivery sink.
    pub fn with_delivery(mut self, sink: Box<dyn DeliverySink>) -> Self {
        self.delivery = sink;
        self
    }

    /// Replaces the epoch probe.
    pub fn with_epoch_probe(mut self, probe: Box<dyn EpochProbe>) -> Self {
        self.epoch = probe;
        self
    }

    /// Replaces the drop sink.
    pub fn with_drops(mut self, sink: Box<dyn DropSink>) -> Self {
        self.drops = sink;
        self
    }

    /// Enables/disables host- and switch-buffer peak tracking (the
    /// radix-queue release accounting).
    pub fn with_buffer_tracking(mut self, on: bool) -> Self {
        self.track_buffers = on;
        self
    }
}

impl Default for Instrumentation {
    fn default() -> Self {
        Instrumentation::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn rec(
        flow: u64,
        bytes: u32,
        class: TrafficClass,
        created: u64,
        delivered: u64,
    ) -> DeliveryRecord {
        DeliveryRecord {
            flow,
            bytes,
            class,
            created: t(created),
            delivered: t(delivered),
            via: DeliveryPath::Ocs,
        }
    }

    #[test]
    fn full_sink_tracks_latency_jitter_and_fct() {
        let mut s = FullDeliverySink::new();
        s.bind(&SinkCtx {
            n_ports: 4,
            n_apps: 1,
        });
        assert!(s.wants_batches());
        s.on_flow_started(1, 3000, t(0));
        s.on_batch(&[
            rec(1, 1500, TrafficClass::Bulk, 0, 1000),
            rec(1, 1500, TrafficClass::Bulk, 0, 2000),
            rec(APP_FLOW_BASE, 200, TrafficClass::Interactive, 100, 400),
            rec(APP_FLOW_BASE, 200, TrafficClass::Interactive, 300, 900),
        ]);
        let m = s.finish();
        assert_eq!(m.completed_flows, 1);
        assert_eq!(m.latency_bulk.count(), 2);
        assert_eq!(m.latency_interactive.count(), 2);
        assert!(m.voip_jitter_mean_ns.is_some());
        assert!(m.fct_overall.is_some());
    }

    #[test]
    fn null_sink_declines_batches_and_reports_empty() {
        let mut s = NullDeliverySink;
        assert!(!s.wants_batches());
        s.on_flow_started(1, 10, t(0));
        let m = s.finish();
        assert_eq!(m.completed_flows, 0);
        assert!(m.latency_bulk.is_empty());
        assert!(m.fct_overall.is_none());
    }

    fn sample(epoch: u64, at_ns: u64, err: Option<f64>, dark_ns: u64) -> EpochSample {
        EpochSample {
            epoch,
            at: t(at_ns),
            demand_err_rel: err,
            backlog_bytes: 100,
            decision_ns: 50,
            ocs_dark_ns: dark_ns,
            entries: 2,
        }
    }

    #[test]
    fn mean_error_probe_matches_hand_sum() {
        let mut p = MeanErrorEpochProbe::new();
        p.on_epoch(&sample(0, 0, None, 0));
        p.on_epoch(&sample(1, 1000, Some(0.5), 0));
        p.on_epoch(&sample(2, 2000, Some(0.25), 0));
        let m = p.finish();
        assert_eq!(m.demand_error_mean, Some(0.375));
        assert!(m.series.is_none());
    }

    #[test]
    fn timeseries_probe_derives_duty_cycle_between_samples() {
        let mut p = TimeSeriesEpochProbe::new();
        // 1000 ns apart; 100 ns of new darkness per interval → duty 0.9.
        p.on_epoch(&sample(0, 0, Some(0.0), 0));
        p.on_epoch(&sample(1, 1000, Some(0.0), 100));
        p.on_epoch(&sample(2, 2000, None, 200));
        let m = p.finish();
        let series = m.series.expect("timeseries probe records rows");
        assert_eq!(series.len(), 3);
        assert_eq!(series.rows()[0].duty_cycle, None, "no interval yet");
        let d1 = series.rows()[1].duty_cycle.unwrap();
        assert!((d1 - 0.9).abs() < 1e-12, "duty {d1}");
        assert_eq!(series.rows()[2].demand_err_rel, None);
        assert_eq!(m.demand_error_mean, Some(0.0));
    }

    #[test]
    fn counting_drop_sink_tallies_by_cause() {
        let mut s = CountingDropSink::new();
        s.on_drop(DropCause::VoqFull, t(1));
        s.on_drop(DropCause::VoqFull, t(2));
        s.on_drop(DropCause::SyncViolation, t(3));
        let d = s.finish();
        assert_eq!(d.voq_full, 2);
        assert_eq!(d.eps_full, 0);
        assert_eq!(d.sync_violation, 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn profile_labels_round_trip() {
        for p in [
            InstrProfile::Full,
            InstrProfile::Lean,
            InstrProfile::TimeSeries,
        ] {
            assert_eq!(InstrProfile::from_name(p.label()), Some(p));
        }
        assert_eq!(InstrProfile::from_name("bogus"), None);
    }
}
