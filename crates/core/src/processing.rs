//! Processing logic: the VOQ subsystem of Figure 2.
//!
//! "Incoming packets … are classified into flows based on configurable
//! look-up rules and placed into their respective Virtual Output Queue
//! (VOQ). As the status of a VOQ changes, the subsystem generates
//! scheduling requests and transmits packets upon receiving transmission
//! grants."
//!
//! Classification itself lives in `xds-net` ([`xds_net::RuleTable`]); by
//! the time a packet reaches the VOQ bank it carries its class and egress.
//! This module owns the N×N queues, the request generation (dirty-pair
//! tracking), and grant execution (budgeted dequeue).

use xds_net::Packet;
use xds_sim::SimTime;
use xds_switch::DropTailQueue;

use crate::demand::{DemandMatrix, SchedRequest};

/// The VOQ bank plus request bookkeeping.
#[derive(Debug)]
pub struct ProcessingLogic {
    n: usize,
    queues: Vec<DropTailQueue>,
    /// Cumulative bytes ever enqueued per pair (for rate estimators).
    arrived_total: Vec<u64>,
    /// Pairs whose status changed since the last request poll.
    dirty: Vec<bool>,
    drops: u64,
    dropped_bytes: u64,
}

impl ProcessingLogic {
    /// Creates an `n × n` VOQ bank with `voq_capacity` bytes per queue.
    pub fn new(n: usize, voq_capacity: u64) -> Self {
        assert!(n >= 2, "need at least 2 ports");
        ProcessingLogic {
            n,
            queues: (0..n * n)
                .map(|_| DropTailQueue::new(voq_capacity, usize::MAX))
                .collect(),
            arrived_total: vec![0; n * n],
            dirty: vec![false; n * n],
            drops: 0,
            dropped_bytes: 0,
        }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    fn idx(&self, src: usize, dst: usize) -> usize {
        debug_assert!(src < self.n && dst < self.n);
        src * self.n + dst
    }

    /// Enqueues a packet into VOQ `(packet.src, packet.dst)`.
    ///
    /// On overflow the packet is returned and counted as a drop.
    pub fn enqueue(&mut self, p: Packet) -> Result<(), Packet> {
        let idx = self.idx(p.src.index(), p.dst.index());
        let bytes = p.bytes as u64;
        match self.queues[idx].push(p) {
            Ok(()) => {
                self.arrived_total[idx] += bytes;
                self.dirty[idx] = true;
                Ok(())
            }
            Err(p) => {
                self.drops += 1;
                self.dropped_bytes += bytes;
                Err(p)
            }
        }
    }

    /// Bytes queued for `(src, dst)`.
    pub fn queued_bytes(&self, src: usize, dst: usize) -> u64 {
        self.queues[self.idx(src, dst)].bytes()
    }

    /// Total bytes across all VOQs.
    pub fn total_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.bytes()).sum()
    }

    /// Snapshot of the true occupancy (ground truth for E6).
    pub fn occupancy(&self) -> DemandMatrix {
        let mut m = DemandMatrix::zero(self.n);
        for s in 0..self.n {
            for d in 0..self.n {
                m.set(s, d, self.queued_bytes(s, d));
            }
        }
        m
    }

    /// Drains the dirty set into scheduling requests — what the paper's
    /// "subsystem generates scheduling requests" step produces.
    pub fn take_requests(&mut self, now: SimTime) -> Vec<SchedRequest> {
        let mut out = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                let idx = self.idx(s, d);
                if self.dirty[idx] {
                    self.dirty[idx] = false;
                    out.push(SchedRequest {
                        src: s,
                        dst: d,
                        queued_bytes: self.queues[idx].bytes(),
                        arrived_bytes_total: self.arrived_total[idx],
                        at: now,
                    });
                }
            }
        }
        out
    }

    /// Executes a grant: dequeues packets from `(src, dst)` whose total
    /// size fits within `budget_bytes` (a slot's capacity). The VOQ is
    /// marked dirty so the occupancy drop is reported in the next request
    /// wave.
    pub fn dequeue_upto(&mut self, src: usize, dst: usize, budget_bytes: u64) -> Vec<Packet> {
        let idx = self.idx(src, dst);
        let q = &mut self.queues[idx];
        let mut out = Vec::new();
        let mut used = 0u64;
        while let Some(head) = q.peek() {
            let b = head.bytes as u64;
            if used + b > budget_bytes {
                break;
            }
            used += b;
            out.push(q.pop().expect("peeked"));
        }
        if !out.is_empty() {
            self.dirty[idx] = true;
        }
        out
    }

    /// `(dropped packets, dropped bytes)` from VOQ overflow.
    pub fn drops(&self) -> (u64, u64) {
        (self.drops, self.dropped_bytes)
    }

    /// Largest single-VOQ high-water mark in bytes.
    pub fn peak_voq_bytes(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.peak_bytes())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_net::{PortNo, TrafficClass};

    fn pkt(id: u64, src: usize, dst: usize, bytes: u32) -> Packet {
        Packet::new(
            id,
            id,
            PortNo::from(src),
            PortNo::from(dst),
            bytes,
            TrafficClass::Bulk,
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn enqueue_routes_to_the_right_voq() {
        let mut p = ProcessingLogic::new(4, 10_000);
        p.enqueue(pkt(1, 0, 2, 1500)).unwrap();
        p.enqueue(pkt(2, 3, 1, 500)).unwrap();
        assert_eq!(p.queued_bytes(0, 2), 1500);
        assert_eq!(p.queued_bytes(3, 1), 500);
        assert_eq!(p.queued_bytes(0, 1), 0);
        assert_eq!(p.total_bytes(), 2000);
    }

    #[test]
    fn requests_only_for_changed_pairs() {
        let mut p = ProcessingLogic::new(4, 10_000);
        p.enqueue(pkt(1, 0, 2, 1500)).unwrap();
        let reqs = p.take_requests(SimTime::from_nanos(5));
        assert_eq!(reqs.len(), 1);
        assert_eq!((reqs[0].src, reqs[0].dst), (0, 2));
        assert_eq!(reqs[0].queued_bytes, 1500);
        assert_eq!(reqs[0].arrived_bytes_total, 1500);
        // Nothing changed: no requests.
        assert!(p.take_requests(SimTime::from_nanos(6)).is_empty());
        // A dequeue is a status change too.
        let got = p.dequeue_upto(0, 2, 10_000);
        assert_eq!(got.len(), 1);
        let reqs = p.take_requests(SimTime::from_nanos(7));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].queued_bytes, 0);
        assert_eq!(
            reqs[0].arrived_bytes_total, 1500,
            "cumulative survives drain"
        );
    }

    #[test]
    fn dequeue_respects_budget_and_order() {
        let mut p = ProcessingLogic::new(2, 100_000);
        for i in 0..5 {
            p.enqueue(pkt(i, 0, 1, 1500)).unwrap();
        }
        let got = p.dequeue_upto(0, 1, 4000); // fits 2 × 1500
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id.0, 0);
        assert_eq!(got[1].id.0, 1);
        assert_eq!(p.queued_bytes(0, 1), 4500);
        // Budget smaller than one packet: nothing moves.
        assert!(p.dequeue_upto(0, 1, 100).is_empty());
    }

    #[test]
    fn overflow_counts_drops() {
        let mut p = ProcessingLogic::new(2, 2000);
        p.enqueue(pkt(1, 0, 1, 1500)).unwrap();
        let rejected = p.enqueue(pkt(2, 0, 1, 1500)).unwrap_err();
        assert_eq!(rejected.id.0, 2);
        assert_eq!(p.drops(), (1, 1500));
        // The drop still dirties nothing extra — occupancy didn't change.
        let reqs = p.take_requests(SimTime::ZERO);
        assert_eq!(reqs.len(), 1, "only the successful enqueue is reported");
    }

    #[test]
    fn occupancy_matches_queued_bytes() {
        let mut p = ProcessingLogic::new(3, 10_000);
        p.enqueue(pkt(1, 0, 1, 100)).unwrap();
        p.enqueue(pkt(2, 0, 1, 200)).unwrap();
        p.enqueue(pkt(3, 2, 0, 300)).unwrap();
        let m = p.occupancy();
        assert_eq!(m.get(0, 1), 300);
        assert_eq!(m.get(2, 0), 300);
        assert_eq!(m.total(), 600);
        assert_eq!(p.peak_voq_bytes(), 300);
    }
}
