//! Processing logic: the VOQ subsystem of Figure 2.
//!
//! "Incoming packets … are classified into flows based on configurable
//! look-up rules and placed into their respective Virtual Output Queue
//! (VOQ). As the status of a VOQ changes, the subsystem generates
//! scheduling requests and transmits packets upon receiving transmission
//! grants."
//!
//! Classification itself lives in `xds-net` ([`xds_net::RuleTable`]); by
//! the time a packet reaches the VOQ bank it carries its class and egress.
//! This module owns the N×N queues, the request generation (dirty-pair
//! tracking), and grant execution (budgeted dequeue).

use xds_net::Packet;
use xds_sim::SimTime;

use crate::demand::{DemandMatrix, SchedRequest};
use crate::pool::{PacketPool, PktFifo};

/// Per-pair bookkeeping kept beside the dense occupancy array.
#[derive(Debug, Default)]
struct PairState {
    /// Cumulative bytes ever enqueued (for rate estimators).
    arrived_total: u64,
    /// High-water mark of queued bytes.
    peak_bytes: u64,
    /// The pair's packets, as an intrusive FIFO in the shared pool.
    fifo: PktFifo,
    queued: u64,
    /// Whether this pair is in the dirty list.
    dirty: bool,
}

/// The VOQ bank plus request bookkeeping.
///
/// Storage is built for the per-packet hot path: all `n²` VOQs share one
/// **packet pool** ([`PacketPool`] — a free-list slab of 4-packet chunks)
/// and each VOQ is an intrusive FIFO of pool indices, so an enqueue
/// touches one pool slot and one compact per-pair record instead of a
/// per-queue `VecDeque` plus three parallel arrays. Queued bytes live in
/// a dense `n²` array maintained incrementally, so the per-epoch
/// ground-truth snapshot is a `memcpy`, and dirty pairs are kept in an
/// explicit list so request generation touches only the pairs that
/// changed — at 256 ports and above the old full-matrix scans and
/// scattered per-queue state dominated both the epoch loop and the packet
/// path.
#[derive(Debug)]
pub struct ProcessingLogic {
    n: usize,
    voq_capacity: u64,
    /// Shared chunk pool backing every VOQ FIFO.
    pool: PacketPool,
    pairs: Vec<PairState>,
    /// Indices currently flagged dirty, unsorted (sorted on take).
    dirty_list: Vec<u32>,
    /// Incrementally-maintained sum of `queued` (O(1) ground-truth total).
    total_queued: u64,
    drops: u64,
    dropped_bytes: u64,
    /// Row-windowed banks (sharded cores): the sorted global source rows
    /// this bank owns (`rows[local] = global`) and the inverse map
    /// (`row_of[global] = local`, `u32::MAX` for rows owned elsewhere).
    /// `None` means the bank covers all `n` rows (the classic layout)
    /// and indexes without the extra lookup.
    rows: Option<(Vec<u32>, Vec<u32>)>,
}

impl ProcessingLogic {
    /// Creates an `n × n` VOQ bank with `voq_capacity` bytes per queue.
    pub fn new(n: usize, voq_capacity: u64) -> Self {
        assert!(n >= 2, "need at least 2 ports");
        assert!(voq_capacity > 0, "queue capacity must be positive");
        ProcessingLogic {
            n,
            voq_capacity,
            pool: PacketPool::new(),
            pairs: (0..n * n).map(|_| PairState::default()).collect(),
            dirty_list: Vec::new(),
            total_queued: 0,
            drops: 0,
            dropped_bytes: 0,
            rows: None,
        }
    }

    /// Creates a bank owning only the given *source rows* of an `n × n`
    /// fabric — a shard's slice of the VOQ matrix. Storage is
    /// `rows.len() × n` instead of `n²`, so K shards of an n-port fabric
    /// together use the classic footprint while each stays cache-compact.
    /// `rows` is sorted internally, so request order (ascending global
    /// `(src, dst)`) is preserved regardless of input order; an empty
    /// `rows` yields an inert bank (every accessor returns zeroes).
    ///
    /// # Panics
    /// Panics if a row index repeats or is out of range.
    pub fn with_rows(n: usize, voq_capacity: u64, mut rows: Vec<usize>) -> Self {
        assert!(n >= 2, "need at least 2 ports");
        assert!(voq_capacity > 0, "queue capacity must be positive");
        rows.sort_unstable();
        let mut row_of = vec![u32::MAX; n];
        for (local, &global) in rows.iter().enumerate() {
            assert!(global < n, "row {global} out of range for {n} ports");
            assert!(row_of[global] == u32::MAX, "row {global} owned twice");
            row_of[global] = local as u32;
        }
        let nlocal = rows.len();
        ProcessingLogic {
            n,
            voq_capacity,
            pool: PacketPool::new(),
            pairs: (0..nlocal * n).map(|_| PairState::default()).collect(),
            dirty_list: Vec::new(),
            total_queued: 0,
            drops: 0,
            dropped_bytes: 0,
            rows: Some((rows.iter().map(|&r| r as u32).collect(), row_of)),
        }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    fn idx(&self, src: usize, dst: usize) -> usize {
        debug_assert!(src < self.n && dst < self.n);
        let row = match &self.rows {
            None => src,
            Some((_, row_of)) => {
                let local = row_of[src];
                // A foreign row maps to u32::MAX and lands far outside
                // `pairs`, so the slice bounds check still catches it.
                debug_assert!(local != u32::MAX, "source row {src} not owned by this bank");
                local as usize
            }
        };
        row * self.n + dst
    }

    /// Maps a local pair index back to its global `(src, dst)`.
    #[inline]
    fn pair_of(&self, idx: usize) -> (usize, usize) {
        let (row, dst) = (idx / self.n, idx % self.n);
        let src = match &self.rows {
            None => row,
            Some((rows, _)) => rows[row] as usize,
        };
        (src, dst)
    }

    #[inline]
    fn mark_dirty(&mut self, idx: usize) {
        if !self.pairs[idx].dirty {
            self.pairs[idx].dirty = true;
            self.dirty_list.push(idx as u32);
        }
    }

    /// Enqueues a packet into VOQ `(packet.src, packet.dst)`.
    ///
    /// On overflow the packet is returned and counted as a drop — it is
    /// rejected *before* admission, so it never owns a pool chunk and the
    /// caller has nothing to release.
    pub fn enqueue(&mut self, p: Packet) -> Result<(), Packet> {
        let idx = self.idx(p.src.index(), p.dst.index());
        let bytes = p.bytes as u64;
        if self.pairs[idx].queued + bytes > self.voq_capacity {
            self.drops += 1;
            self.dropped_bytes += bytes;
            return Err(p);
        }
        let pair = &mut self.pairs[idx];
        self.pool.push(&mut pair.fifo, p);
        let pair = &mut self.pairs[idx];
        pair.arrived_total += bytes;
        pair.queued += bytes;
        pair.peak_bytes = pair.peak_bytes.max(pair.queued);
        self.total_queued += bytes;
        self.mark_dirty(idx);
        Ok(())
    }

    /// Bytes queued for `(src, dst)`.
    pub fn queued_bytes(&self, src: usize, dst: usize) -> u64 {
        self.pairs[self.idx(src, dst)].queued
    }

    /// Total bytes across all VOQs (O(1): maintained incrementally).
    pub fn total_bytes(&self) -> u64 {
        debug_assert_eq!(
            self.total_queued,
            self.pairs.iter().map(|p| p.queued).sum::<u64>()
        );
        self.total_queued
    }

    /// Snapshot of the true occupancy (ground truth for E6).
    pub fn occupancy(&self) -> DemandMatrix {
        let mut m = DemandMatrix::zero(self.n);
        self.occupancy_into(&mut m);
        m
    }

    /// Writes the true occupancy into a caller-owned matrix, overwriting
    /// every cell (the allocation-free form the epoch loop uses). The
    /// occupancy is maintained incrementally, so this is a flat copy.
    ///
    /// # Panics
    /// Panics on a row-windowed bank (it cannot overwrite rows it does
    /// not own) — use [`occupancy_rows_into`](Self::occupancy_rows_into).
    pub fn occupancy_into(&self, out: &mut DemandMatrix) {
        assert!(
            self.rows.is_none(),
            "row-windowed bank: use occupancy_rows_into"
        );
        out.fill_from(self.pairs.iter().map(|p| p.queued));
    }

    /// Writes the occupancy of the rows this bank owns into `out`,
    /// overwriting every cell of those rows and leaving the rest alone.
    /// A set of shards whose row windows partition the fabric covers the
    /// whole matrix exactly once, reproducing [`occupancy_into`].
    pub fn occupancy_rows_into(&self, out: &mut DemandMatrix) {
        for (idx, p) in self.pairs.iter().enumerate() {
            let (src, dst) = self.pair_of(idx);
            out.set(src, dst, p.queued);
        }
    }

    /// Drains the dirty set into scheduling requests — what the paper's
    /// "subsystem generates scheduling requests" step produces.
    pub fn take_requests(&mut self, now: SimTime) -> Vec<SchedRequest> {
        let mut out = Vec::new();
        self.take_requests_into(now, &mut out);
        out
    }

    /// [`take_requests`](Self::take_requests) into a reused buffer: the
    /// buffer is cleared, then filled in `(src, dst)` scan order. Only
    /// the dirty list is visited (sorted so the order matches a full
    /// row-major scan), not the whole `n²` matrix. Runs once per epoch,
    /// so it doubles as the pool's conservation checkpoint.
    pub fn take_requests_into(&mut self, now: SimTime, out: &mut Vec<SchedRequest>) {
        self.pool.debug_assert_conserved();
        out.clear();
        self.dirty_list.sort_unstable();
        for k in 0..self.dirty_list.len() {
            let idx = self.dirty_list[k] as usize;
            debug_assert!(self.pairs[idx].dirty);
            self.pairs[idx].dirty = false;
            let (src, dst) = self.pair_of(idx);
            out.push(SchedRequest {
                src,
                dst,
                queued_bytes: self.pairs[idx].queued,
                arrived_bytes_total: self.pairs[idx].arrived_total,
                at: now,
            });
        }
        self.dirty_list.clear();
    }

    /// Executes a grant: dequeues packets from `(src, dst)` whose total
    /// size fits within `budget_bytes` (a slot's capacity). The VOQ is
    /// marked dirty so the occupancy drop is reported in the next request
    /// wave.
    pub fn dequeue_upto(&mut self, src: usize, dst: usize, budget_bytes: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        self.dequeue_upto_into(src, dst, budget_bytes, &mut out);
        out
    }

    /// [`dequeue_upto`](Self::dequeue_upto) appending into a reused
    /// buffer (the grant-execution hot path runs once per matched pair
    /// per slot and must not allocate a fresh vector each time).
    pub fn dequeue_upto_into(
        &mut self,
        src: usize,
        dst: usize,
        budget_bytes: u64,
        out: &mut Vec<Packet>,
    ) {
        let idx = self.idx(src, dst);
        let used = self
            .pool
            .drain_budget_into(&mut self.pairs[idx].fifo, budget_bytes, out);
        if used > 0 {
            self.pairs[idx].queued -= used;
            self.total_queued -= used;
            self.mark_dirty(idx);
        }
    }

    /// `(dropped packets, dropped bytes)` from VOQ overflow.
    pub fn drops(&self) -> (u64, u64) {
        (self.drops, self.dropped_bytes)
    }

    /// Largest single-VOQ high-water mark in bytes.
    pub fn peak_voq_bytes(&self) -> u64 {
        self.pairs.iter().map(|p| p.peak_bytes).max().unwrap_or(0)
    }

    /// The backing pool's conservation counters, for tests and epoch
    /// assertions: `(live packets, chunks in use)`.
    pub fn pool_occupancy(&self) -> (u64, usize) {
        (self.pool.live_packets(), self.pool.chunks_in_use())
    }

    /// The backing pool's always-on conservation ledger, harvested into
    /// the run's counter registry: `(allocs, frees, live peak, chunk
    /// growths)`.
    pub fn pool_ledger(&self) -> (u64, u64, u64, u64) {
        (
            self.pool.alloc_count(),
            self.pool.free_count(),
            self.pool.live_peak(),
            self.pool.chunk_growth_count(),
        )
    }

    /// Release-mode conservation audit of the backing pool (see
    /// [`PacketPool::check_conserved`]).
    pub fn check_pool_conserved(&self) -> Result<(), String> {
        self.pool.check_conserved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_net::{PortNo, TrafficClass};

    fn pkt(id: u64, src: usize, dst: usize, bytes: u32) -> Packet {
        Packet::new(
            id,
            id,
            PortNo::from(src),
            PortNo::from(dst),
            bytes,
            TrafficClass::Bulk,
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn enqueue_routes_to_the_right_voq() {
        let mut p = ProcessingLogic::new(4, 10_000);
        p.enqueue(pkt(1, 0, 2, 1500)).unwrap();
        p.enqueue(pkt(2, 3, 1, 500)).unwrap();
        assert_eq!(p.queued_bytes(0, 2), 1500);
        assert_eq!(p.queued_bytes(3, 1), 500);
        assert_eq!(p.queued_bytes(0, 1), 0);
        assert_eq!(p.total_bytes(), 2000);
    }

    #[test]
    fn requests_only_for_changed_pairs() {
        let mut p = ProcessingLogic::new(4, 10_000);
        p.enqueue(pkt(1, 0, 2, 1500)).unwrap();
        let reqs = p.take_requests(SimTime::from_nanos(5));
        assert_eq!(reqs.len(), 1);
        assert_eq!((reqs[0].src, reqs[0].dst), (0, 2));
        assert_eq!(reqs[0].queued_bytes, 1500);
        assert_eq!(reqs[0].arrived_bytes_total, 1500);
        // Nothing changed: no requests.
        assert!(p.take_requests(SimTime::from_nanos(6)).is_empty());
        // A dequeue is a status change too.
        let got = p.dequeue_upto(0, 2, 10_000);
        assert_eq!(got.len(), 1);
        let reqs = p.take_requests(SimTime::from_nanos(7));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].queued_bytes, 0);
        assert_eq!(
            reqs[0].arrived_bytes_total, 1500,
            "cumulative survives drain"
        );
    }

    #[test]
    fn dequeue_respects_budget_and_order() {
        let mut p = ProcessingLogic::new(2, 100_000);
        for i in 0..5 {
            p.enqueue(pkt(i, 0, 1, 1500)).unwrap();
        }
        let got = p.dequeue_upto(0, 1, 4000); // fits 2 × 1500
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id.0, 0);
        assert_eq!(got[1].id.0, 1);
        assert_eq!(p.queued_bytes(0, 1), 4500);
        // Budget smaller than one packet: nothing moves.
        assert!(p.dequeue_upto(0, 1, 100).is_empty());
    }

    #[test]
    fn overflow_counts_drops() {
        let mut p = ProcessingLogic::new(2, 2000);
        p.enqueue(pkt(1, 0, 1, 1500)).unwrap();
        let rejected = p.enqueue(pkt(2, 0, 1, 1500)).unwrap_err();
        assert_eq!(rejected.id.0, 2);
        assert_eq!(p.drops(), (1, 1500));
        // The drop still dirties nothing extra — occupancy didn't change.
        let reqs = p.take_requests(SimTime::ZERO);
        assert_eq!(reqs.len(), 1, "only the successful enqueue is reported");
    }

    #[test]
    fn rejected_packets_never_touch_the_pool() {
        let mut p = ProcessingLogic::new(2, 2000);
        p.enqueue(pkt(1, 0, 1, 1500)).unwrap();
        let occupancy = p.pool_occupancy();
        for i in 0..10 {
            assert!(p.enqueue(pkt(10 + i, 0, 1, 1500)).is_err());
        }
        assert_eq!(
            p.pool_occupancy(),
            occupancy,
            "a pre-admission drop must not allocate or free chunks"
        );
        // Drain and verify every chunk is released exactly once.
        let got = p.dequeue_upto(0, 1, u64::MAX);
        assert_eq!(got.len(), 1);
        assert_eq!(p.pool_occupancy(), (0, 0));
    }

    #[test]
    fn row_windowed_bank_matches_the_dense_bank_on_its_rows() {
        // One dense 4-port bank vs two row-windowed shards covering
        // {0, 3} and {1, 2}: identical requests after a (src, dst) merge,
        // identical totals, identical occupancy when unioned.
        let mut dense = ProcessingLogic::new(4, 10_000);
        let mut a = ProcessingLogic::with_rows(4, 10_000, vec![3, 0]); // sorted internally
        let mut b = ProcessingLogic::with_rows(4, 10_000, vec![1, 2]);
        let feed = [
            (1u64, 0usize, 2usize, 700u32),
            (2, 3, 1, 500),
            (3, 1, 0, 300),
            (4, 0, 1, 200),
        ];
        for &(id, s, d, bytes) in &feed {
            dense.enqueue(pkt(id, s, d, bytes)).unwrap();
            let shard = if s == 0 || s == 3 { &mut a } else { &mut b };
            shard.enqueue(pkt(id, s, d, bytes)).unwrap();
        }
        assert_eq!(a.total_bytes() + b.total_bytes(), dense.total_bytes());
        let want = dense.take_requests(SimTime::ZERO);
        let mut got = a.take_requests(SimTime::ZERO);
        got.extend(b.take_requests(SimTime::ZERO));
        got.sort_unstable_by_key(|r| (r.src, r.dst));
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                (g.src, g.dst, g.queued_bytes),
                (w.src, w.dst, w.queued_bytes)
            );
        }
        let mut union = DemandMatrix::zero(4);
        a.occupancy_rows_into(&mut union);
        b.occupancy_rows_into(&mut union);
        let full = dense.occupancy();
        for s in 0..4 {
            for d in 0..4 {
                assert_eq!(union.get(s, d), full.get(s, d), "cell ({s},{d})");
            }
        }
        // Dequeue through the shard keeps pool conservation local.
        assert_eq!(a.dequeue_upto(0, 2, u64::MAX).len(), 1);
        a.check_pool_conserved().unwrap();
    }

    #[test]
    fn empty_row_window_is_inert() {
        let p = ProcessingLogic::with_rows(4, 10_000, Vec::new());
        assert_eq!(p.total_bytes(), 0);
        assert_eq!(p.pool_ledger(), (0, 0, 0, 0));
        let mut m = DemandMatrix::zero(4);
        p.occupancy_rows_into(&mut m);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn occupancy_matches_queued_bytes() {
        let mut p = ProcessingLogic::new(3, 10_000);
        p.enqueue(pkt(1, 0, 1, 100)).unwrap();
        p.enqueue(pkt(2, 0, 1, 200)).unwrap();
        p.enqueue(pkt(3, 2, 0, 300)).unwrap();
        let m = p.occupancy();
        assert_eq!(m.get(0, 1), 300);
        assert_eq!(m.get(2, 0), 300);
        assert_eq!(m.total(), 600);
        assert_eq!(p.peak_voq_bytes(), 300);
    }
}
