//! Processing logic: the VOQ subsystem of Figure 2.
//!
//! "Incoming packets … are classified into flows based on configurable
//! look-up rules and placed into their respective Virtual Output Queue
//! (VOQ). As the status of a VOQ changes, the subsystem generates
//! scheduling requests and transmits packets upon receiving transmission
//! grants."
//!
//! Classification itself lives in `xds-net` ([`xds_net::RuleTable`]); by
//! the time a packet reaches the VOQ bank it carries its class and egress.
//! This module owns the N×N queues, the request generation (dirty-pair
//! tracking), and grant execution (budgeted dequeue).

use xds_net::Packet;
use xds_sim::SimTime;

use crate::demand::{DemandMatrix, SchedRequest};

const NIL: u32 = u32::MAX;

/// Packets per pool chunk: four 40-byte descriptors plus the link fit in
/// three cache lines, and a VOQ touches a new chunk only every fourth
/// packet.
const CHUNK_PKTS: usize = 4;

/// A pooled run of consecutive packets belonging to one VOQ, linked into
/// that VOQ's FIFO.
#[derive(Debug, Clone)]
struct Chunk {
    pkts: [Packet; CHUNK_PKTS],
    next: u32,
}

/// Per-pair bookkeeping kept beside the dense occupancy array.
#[derive(Debug, Clone)]
struct PairState {
    /// Cumulative bytes ever enqueued (for rate estimators).
    arrived_total: u64,
    /// High-water mark of queued bytes.
    peak_bytes: u64,
    /// Chunk FIFO head/tail (`NIL` when empty).
    head: u32,
    tail: u32,
    /// First live packet within the head chunk.
    head_off: u8,
    /// Live packets within the tail chunk.
    tail_len: u8,
    /// Whether this pair is in the dirty list.
    dirty: bool,
}

impl PairState {
    fn new() -> Self {
        PairState {
            arrived_total: 0,
            peak_bytes: 0,
            head: NIL,
            tail: NIL,
            head_off: 0,
            tail_len: 0,
            dirty: false,
        }
    }
}

/// The VOQ bank plus request bookkeeping.
///
/// Storage is built for the per-packet hot path: all `n²` VOQs share one
/// **packet pool** (a free-list slab) and each VOQ is an intrusive FIFO
/// of pool indices, so an enqueue touches one pool slot and one compact
/// per-pair record instead of a per-queue `VecDeque` plus three parallel
/// arrays. Queued bytes live in a dense `n²` array maintained
/// incrementally, so the per-epoch ground-truth snapshot is a `memcpy`,
/// and dirty pairs are kept in an explicit list so request generation
/// touches only the pairs that changed — at 256 ports the old full-
/// matrix scans and scattered per-queue state dominated both the epoch
/// loop and the packet path.
#[derive(Debug)]
pub struct ProcessingLogic {
    n: usize,
    voq_capacity: u64,
    /// Shared chunk pool; free chunks form a FIFO through `next` so runs
    /// freed together are reused together (keeps traversals in order).
    pool: Vec<Chunk>,
    free_head: u32,
    free_tail: u32,
    pairs: Vec<PairState>,
    /// Queued bytes per pair, dense row-major (mirrors the FIFO contents).
    queued: Vec<u64>,
    /// Indices currently flagged dirty, unsorted (sorted on take).
    dirty_list: Vec<u32>,
    /// Incrementally-maintained sum of `queued` (O(1) ground-truth total).
    total_queued: u64,
    drops: u64,
    dropped_bytes: u64,
}

impl ProcessingLogic {
    /// Creates an `n × n` VOQ bank with `voq_capacity` bytes per queue.
    pub fn new(n: usize, voq_capacity: u64) -> Self {
        assert!(n >= 2, "need at least 2 ports");
        assert!(voq_capacity > 0, "queue capacity must be positive");
        ProcessingLogic {
            n,
            voq_capacity,
            pool: Vec::new(),
            free_head: NIL,
            free_tail: NIL,
            pairs: vec![PairState::new(); n * n],
            queued: vec![0; n * n],
            dirty_list: Vec::new(),
            total_queued: 0,
            drops: 0,
            dropped_bytes: 0,
        }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    fn idx(&self, src: usize, dst: usize) -> usize {
        debug_assert!(src < self.n && dst < self.n);
        src * self.n + dst
    }

    #[inline]
    fn mark_dirty(&mut self, idx: usize) {
        if !self.pairs[idx].dirty {
            self.pairs[idx].dirty = true;
            self.dirty_list.push(idx as u32);
        }
    }

    /// Takes a chunk off the free FIFO (or grows the pool), seeding every
    /// slot with `p` (slot 0 is the live one; the rest are overwritten as
    /// the chunk fills).
    #[inline]
    fn alloc_chunk(&mut self, p: Packet) -> u32 {
        if self.free_head != NIL {
            let c = self.free_head;
            self.free_head = self.pool[c as usize].next;
            if self.free_head == NIL {
                self.free_tail = NIL;
            }
            let chunk = &mut self.pool[c as usize];
            chunk.pkts[0] = p;
            chunk.next = NIL;
            c
        } else {
            assert!(self.pool.len() < NIL as usize, "VOQ pool overflow");
            self.pool.push(Chunk {
                pkts: [p; CHUNK_PKTS],
                next: NIL,
            });
            (self.pool.len() - 1) as u32
        }
    }

    #[inline]
    fn free_chunk(&mut self, c: u32) {
        self.pool[c as usize].next = NIL;
        if self.free_tail == NIL {
            self.free_head = c;
        } else {
            self.pool[self.free_tail as usize].next = c;
        }
        self.free_tail = c;
    }

    /// Enqueues a packet into VOQ `(packet.src, packet.dst)`.
    ///
    /// On overflow the packet is returned and counted as a drop.
    pub fn enqueue(&mut self, p: Packet) -> Result<(), Packet> {
        let idx = self.idx(p.src.index(), p.dst.index());
        let bytes = p.bytes as u64;
        if self.queued[idx] + bytes > self.voq_capacity {
            self.drops += 1;
            self.dropped_bytes += bytes;
            return Err(p);
        }
        let pair = &self.pairs[idx];
        if pair.tail != NIL && (pair.tail_len as usize) < CHUNK_PKTS {
            // Fast path: room in the tail chunk.
            let tail = pair.tail as usize;
            let len = pair.tail_len;
            self.pool[tail].pkts[len as usize] = p;
            self.pairs[idx].tail_len = len + 1;
        } else {
            let c = self.alloc_chunk(p);
            let pair = &mut self.pairs[idx];
            if pair.tail == NIL {
                pair.head = c;
                pair.head_off = 0;
            } else {
                let old_tail = pair.tail;
                self.pool[old_tail as usize].next = c;
            }
            let pair = &mut self.pairs[idx];
            pair.tail = c;
            pair.tail_len = 1;
        }
        let pair = &mut self.pairs[idx];
        pair.arrived_total += bytes;
        self.queued[idx] += bytes;
        self.total_queued += bytes;
        let q = self.queued[idx];
        let pair = &mut self.pairs[idx];
        pair.peak_bytes = pair.peak_bytes.max(q);
        self.mark_dirty(idx);
        Ok(())
    }

    /// Bytes queued for `(src, dst)`.
    pub fn queued_bytes(&self, src: usize, dst: usize) -> u64 {
        self.queued[self.idx(src, dst)]
    }

    /// Total bytes across all VOQs (O(1): maintained incrementally).
    pub fn total_bytes(&self) -> u64 {
        debug_assert_eq!(self.total_queued, self.queued.iter().sum::<u64>());
        self.total_queued
    }

    /// Snapshot of the true occupancy (ground truth for E6).
    pub fn occupancy(&self) -> DemandMatrix {
        let mut m = DemandMatrix::zero(self.n);
        self.occupancy_into(&mut m);
        m
    }

    /// Writes the true occupancy into a caller-owned matrix, overwriting
    /// every cell (the allocation-free form the epoch loop uses). The
    /// occupancy is maintained incrementally, so this is a flat copy.
    pub fn occupancy_into(&self, out: &mut DemandMatrix) {
        out.copy_from_slice(&self.queued);
    }

    /// Drains the dirty set into scheduling requests — what the paper's
    /// "subsystem generates scheduling requests" step produces.
    pub fn take_requests(&mut self, now: SimTime) -> Vec<SchedRequest> {
        let mut out = Vec::new();
        self.take_requests_into(now, &mut out);
        out
    }

    /// [`take_requests`](Self::take_requests) into a reused buffer: the
    /// buffer is cleared, then filled in `(src, dst)` scan order. Only
    /// the dirty list is visited (sorted so the order matches a full
    /// row-major scan), not the whole `n²` matrix.
    pub fn take_requests_into(&mut self, now: SimTime, out: &mut Vec<SchedRequest>) {
        out.clear();
        self.dirty_list.sort_unstable();
        for k in 0..self.dirty_list.len() {
            let idx = self.dirty_list[k] as usize;
            debug_assert!(self.pairs[idx].dirty);
            self.pairs[idx].dirty = false;
            out.push(SchedRequest {
                src: idx / self.n,
                dst: idx % self.n,
                queued_bytes: self.queued[idx],
                arrived_bytes_total: self.pairs[idx].arrived_total,
                at: now,
            });
        }
        self.dirty_list.clear();
    }

    /// Executes a grant: dequeues packets from `(src, dst)` whose total
    /// size fits within `budget_bytes` (a slot's capacity). The VOQ is
    /// marked dirty so the occupancy drop is reported in the next request
    /// wave.
    pub fn dequeue_upto(&mut self, src: usize, dst: usize, budget_bytes: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        self.dequeue_upto_into(src, dst, budget_bytes, &mut out);
        out
    }

    /// [`dequeue_upto`](Self::dequeue_upto) appending into a reused
    /// buffer (the grant-execution hot path runs once per matched pair
    /// per slot and must not allocate a fresh vector each time).
    pub fn dequeue_upto_into(
        &mut self,
        src: usize,
        dst: usize,
        budget_bytes: u64,
        out: &mut Vec<Packet>,
    ) {
        let idx = self.idx(src, dst);
        let mut head = self.pairs[idx].head;
        if head == NIL {
            return;
        }
        let mut off = self.pairs[idx].head_off;
        let tail = self.pairs[idx].tail;
        let tail_len = self.pairs[idx].tail_len;
        let mut used = 0u64;
        let before = out.len();
        'drain: while head != NIL {
            let limit = if head == tail {
                tail_len
            } else {
                CHUNK_PKTS as u8
            };
            while off < limit {
                let pkt = self.pool[head as usize].pkts[off as usize];
                let b = pkt.bytes as u64;
                if used + b > budget_bytes {
                    break 'drain;
                }
                used += b;
                out.push(pkt);
                off += 1;
            }
            if head == tail {
                // Tail chunk exhausted: the FIFO is empty.
                if off == tail_len {
                    self.free_chunk(head);
                    head = NIL;
                    off = 0;
                }
                break;
            }
            let next = self.pool[head as usize].next;
            self.free_chunk(head);
            head = next;
            off = 0;
        }
        if out.len() > before {
            let pair = &mut self.pairs[idx];
            pair.head = head;
            pair.head_off = off;
            if head == NIL {
                pair.tail = NIL;
                pair.tail_len = 0;
            }
            self.queued[idx] -= used;
            self.total_queued -= used;
            self.mark_dirty(idx);
        }
    }

    /// `(dropped packets, dropped bytes)` from VOQ overflow.
    pub fn drops(&self) -> (u64, u64) {
        (self.drops, self.dropped_bytes)
    }

    /// Largest single-VOQ high-water mark in bytes.
    pub fn peak_voq_bytes(&self) -> u64 {
        self.pairs.iter().map(|p| p.peak_bytes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_net::{PortNo, TrafficClass};

    fn pkt(id: u64, src: usize, dst: usize, bytes: u32) -> Packet {
        Packet::new(
            id,
            id,
            PortNo::from(src),
            PortNo::from(dst),
            bytes,
            TrafficClass::Bulk,
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn enqueue_routes_to_the_right_voq() {
        let mut p = ProcessingLogic::new(4, 10_000);
        p.enqueue(pkt(1, 0, 2, 1500)).unwrap();
        p.enqueue(pkt(2, 3, 1, 500)).unwrap();
        assert_eq!(p.queued_bytes(0, 2), 1500);
        assert_eq!(p.queued_bytes(3, 1), 500);
        assert_eq!(p.queued_bytes(0, 1), 0);
        assert_eq!(p.total_bytes(), 2000);
    }

    #[test]
    fn requests_only_for_changed_pairs() {
        let mut p = ProcessingLogic::new(4, 10_000);
        p.enqueue(pkt(1, 0, 2, 1500)).unwrap();
        let reqs = p.take_requests(SimTime::from_nanos(5));
        assert_eq!(reqs.len(), 1);
        assert_eq!((reqs[0].src, reqs[0].dst), (0, 2));
        assert_eq!(reqs[0].queued_bytes, 1500);
        assert_eq!(reqs[0].arrived_bytes_total, 1500);
        // Nothing changed: no requests.
        assert!(p.take_requests(SimTime::from_nanos(6)).is_empty());
        // A dequeue is a status change too.
        let got = p.dequeue_upto(0, 2, 10_000);
        assert_eq!(got.len(), 1);
        let reqs = p.take_requests(SimTime::from_nanos(7));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].queued_bytes, 0);
        assert_eq!(
            reqs[0].arrived_bytes_total, 1500,
            "cumulative survives drain"
        );
    }

    #[test]
    fn dequeue_respects_budget_and_order() {
        let mut p = ProcessingLogic::new(2, 100_000);
        for i in 0..5 {
            p.enqueue(pkt(i, 0, 1, 1500)).unwrap();
        }
        let got = p.dequeue_upto(0, 1, 4000); // fits 2 × 1500
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id.0, 0);
        assert_eq!(got[1].id.0, 1);
        assert_eq!(p.queued_bytes(0, 1), 4500);
        // Budget smaller than one packet: nothing moves.
        assert!(p.dequeue_upto(0, 1, 100).is_empty());
    }

    #[test]
    fn overflow_counts_drops() {
        let mut p = ProcessingLogic::new(2, 2000);
        p.enqueue(pkt(1, 0, 1, 1500)).unwrap();
        let rejected = p.enqueue(pkt(2, 0, 1, 1500)).unwrap_err();
        assert_eq!(rejected.id.0, 2);
        assert_eq!(p.drops(), (1, 1500));
        // The drop still dirties nothing extra — occupancy didn't change.
        let reqs = p.take_requests(SimTime::ZERO);
        assert_eq!(reqs.len(), 1, "only the successful enqueue is reported");
    }

    #[test]
    fn occupancy_matches_queued_bytes() {
        let mut p = ProcessingLogic::new(3, 10_000);
        p.enqueue(pkt(1, 0, 1, 100)).unwrap();
        p.enqueue(pkt(2, 0, 1, 200)).unwrap();
        p.enqueue(pkt(3, 2, 0, 300)).unwrap();
        let m = p.occupancy();
        assert_eq!(m.get(0, 1), 300);
        assert_eq!(m.get(2, 0), 300);
        assert_eq!(m.total(), 600);
        assert_eq!(p.peak_voq_bytes(), 300);
    }
}
