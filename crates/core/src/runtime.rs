//! The assembled testbed: an event-driven simulation of hosts, the hybrid
//! ToR switch and the scheduler.
//!
//! Data path (fast scheduling / hardware placement):
//! host NIC → switch ingress → {EPS (interactive/short) | VOQ (bulk)} →
//! grants drain VOQs onto configured circuits → destination host.
//!
//! Data path (slow scheduling / software placement):
//! bulk waits in *host* VOQs; grants travel the control channel; hosts
//! transmit into their (clock-skew-shifted) view of the slot; packets that
//! hit a dark or re-assigned circuit are synchronization violations.
//!
//! The event loop owns all state (no interior mutability): every handler
//! is a match arm over the private event enum.
//!
//! Metric recording is **not** inlined here: the runtime hands batched
//! [`DeliveryRecord`]s, per-epoch [`EpochSample`]s and drop events to the
//! [`Instrumentation`] bundle the simulation was built with (see
//! [`crate::instrument`]), so observables grow without touching the hot
//! path. Simulations are assembled with [`SimBuilder`], which returns a
//! typed [`BuildError`] instead of panicking on bad input.

use xds_net::{Packet, TrafficClass};
use xds_sim::{EventQueue, SimDuration, SimRng, SimTime, Simulation, TxTimeCache};
use xds_switch::{BufferTracker, Site};
use xds_traffic::{packet_sizes, FlowSpec};

use crate::config::{NodeConfig, Placement};
use crate::demand::{DemandEstimator, DemandMatrix, MirrorEstimator, SchedRequest};
use crate::fault::{FaultPlan, FaultState, SlotFault};
use crate::instrument::{
    DeliveryPath, DeliveryRecord, DeliverySink, DropCause, DropSink, EpochProbe, EpochSample,
    Instrumentation, SinkCtx, APP_FLOW_BASE,
};
use crate::node::Workload;
use crate::pool::{PacketPool, PktFifo};
use crate::processing::ProcessingLogic;
use crate::report::{EpochPhaseNs, RunReport};
use crate::sched::{Schedule, ScheduleCtx, Scheduler};
use crate::switching::SwitchingLogic;
use crate::trace::TraceRecorder;
use xds_metrics::CounterSet;

/// The sharded parallel core (child module: its coordinator replays the
/// classic handlers over shard-held state, so it shares this module's
/// private types).
#[path = "shard.rs"]
mod shard;
pub use shard::{ShardExec, ShardMap};

/// Simulation events.
///
/// Deliberately **not** `Clone`: nothing on the hot path may copy an
/// event's payload. Schedules in particular live once in the runtime's
/// slab ([`SimState::scheds`]) and travel through the queue as a plain
/// `(sid, idx)` pair — the compiler proves no event handler duplicates
/// them.
#[derive(Debug)]
enum Ev {
    /// Inject the pending flow and pull the next one from the generator.
    NextFlow,
    /// Host NIC pump: serialize the next staged packet toward the switch.
    Pump { host: usize },
    /// An interactive app emits its next packet.
    AppSend { app: usize },
    /// A packet's last bit arrives at the switch ingress.
    SwitchIn { pkt: Packet },
    /// Scheduler epoch boundary: estimate demand, compute a schedule.
    EpochStart,
    /// The computed schedule (slab id `sid`) arrives (decision latency
    /// elapsed).
    ApplySchedule { sid: usize },
    /// Configure entry `idx` of schedule `sid` (OCS goes dark).
    SlotConfigure { sid: usize, idx: usize },
    /// Entry `idx` of schedule `sid` circuits are live: move granted
    /// traffic. The last entry's activation retires the slab slot.
    SlotActive { sid: usize, idx: usize },
    /// (Slow mode) A grant reaches a host: transmit into the window as the
    /// host's skewed clock sees it.
    HostGrant {
        host: usize,
        dst: usize,
        slot_start: SimTime,
        slot_end: SimTime,
    },
    /// (Slow mode) A host-released bulk packet arrives at the switch
    /// expecting a live circuit.
    OcsIn { pkt: Packet },
    /// Rotate the workload's traffic matrix (E6's moving hotspot).
    RotateMatrix { idx: usize },
    /// A link-fault arrival from the armed [`FaultPlan`]: draw a victim
    /// port, mark it dark, chain the next arrival.
    LinkFault,
    /// A previously failed port repairs.
    LinkRepair { port: usize },
}

/// Per-host state. Field order is deliberate: the pump path (once per
/// packet) touches `nic_busy_until`, `pump_active` and the staging-queue
/// headers, so those lead the struct and share cache lines; the slow-
/// mode VOQ state is colder and trails.
///
/// All packet storage lives in the runtime's shared [`PacketPool`]
/// ([`SimState::host_pool`]): the staging queues and slow-mode VOQs are
/// 10-byte intrusive FIFO headers, so a host enqueue/dequeue moves one
/// descriptor inside the pool instead of shifting a per-queue `VecDeque`,
/// and all hosts' packets recycle through one free list.
#[derive(Debug)]
struct Host {
    nic_busy_until: SimTime,
    pump_active: bool,
    /// Staging queues toward the NIC, strict priority order.
    q_inter: PktFifo,
    q_short: PktFifo,
    q_bulk: PktFifo,
    /// Slow mode: per-destination bulk VOQs held in host memory.
    voq: Vec<PktFifo>,
    voq_bytes: Vec<u64>,
    /// Incremental sum of `voq_bytes` (O(1) ground-truth total).
    voq_total: u64,
    voq_arrived: Vec<u64>,
    voq_dirty: Vec<bool>,
    /// Clock offset vs the switch in signed nanoseconds (slow mode).
    clock_offset_ns: i64,
}

impl Host {
    fn new(n: usize) -> Self {
        Host {
            q_inter: PktFifo::new(),
            q_short: PktFifo::new(),
            q_bulk: PktFifo::new(),
            voq: (0..n).map(|_| PktFifo::new()).collect(),
            voq_bytes: vec![0; n],
            voq_total: 0,
            voq_arrived: vec![0; n],
            voq_dirty: vec![false; n],
            pump_active: false,
            nic_busy_until: SimTime::ZERO,
            clock_offset_ns: 0,
        }
    }

    fn pop_staged(&mut self, pool: &mut PacketPool) -> Option<Packet> {
        if let Some(p) = pool.pop(&mut self.q_inter) {
            return Some(p);
        }
        if let Some(p) = pool.pop(&mut self.q_short) {
            return Some(p);
        }
        pool.pop(&mut self.q_bulk)
    }

    /// The actual (switch-clock) instant at which this host's clock reads
    /// the given switch-time `t`: a host whose clock runs ahead acts
    /// early.
    fn actual_time(&self, t: SimTime) -> SimTime {
        let off = self.clock_offset_ns;
        if off >= 0 {
            SimTime::from_nanos(t.as_nanos().saturating_sub(off as u64))
        } else {
            t + SimDuration::from_nanos(off.unsigned_abs())
        }
    }
}

struct SimState {
    cfg: NodeConfig,
    horizon: SimTime,
    is_hw: bool,
    ctrl_oneway: SimDuration,

    scheduler: Box<dyn Scheduler>,
    estimator: Box<dyn DemandEstimator>,

    flowgen: Option<xds_traffic::FlowGenerator>,
    pending_flow: Option<FlowSpec>,
    flow_stop: SimTime,
    apps: Vec<xds_traffic::CbrApp>,
    matrix_cycle: Option<crate::node::MatrixCycle>,

    hosts: Vec<Host>,
    /// Shared chunk pool backing every host's staging queues and VOQs.
    host_pool: PacketPool,
    proc: ProcessingLogic,
    switching: SwitchingLogic,
    buffers: BufferTracker,
    rng: SimRng,

    /// Fault-injection state, present only when the build armed a
    /// [`FaultPlan`] with at least one simulation-domain family. `None`
    /// means strictly zero cost: no RNG fork at build, no draws, no
    /// extra events — the no-fault event sequence is byte-identical to
    /// a build that predates the fault subsystem.
    faults: Option<FaultState>,

    /// Whether the estimator provably mirrors true occupancy (resolved
    /// once at construction): the epoch loop then skips the ground-truth
    /// snapshot and L1 pass — the error sample is identically zero.
    estimator_is_mirror: bool,

    /// Slab of in-flight schedules: events carry `(sid, idx)` instead of
    /// cloning the schedule through the queue. A slot is allocated when a
    /// decision lands, freed after its last entry's activation; freed ids
    /// are recycled so the slab stays as small as the number of schedules
    /// simultaneously in flight (≥ 2 only when decision latency overlaps
    /// the next epoch).
    scheds: Vec<Option<Schedule>>,
    free_scheds: Vec<usize>,

    /// One-entry serialization memos for the two per-packet rates (host
    /// NIC and OCS circuit): packet streams repeat the MTU size, so the
    /// hot paths skip a division per packet.
    host_tx: TxTimeCache,
    line_tx: TxTimeCache,

    // Epoch-loop scratch buffers, reused so the per-epoch path performs
    // no `n²`-sized allocations.
    demand_scratch: DemandMatrix,
    truth_scratch: DemandMatrix,
    reqs_scratch: Vec<SchedRequest>,
    grant_scratch: Vec<Packet>,
    /// `(release_ns, bytes)` pairs collected across one slot's grant
    /// bursts and flushed to the buffer tracker in one batch: the pairs
    /// of a slot serialize near-identical MTU ladders from the same
    /// instant, so their releases coalesce by timestamp before touching
    /// the radix queue (at 256 ports the per-packet inserts and their
    /// drain traffic were ~8% of the point).
    release_scratch: Vec<(u64, u64)>,

    // Core accounting the runtime always keeps exact, under every
    // instrumentation profile: these O(1) adds define the run's identity
    // (events and delivered bytes must match across profiles).
    next_pkt_id: u64,
    offered_bytes: u64,
    offered_flows: u64,
    delivered_ocs: u64,
    delivered_eps: u64,
    decisions: u64,
    decision_ns_sum: u128,

    // Pluggable observation (see `crate::instrument`). The capability
    // flags are resolved once at build so the per-packet path tests a
    // bool, never a vtable.
    delivery_sink: Box<dyn DeliverySink>,
    epoch_probe: Box<dyn EpochProbe>,
    drop_sink: Box<dyn DropSink>,
    /// Cached `delivery_sink.wants_batches()`.
    want_deliveries: bool,
    /// Cached `epoch_probe.wants_demand_error()`.
    want_demand_error: bool,
    /// Whether buffer-peak accounting (the radix release queue) runs.
    track_buffers: bool,
    /// Delivery records accumulated across one grant burst (or one EPS /
    /// slow-mode delivery) and flushed to the sink as a single batch.
    delivery_scratch: Vec<DeliveryRecord>,

    /// Wall-clock split of the epoch path (estimate / decompose /
    /// apply), accumulated with `Instant` around the three phases. The
    /// clock is read a handful of times per *epoch* (not per event), so
    /// the instrumentation is invisible next to the phases it measures.
    phases: EpochPhaseNs,

    /// Deterministic internal counters, merged from the scheduler's
    /// per-epoch observability deltas as the run goes and from the
    /// event queue / packet pool ledgers at the end. Plain u64 adds,
    /// always on.
    counters: CounterSet,
    /// The flight recorder, present only when the build requested
    /// tracing. Span recording reuses the phase-accounting `Instant`s
    /// the runtime reads anyway, so `None` means strictly zero extra
    /// clock reads on the hot path.
    trace: Option<TraceRecorder>,
}

impl SimState {
    fn gated(&self, class: TrafficClass) -> bool {
        class == TrafficClass::Bulk || (self.cfg.voip_on_ocs && class == TrafficClass::Interactive)
    }

    fn ensure_pump(&mut self, q: &mut EventQueue<Ev>, host: usize) {
        let h = &mut self.hosts[host];
        if !h.pump_active {
            h.pump_active = true;
            let at = q.now().max(h.nic_busy_until);
            q.schedule_at(at, Ev::Pump { host });
        }
    }

    /// Books a delivery: the exact byte counters update inline (they are
    /// profile-invariant), the observation — latency, jitter, FCT — is
    /// deferred into the burst batch handed to the delivery sink by
    /// [`flush_deliveries`](Self::flush_deliveries).
    fn record_delivery(&mut self, pkt: &Packet, at: SimTime, via: DeliveryPath) {
        match via {
            DeliveryPath::Ocs => self.delivered_ocs += pkt.bytes as u64,
            DeliveryPath::Eps => self.delivered_eps += pkt.bytes as u64,
        }
        if self.want_deliveries {
            self.delivery_scratch.push(DeliveryRecord {
                flow: pkt.flow,
                bytes: pkt.bytes,
                class: pkt.class,
                created: pkt.created,
                delivered: at,
                via,
            });
        }
    }

    /// Hands the accumulated burst to the delivery sink (one virtual
    /// call per grant burst, not per packet) and resets the scratch.
    fn flush_deliveries(&mut self) {
        if !self.delivery_scratch.is_empty() {
            self.counters.delivery_batches += 1;
            self.delivery_sink.on_batch(&self.delivery_scratch);
            self.delivery_scratch.clear();
        }
    }

    fn inject_flow(&mut self, q: &mut EventQueue<Ev>, now: SimTime, f: FlowSpec) {
        self.offered_bytes += f.bytes;
        self.offered_flows += 1;
        self.delivery_sink.on_flow_started(f.id, f.bytes, now);
        let host = f.src.index();
        let gated = self.gated(f.class);
        for (seq, size) in packet_sizes(f.bytes, self.cfg.mtu).enumerate() {
            let pkt = Packet::new(
                self.next_pkt_id,
                f.id,
                f.src,
                f.dst,
                size,
                f.class,
                now,
                seq as u32,
            );
            self.next_pkt_id += 1;
            if gated && !self.is_hw {
                // Slow scheduling: bulk waits in host memory for a grant.
                let h = &mut self.hosts[host];
                let d = f.dst.index();
                self.host_pool.push(&mut h.voq[d], pkt);
                h.voq_bytes[d] += size as u64;
                h.voq_total += size as u64;
                h.voq_arrived[d] += size as u64;
                h.voq_dirty[d] = true;
                if self.track_buffers {
                    self.buffers.on_enqueue(Site::Host, size as u64, now);
                }
            } else {
                let h = &mut self.hosts[host];
                let q = match pkt.class {
                    TrafficClass::Interactive => &mut h.q_inter,
                    TrafficClass::Short => &mut h.q_short,
                    TrafficClass::Bulk => &mut h.q_bulk,
                };
                self.host_pool.push(q, pkt);
            }
        }
        self.ensure_pump(q, host);
    }

    fn host_requests_into(&mut self, now: SimTime, out: &mut Vec<SchedRequest>) {
        out.clear();
        for (hi, h) in self.hosts.iter_mut().enumerate() {
            for d in 0..h.voq_dirty.len() {
                if h.voq_dirty[d] {
                    h.voq_dirty[d] = false;
                    out.push(SchedRequest {
                        src: hi,
                        dst: d,
                        queued_bytes: h.voq_bytes[d],
                        arrived_bytes_total: h.voq_arrived[d],
                        at: now,
                    });
                }
            }
        }
    }

    /// Writes the true host-VOQ occupancy into the reused truth buffer.
    fn host_occupancy_into_scratch(&mut self) {
        let n = self.cfg.n_ports;
        for (hi, h) in self.hosts.iter().enumerate() {
            for d in 0..n {
                self.truth_scratch.set(hi, d, h.voq_bytes[d]);
            }
        }
    }

    /// Parks a freshly-decided schedule in the slab, returning its id.
    fn alloc_sched(&mut self, sched: Schedule) -> usize {
        match self.free_scheds.pop() {
            Some(sid) => {
                debug_assert!(self.scheds[sid].is_none(), "slab slot still live");
                self.scheds[sid] = Some(sched);
                sid
            }
            None => {
                self.scheds.push(Some(sched));
                self.scheds.len() - 1
            }
        }
    }
}

/// Why a simulation could not be assembled. Returned (typed, never
/// panicked) by [`SimBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration failed [`NodeConfig::validate`].
    InvalidConfig(String),
    /// The workload's traffic matrix spans a different port space than
    /// the switch.
    PortSpaceMismatch {
        /// Port count of the workload's traffic matrix.
        workload_ports: usize,
        /// Port count of the switch configuration.
        switch_ports: usize,
    },
    /// An interactive app names an endpoint outside the switch's ports.
    AppEndpointOutOfRange {
        /// Index of the offending app in the workload.
        app: usize,
        /// The app's source port.
        src: usize,
        /// The app's destination port.
        dst: usize,
        /// Port count of the switch configuration.
        switch_ports: usize,
    },
    /// No scheduler was supplied to the builder.
    MissingScheduler,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            BuildError::PortSpaceMismatch {
                workload_ports,
                switch_ports,
            } => write!(
                f,
                "workload port count mismatch: workload spans {workload_ports} ports, \
                 switch has {switch_ports}"
            ),
            BuildError::AppEndpointOutOfRange {
                app,
                src,
                dst,
                switch_ports,
            } => write!(
                f,
                "app endpoints out of range: app {app} uses {src} -> {dst} on a \
                 {switch_ports}-port switch"
            ),
            BuildError::MissingScheduler => {
                write!(f, "no scheduler supplied (SimBuilder::scheduler)")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Assembles a [`HybridSim`]: configuration, workload, scheduling logic
/// and an [`Instrumentation`] bundle, validated into a typed
/// [`BuildError`] instead of a panic.
///
/// ```
/// use xds_core::config::NodeConfig;
/// use xds_core::runtime::SimBuilder;
/// use xds_core::sched::IslipScheduler;
/// use xds_hw::{HwAlgo, HwSchedulerModel};
/// use xds_sim::SimDuration;
///
/// let n = 4;
/// let cfg = NodeConfig::fast(
///     n,
///     SimDuration::from_nanos(100),
///     HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
/// );
/// let sim = SimBuilder::new(cfg)
///     .scheduler(Box::new(IslipScheduler::new(n, 3)))
///     .build()
///     .expect("valid configuration");
/// # let _ = sim;
/// ```
pub struct SimBuilder {
    cfg: NodeConfig,
    workload: Workload,
    scheduler: Option<Box<dyn Scheduler>>,
    estimator: Option<Box<dyn DemandEstimator>>,
    instr: Instrumentation,
    trace: bool,
    shards: usize,
    shard_map: Option<ShardMap>,
    shard_exec: ShardExec,
    faults: Option<FaultPlan>,
}

impl SimBuilder {
    /// Starts a build from a configuration. Defaults: an empty workload,
    /// a [`MirrorEstimator`] sized to the switch, full-fidelity
    /// instrumentation, and **no scheduler** (one must be supplied).
    pub fn new(cfg: NodeConfig) -> Self {
        SimBuilder {
            cfg,
            workload: Workload::apps_only(Vec::new()),
            scheduler: None,
            estimator: None,
            instr: Instrumentation::full(),
            trace: false,
            shards: 1,
            shard_map: None,
            shard_exec: ShardExec::Auto,
            faults: None,
        }
    }

    /// Arms a fault-injection plan (defaults to none). An inactive plan
    /// (no family armed) is treated exactly like no plan: the build
    /// forks no fault RNG and the event sequence is unchanged.
    pub fn faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Splits the fabric into `k` contiguous port-group shards (defaults
    /// to 1 — the classic single-queue core, bit-for-bit unchanged).
    /// `k > 1` runs the sharded core, which reproduces the classic
    /// core's events, bytes and behavioral counters exactly (see
    /// [`crate::runtime::ShardMap`] and the shard module docs for the
    /// determinism contract).
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Supplies an explicit port→shard assignment instead of the
    /// contiguous default split (overrides [`shards`](Self::shards)).
    pub fn shard_map(mut self, map: ShardMap) -> Self {
        self.shard_map = Some(map);
        self
    }

    /// How shard windows execute (defaults to [`ShardExec::Auto`]:
    /// worker threads when the machine has more than one CPU, inline
    /// otherwise). Results are identical in every mode.
    pub fn shard_execution(mut self, exec: ShardExec) -> Self {
        self.shard_exec = exec;
        self
    }

    /// Sets the workload (background flows + interactive apps).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the scheduling algorithm (required).
    pub fn scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the demand estimator (defaults to the exact occupancy
    /// mirror).
    pub fn estimator(mut self, estimator: Box<dyn DemandEstimator>) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Sets the instrumentation bundle (defaults to
    /// [`Instrumentation::full`]).
    pub fn instrumentation(mut self, instr: Instrumentation) -> Self {
        self.instr = instr;
        self
    }

    /// Enables the flight recorder (defaults to off). When on, the run
    /// captures wall-clock spans for the epoch phases, scheduler
    /// internals and slot grant bursts, and the report carries their
    /// Chrome Trace Event JSON in
    /// [`RunReport::chrome_trace`](crate::report::RunReport::chrome_trace).
    /// When off, no recorder exists and the hot path performs no extra
    /// clock reads or allocations — simulated behavior is identical
    /// either way.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Validates and assembles the simulation.
    pub fn build(self) -> Result<HybridSim, BuildError> {
        let SimBuilder {
            cfg,
            workload,
            scheduler,
            estimator,
            mut instr,
            trace,
            shards,
            shard_map,
            shard_exec,
            faults,
        } = self;
        cfg.validate().map_err(BuildError::InvalidConfig)?;
        let n = cfg.n_ports;
        let shard_map = match shard_map {
            Some(m) => {
                if m.ports() != n {
                    return Err(BuildError::InvalidConfig(format!(
                        "shard map covers {} ports, switch has {n}",
                        m.ports()
                    )));
                }
                (m.k() > 1).then_some(m)
            }
            None => (shards > 1).then(|| ShardMap::contiguous(n, shards)),
        };
        if let Some(g) = &workload.flows {
            if g.matrix().n() != n {
                return Err(BuildError::PortSpaceMismatch {
                    workload_ports: g.matrix().n(),
                    switch_ports: n,
                });
            }
        }
        for (i, a) in workload.apps.iter().enumerate() {
            if a.src.index() >= n || a.dst.index() >= n {
                return Err(BuildError::AppEndpointOutOfRange {
                    app: i,
                    src: a.src.index(),
                    dst: a.dst.index(),
                    switch_ports: n,
                });
            }
        }
        let mut scheduler = scheduler.ok_or(BuildError::MissingScheduler)?;
        if trace {
            scheduler.set_trace(true);
        }
        let estimator = estimator.unwrap_or_else(|| Box::new(MirrorEstimator::new(n)));

        let mut rng = SimRng::new(cfg.seed);
        let (is_hw, ctrl_oneway) = match &cfg.placement {
            Placement::Hardware(_) => (true, SimDuration::ZERO),
            Placement::Software { ctrl_oneway, .. } => (false, *ctrl_oneway),
        };
        let mut hosts: Vec<Host> = (0..n).map(|_| Host::new(n)).collect();
        if let Placement::Software { sync, .. } = &cfg.placement {
            let mut sync_rng = rng.fork();
            for h in &mut hosts {
                h.clock_offset_ns = sync.sample_offset_ns(&mut sync_rng);
            }
        }
        if let Some(p) = &faults {
            if p.harness_panic {
                // Chaos knob for sweep-harness isolation tests: a
                // deliberate, deterministic panic inside the build path.
                panic!("deliberate fault-plan harness panic (FaultPlan::with_harness_panic)");
            }
        }
        // The fault RNG forks only when a plan is armed, so the no-fault
        // RNG streams (and therefore every golden trace) are untouched.
        let faults = faults
            .filter(|p| p.is_active())
            .map(|p| FaultState::new(p, rng.fork(), n));
        instr.delivery.bind(&SinkCtx {
            n_ports: n,
            n_apps: workload.apps.len(),
        });
        let want_deliveries = instr.delivery.wants_batches();
        let want_demand_error = instr.epoch.wants_demand_error();
        let estimator_is_mirror = estimator.mirrors_occupancy();
        let state = SimState {
            // A sharded run keeps its VOQ rows in per-shard banks; the
            // builder's full-fabric bank would be dead weight (n² pair
            // states — ~200 MB at 2048 ports), so it gets an inert
            // zero-row husk instead.
            proc: if shard_map.is_some() {
                ProcessingLogic::with_rows(n, cfg.voq_capacity, Vec::new())
            } else {
                ProcessingLogic::new(n, cfg.voq_capacity)
            },
            switching: SwitchingLogic::new(n, cfg.reconfig, cfg.eps_rate, cfg.eps_buffer),
            buffers: BufferTracker::new(),
            horizon: SimTime::MAX,
            is_hw,
            ctrl_oneway,
            scheduler,
            estimator,
            flowgen: workload.flows,
            pending_flow: None,
            flow_stop: workload.flow_stop,
            apps: workload.apps,
            matrix_cycle: workload.matrix_cycle,
            hosts,
            host_pool: PacketPool::new(),
            rng,
            faults,
            estimator_is_mirror,
            scheds: Vec::new(),
            free_scheds: Vec::new(),
            host_tx: cfg.host_link.rate.tx_cache(),
            line_tx: cfg.line_rate.tx_cache(),
            // Tracked: estimators with exact zero cells clear and fill
            // it by worklist, and sparse-aware schedulers read the
            // support instead of re-scanning n² cells per epoch.
            demand_scratch: DemandMatrix::zero_tracked(n),
            truth_scratch: DemandMatrix::zero(n),
            reqs_scratch: Vec::new(),
            grant_scratch: Vec::new(),
            release_scratch: Vec::new(),
            next_pkt_id: 0,
            offered_bytes: 0,
            offered_flows: 0,
            delivered_ocs: 0,
            delivered_eps: 0,
            decisions: 0,
            decision_ns_sum: 0,
            delivery_sink: instr.delivery,
            epoch_probe: instr.epoch,
            drop_sink: instr.drops,
            want_deliveries,
            want_demand_error,
            track_buffers: instr.track_buffers,
            delivery_scratch: Vec::new(),
            phases: EpochPhaseNs::default(),
            counters: CounterSet::default(),
            trace: trace.then(TraceRecorder::new),
            cfg,
        };
        Ok(HybridSim {
            state,
            sim: Simulation::new(),
            shard_map,
            shard_exec,
        })
    }
}

/// The assembled simulation: configuration + workload + scheduling logic.
pub struct HybridSim {
    state: SimState,
    sim: Simulation<Ev>,
    /// `Some` iff the build asked for more than one shard: `run`
    /// dispatches to the sharded core.
    shard_map: Option<ShardMap>,
    shard_exec: ShardExec,
}

impl HybridSim {
    /// Starts a [`SimBuilder`] from a configuration.
    pub fn builder(cfg: NodeConfig) -> SimBuilder {
        SimBuilder::new(cfg)
    }

    /// Runs the testbed until `horizon` and returns the report.
    pub fn run(mut self, horizon: SimTime) -> RunReport {
        if let Some(map) = self.shard_map.take() {
            return shard::run_sharded(self, horizon, map);
        }
        self.state.horizon = horizon;
        let q = &mut self.sim.queue;
        // Seed: first flow…
        if let Some(g) = &mut self.state.flowgen {
            let f = g.next_flow();
            if f.start <= self.state.flow_stop {
                q.schedule_at(f.start, Ev::NextFlow);
                self.state.pending_flow = Some(f);
            }
        }
        // …apps…
        for (i, a) in self.state.apps.iter().enumerate() {
            q.schedule_at(a.start, Ev::AppSend { app: i });
        }
        // …the matrix rotation, if any…
        if let Some(cycle) = &self.state.matrix_cycle {
            q.schedule_at(SimTime::ZERO + cycle.period, Ev::RotateMatrix { idx: 1 });
        }
        // …and the scheduler cadence.
        q.schedule_at(SimTime::ZERO, Ev::EpochStart);
        // …and the fault chain, when a plan is armed.
        if let Some(fs) = &mut self.state.faults {
            if let Some(at) = fs.first_fault_at() {
                q.schedule_at(at, Ev::LinkFault);
            }
        }

        let stats = self
            .sim
            .run_until(&mut self.state, horizon, SimState::handle);

        let mut st = self.state;
        // Fold the structural ledgers into the counter registry. The
        // ladder queue and the two packet pools own their counts; the
        // registry harvests them once, after the last event.
        st.counters.queue_spreads = self.sim.queue.spread_count();
        st.counters.queue_spills = self.sim.queue.spill_count();
        st.counters.queue_direct_sorts = self.sim.queue.direct_sort_count();
        let (p_allocs, p_frees, p_peak, p_growths) = st.proc.pool_ledger();
        st.counters.pool_allocs = st.host_pool.alloc_count() + p_allocs;
        st.counters.pool_frees = st.host_pool.free_count() + p_frees;
        // Sum of per-pool high-water marks (the pools never trade
        // packets, so the sum is a deterministic combined ceiling).
        st.counters.pool_live_peak = st.host_pool.live_peak() + p_peak;
        st.counters.pool_chunk_growths = st.host_pool.chunk_growth_count() + p_growths;
        st.into_report(stats.events_processed, stats.end_time, horizon)
    }
}

impl SimState {
    /// Final audits + report assembly, shared by the classic and the
    /// sharded core (callers fold queue/pool ledgers into `counters`
    /// first — the two cores harvest different structures).
    fn into_report(self, events: u64, end_time: SimTime, horizon: SimTime) -> RunReport {
        let mut st = self;
        debug_assert!(
            st.delivery_scratch.is_empty(),
            "every handler flushes its delivery batch"
        );
        // End-of-run conservation audit, on in release builds too: a
        // packet-pool leak is a runtime bug no report may paper over.
        if let Err(e) = st.host_pool.check_conserved() {
            panic!("end-of-run host pool audit failed: {e}");
        }
        if let Err(e) = st.proc.check_pool_conserved() {
            panic!("end-of-run switch pool audit failed: {e}");
        }
        let delivery = st.delivery_sink.finish();
        let epoch = st.epoch_probe.finish();
        let drops = st.drop_sink.finish();
        // Close a still-open degraded interval at the run boundary and
        // harvest the fault/drop ledgers into the counter registry (the
        // per-cause tallies ride `--counters` output this way).
        let fault_degraded_ns = match &mut st.faults {
            Some(fs) => fs.finalize_degraded_ns(end_time.max(horizon)),
            None => 0,
        };
        st.counters.fault_degraded_ns_max =
            st.counters.fault_degraded_ns_max.max(fault_degraded_ns);
        st.counters.drop_voq_full = drops.voq_full;
        st.counters.drop_eps_full = drops.eps_full;
        st.counters.drop_sync_violation = drops.sync_violation;
        st.counters.drop_link_dark = drops.link_dark;
        RunReport {
            scheduler: st.scheduler.name().to_string(),
            placement: st.cfg.placement.label().to_string(),
            horizon: end_time
                .saturating_since(SimTime::ZERO)
                .max(horizon.saturating_since(SimTime::ZERO)),
            events,
            offered_bytes: st.offered_bytes,
            offered_flows: st.offered_flows,
            completed_flows: delivery.completed_flows,
            delivered_ocs_bytes: st.delivered_ocs,
            delivered_eps_bytes: st.delivered_eps,
            latency_interactive: delivery.latency_interactive,
            latency_short: delivery.latency_short,
            latency_bulk: delivery.latency_bulk,
            voip_jitter_mean_ns: delivery.voip_jitter_mean_ns,
            voip_jitter_max_ns: delivery.voip_jitter_max_ns,
            fct_mice: delivery.fct_mice,
            fct_medium: delivery.fct_medium,
            fct_elephant: delivery.fct_elephant,
            fct_overall: delivery.fct_overall,
            peak_host_buffer: st.buffers.peak(Site::Host),
            peak_switch_buffer: st.buffers.peak(Site::Switch),
            drops,
            ocs: st.switching.ocs.stats(),
            eps: st.switching.eps.stats(),
            decisions: st.decisions,
            decision_latency_mean_ns: if st.decisions == 0 {
                0.0
            } else {
                st.decision_ns_sum as f64 / st.decisions as f64
            },
            demand_error_mean: epoch.demand_error_mean,
            fault_degraded_ns,
            fault_failover_bytes: st.counters.fault_failover_bytes,
            phases: st.phases,
            timeseries: epoch.series,
            counters: st.counters,
            chrome_trace: st.trace.map(|t| t.to_chrome_json()),
            measured_deliveries: st.want_deliveries,
            measured_buffers: st.track_buffers,
        }
    }

    fn handle(st: &mut SimState, q: &mut EventQueue<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::NextFlow => {
                if let Some(f) = st.pending_flow.take() {
                    st.inject_flow(q, now, f);
                }
                if let Some(g) = &mut st.flowgen {
                    let f = g.next_flow();
                    if f.start <= st.flow_stop && f.start <= st.horizon {
                        q.schedule_at(f.start, Ev::NextFlow);
                        st.pending_flow = Some(f);
                    }
                }
            }

            Ev::Pump { host } => {
                let nic_busy = st.hosts[host].nic_busy_until;
                if now < nic_busy {
                    // A grant burst claimed the NIC; come back when free.
                    q.schedule_at(nic_busy, Ev::Pump { host });
                    return;
                }
                let Some(pkt) = st.hosts[host].pop_staged(&mut st.host_pool) else {
                    st.hosts[host].pump_active = false;
                    return;
                };
                let tx = st.host_tx.tx_time(pkt.bytes as u64);
                st.hosts[host].nic_busy_until = now + tx;
                q.schedule_at(
                    now + tx + st.cfg.host_link.propagation,
                    Ev::SwitchIn { pkt },
                );
                q.schedule_at(now + tx, Ev::Pump { host });
            }

            Ev::AppSend { app } => {
                let a = st.apps[app].clone();
                let pkt = Packet::new(
                    st.next_pkt_id,
                    APP_FLOW_BASE + app as u64,
                    a.src,
                    a.dst,
                    a.pkt_bytes,
                    TrafficClass::Interactive,
                    now,
                    0,
                );
                st.next_pkt_id += 1;
                st.offered_bytes += a.pkt_bytes as u64;
                let host = a.src.index();
                if st.gated(TrafficClass::Interactive) && !st.is_hw {
                    // voip_on_ocs ablation under slow scheduling: the call
                    // waits in host memory like any elephant.
                    let d = a.dst.index();
                    let h = &mut st.hosts[host];
                    st.host_pool.push(&mut h.voq[d], pkt);
                    h.voq_bytes[d] += a.pkt_bytes as u64;
                    h.voq_total += a.pkt_bytes as u64;
                    h.voq_arrived[d] += a.pkt_bytes as u64;
                    h.voq_dirty[d] = true;
                    if st.track_buffers {
                        st.buffers.on_enqueue(Site::Host, a.pkt_bytes as u64, now);
                    }
                } else {
                    let h = &mut st.hosts[host];
                    st.host_pool.push(&mut h.q_inter, pkt);
                    st.ensure_pump(q, host);
                }
                let next = a.next_send(now, &mut st.rng);
                if next <= st.horizon {
                    q.schedule_at(next, Ev::AppSend { app });
                }
            }

            Ev::SwitchIn { pkt } => {
                if st.gated(pkt.class) {
                    debug_assert!(st.is_hw, "slow mode gates bulk at hosts");
                    let bytes = pkt.bytes as u64;
                    match st.proc.enqueue(pkt) {
                        Ok(()) => {
                            if st.track_buffers {
                                st.buffers.on_enqueue(Site::Switch, bytes, now);
                            }
                        }
                        Err(_) => st.drop_sink.on_drop(DropCause::VoqFull, now),
                    }
                } else {
                    let out = pkt.dst.index();
                    match st.switching.eps.enqueue(out, pkt.bytes as u64, now) {
                        Ok(dep) => {
                            let deliver = dep + st.cfg.host_link.propagation;
                            st.record_delivery(&pkt, deliver, DeliveryPath::Eps);
                            st.flush_deliveries();
                        }
                        Err(()) => st.drop_sink.on_drop(DropCause::EpsFull, now),
                    }
                }
            }

            Ev::EpochStart => {
                // xlint: allow(wall-clock) — epoch phase-timing split (RunReport::phases): host-time observability, excluded from golden serialization
                let phase_t0 = std::time::Instant::now();
                // Pool-boundary audit, once per epoch: every chunk in the
                // host pool is on the free list or reachable from exactly
                // one staging queue / VOQ (the switch-side pool asserts
                // the same inside `take_requests_into`). Free in release
                // builds.
                st.host_pool.debug_assert_conserved();
                // Figure 2: requests → demand estimation → algorithm.
                // Requests, demand and ground truth all land in reused
                // scratch buffers: this loop runs every epoch and must
                // not make n²-sized allocations.
                let mut reqs = std::mem::take(&mut st.reqs_scratch);
                if st.is_hw {
                    st.proc.take_requests_into(now, &mut reqs);
                } else {
                    st.host_requests_into(now, &mut reqs);
                }
                for r in &reqs {
                    st.estimator.on_request(r);
                }
                st.reqs_scratch = reqs;
                // Estimators that keep the estimate materialized (the
                // mirror) lend it out via `estimate_ref`; only the ones
                // that must compute one fill the scratch matrix. The
                // lent reference is stable within the epoch, so it is
                // re-borrowed wherever the estimate is read.
                let have_ref = st.estimator.estimate_ref(now, st.cfg.epoch).is_some();
                if !have_ref {
                    st.estimator
                        .estimate_into(now, st.cfg.epoch, &mut st.demand_scratch);
                }
                // Demand-error sampling. The ground-truth backlog (the
                // EpochSample observable) is always available cheaply —
                // incrementally in fast mode, an O(n) host sum in slow
                // mode. The mirror's error is identically zero by
                // construction (every occupancy change produced a
                // request), and the non-mirror ground-truth snapshot +
                // L1 pass (two n² walks) runs only when the epoch probe
                // wants the sample — the lean profile declines it.
                let truth_total: u64 = if st.is_hw {
                    st.proc.total_bytes()
                } else {
                    st.hosts.iter().map(|h| h.voq_total).sum()
                };
                let mut demand_err_rel: Option<f64> = None;
                if st.estimator_is_mirror {
                    if truth_total > 0 {
                        demand_err_rel = Some(0.0);
                    }
                } else if st.want_demand_error {
                    if st.is_hw {
                        st.proc.occupancy_into(&mut st.truth_scratch);
                    } else {
                        st.host_occupancy_into_scratch();
                    }
                    let estimate = match st.estimator.estimate_ref(now, st.cfg.epoch) {
                        Some(m) => m,
                        None => &st.demand_scratch,
                    };
                    let (err_l1, tt) = estimate.error_vs(&st.truth_scratch);
                    debug_assert_eq!(tt, truth_total, "snapshot disagrees with running total");
                    if truth_total > 0 {
                        demand_err_rel = Some(err_l1 as f64 / truth_total as f64);
                    }
                }
                let ctx = ScheduleCtx {
                    now,
                    line_rate: st.cfg.line_rate,
                    reconfig: st.cfg.reconfig,
                    epoch: st.cfg.epoch,
                    max_entries: st.cfg.max_entries,
                };
                let demand = match st.estimator.estimate_ref(now, st.cfg.epoch) {
                    Some(m) => m,
                    None => &st.demand_scratch,
                };
                // Graceful degradation: while ports are dark to injected
                // faults, the scheduler sees their rows/columns zeroed —
                // it never plans circuits through a dead link.
                let demand = match &mut st.faults {
                    Some(fs) if fs.n_failed > 0 => fs.mask_demand(demand),
                    _ => demand,
                };
                // xlint: allow(wall-clock) — phase-timing block boundary (estimate → decompose), never serialized into goldens
                let phase_t1 = std::time::Instant::now();
                st.phases.estimate += phase_t1.duration_since(phase_t0).as_nanos() as u64;
                let sched = st.scheduler.schedule(demand, &ctx);
                // This `Instant::now` was previously hidden inside
                // `elapsed()`: naming it costs nothing and doubles as the
                // decompose span's end when the recorder is on.
                // xlint: allow(wall-clock) — phase-timing block boundary (decompose end), never serialized into goldens
                let phase_t2 = std::time::Instant::now();
                st.phases.decompose += phase_t2.duration_since(phase_t1).as_nanos() as u64;
                if let Some(obs) = st.scheduler.take_obs() {
                    st.counters.sched_memo_hits += obs.memo_hits;
                    st.counters.sched_hk_runs += obs.hk_runs;
                    st.counters.sched_probes += obs.probes;
                    st.counters.sched_worklist_peak =
                        st.counters.sched_worklist_peak.max(obs.worklist_len);
                    st.counters.sched_bucket_peak =
                        st.counters.sched_bucket_peak.max(obs.buckets_len);
                    if let Some(tr) = &mut st.trace {
                        for s in &obs.spans {
                            tr.span_between("sched", s.name, s.start, s.end, &[s.arg]);
                        }
                    }
                }
                if let Some(tr) = &mut st.trace {
                    // The epoch span and its two phase children reuse the
                    // phase-accounting instants read above — tracing adds
                    // no clock reads here, on or off.
                    tr.span_between(
                        "epoch",
                        "epoch",
                        phase_t0,
                        phase_t2,
                        &[("epoch", st.decisions)],
                    );
                    tr.span_between("epoch", "estimate", phase_t0, phase_t1, &[]);
                    tr.span_between(
                        "epoch",
                        "decompose",
                        phase_t1,
                        phase_t2,
                        &[("entries", sched.entries.len() as u64)],
                    );
                }
                debug_assert!(
                    sched.validate(&ctx, st.cfg.n_ports).is_ok(),
                    "{} produced an invalid schedule",
                    st.scheduler.name()
                );
                let mut d = st
                    .cfg
                    .placement
                    .decision_latency(st.cfg.n_ports, &mut st.rng);
                // Scheduler stall: the decision arrives k epochs late and
                // the fabric coasts on the previous schedule meanwhile.
                if let Some(fs) = &mut st.faults {
                    if let Some(extra) = fs.draw_stall(st.cfg.epoch) {
                        d += extra;
                        st.counters.fault_events_injected += 1;
                    }
                }
                st.decisions += 1;
                st.decision_ns_sum += d.as_nanos() as u128;
                st.epoch_probe.on_epoch(&EpochSample {
                    // One sample per decision: `decisions` was just
                    // incremented, so the zero-based epoch id is one
                    // source of truth, not a second counter.
                    epoch: st.decisions - 1,
                    at: now,
                    demand_err_rel,
                    backlog_bytes: truth_total,
                    decision_ns: d.as_nanos(),
                    ocs_dark_ns: st.switching.ocs.stats().dark_time.as_nanos(),
                    entries: sched.entries.len(),
                });
                if !sched.entries.is_empty() {
                    let sid = st.alloc_sched(sched);
                    q.schedule_at(now + d, Ev::ApplySchedule { sid });
                }
                let next = now + st.cfg.epoch.max(d);
                if next <= st.horizon {
                    q.schedule_at(next, Ev::EpochStart);
                }
            }

            Ev::ApplySchedule { sid } => {
                q.schedule_at(now, Ev::SlotConfigure { sid, idx: 0 });
            }

            Ev::SlotConfigure { sid, idx } => {
                // Reconfiguration misfire: the configure may apply late
                // (the dark window stretches) or not at all (the stale
                // permutation stays up for the whole slot).
                let slot_fault = match &mut st.faults {
                    Some(fs) => fs.draw_misfire(),
                    None => SlotFault::None,
                };
                if slot_fault != SlotFault::None {
                    st.counters.fault_events_injected += 1;
                }
                if slot_fault == SlotFault::Stale {
                    st.faults
                        .as_mut()
                        .expect("stale draw implies a plan")
                        .mark_stale(sid, idx);
                }
                let entry = &st.scheds[sid].as_ref().expect("schedule slot live").entries[idx];
                let active_at = match slot_fault {
                    SlotFault::None => st.switching.configure(&entry.perm, now),
                    SlotFault::Late(extra) => st.switching.configure(&entry.perm, now + extra),
                    // No configure happened: the slot "activates" on the
                    // nominal timeline, against the stale permutation.
                    SlotFault::Stale => now + st.cfg.reconfig,
                };
                let slot_end = active_at + entry.slot;
                if !st.is_hw && slot_fault != SlotFault::Stale {
                    // Grants travel the control channel to the hosts. The
                    // advertised window is shrunk by the guard band on
                    // both edges so a host whose clock is wrong by up to
                    // `guard` still lands inside the live circuit.
                    let g = st.cfg.guard;
                    let gs = active_at + g;
                    let ge = SimTime::from_nanos(slot_end.as_nanos().saturating_sub(g.as_nanos()));
                    if ge > gs {
                        for (i, j) in entry.perm.pairs() {
                            q.schedule_at(
                                now + st.ctrl_oneway,
                                Ev::HostGrant {
                                    host: i,
                                    dst: j,
                                    slot_start: gs,
                                    slot_end: ge,
                                },
                            );
                        }
                    }
                }
                q.schedule_at(active_at, Ev::SlotActive { sid, idx });
            }

            Ev::SlotActive { sid, idx } => {
                // Move the schedule out of the slab for the duration of
                // the grant burst (record_delivery needs `&mut st`), and
                // retire the slot after the last entry.
                let sched = st.scheds[sid].take().expect("schedule slot live");
                let entry = &sched.entries[idx];
                let slot_end = now + entry.slot;
                // A stale slot's configure never applied: every granted
                // pair fails over. A faulted pair fails over alone.
                let stale = match &mut st.faults {
                    Some(fs) => fs.take_stale(sid, idx),
                    None => false,
                };
                if st.is_hw {
                    // xlint: allow(wall-clock) — apply phase-timing block start (RunReport::phases), excluded from golden serialization
                    let phase_t0 = std::time::Instant::now();
                    // Processing logic executes grants: budgeted dequeue,
                    // packets serialized at line rate onto the circuit.
                    let budget = st.cfg.line_rate.bytes_in(entry.slot);
                    let mut granted = std::mem::take(&mut st.grant_scratch);
                    for (i, j) in entry.perm.pairs() {
                        granted.clear();
                        st.proc.dequeue_upto_into(i, j, budget, &mut granted);
                        if granted.is_empty() {
                            continue;
                        }
                        // With faults armed, stall-delayed schedules can
                        // overlap: a later schedule's configure may have
                        // darkened or re-aimed the fabric mid-slot, so the
                        // fault path probes the circuit where the clean
                        // path may assert it.
                        let diverted = stale
                            || st.faults.as_ref().is_some_and(|fs| fs.pair_failed(i, j))
                            || (st.faults.is_some()
                                && st.switching.ocs.output_for(i, now) != Some(j));
                        if diverted {
                            // Graceful degradation: the granted burst
                            // cannot ride the circuit (dark link or stale
                            // permutation) — divert it onto the EPS slow
                            // path packet by packet instead of losing it.
                            for pkt in granted.drain(..) {
                                let bytes = pkt.bytes as u64;
                                if st.track_buffers {
                                    // The bytes leave the VOQ now either
                                    // way (EPS keeps its own ledger).
                                    st.release_scratch.push((now.as_nanos(), bytes));
                                }
                                match st.switching.eps.enqueue(j, bytes, now) {
                                    Ok(dep) => {
                                        st.counters.fault_failover_bytes += bytes;
                                        let deliver = dep + st.cfg.host_link.propagation;
                                        st.record_delivery(&pkt, deliver, DeliveryPath::Eps);
                                    }
                                    Err(()) => st.drop_sink.on_drop(DropCause::EpsFull, now),
                                }
                            }
                            continue;
                        }
                        // xlint: allow(wall-clock) — flight-recorder grant-burst span start, gated on trace; wall-clock stays out of goldens
                        let burst_t0 = st.trace.is_some().then(std::time::Instant::now);
                        let npkts = granted.len() as u64;
                        st.counters.grant_bursts += 1;
                        st.counters.grant_pkts_max = st.counters.grant_pkts_max.max(npkts);
                        // One circuit validation per burst (identical
                        // accounting to per-packet transmits).
                        let total: u64 = granted.iter().map(|p| p.bytes as u64).sum();
                        st.switching
                            .ocs
                            .transmit_batch(i, j, total, npkts, now)
                            .expect("granted circuit must be live");
                        let mut cursor = now;
                        for pkt in granted.drain(..) {
                            let bytes = pkt.bytes as u64;
                            let dep = cursor + st.line_tx.tx_time(bytes);
                            cursor = dep;
                            if st.track_buffers {
                                st.release_scratch.push((dep.as_nanos(), bytes));
                            }
                            let deliver = dep + st.cfg.host_link.propagation;
                            st.record_delivery(&pkt, deliver, DeliveryPath::Ocs);
                        }
                        if let (Some(t0), Some(tr)) = (burst_t0, &mut st.trace) {
                            tr.span_between(
                                "slot",
                                "grant_burst",
                                t0,
                                // xlint: allow(wall-clock) — flight-recorder span end, trace-gated
                                std::time::Instant::now(),
                                &[("pkts", npkts)],
                            );
                        }
                    }
                    // All pairs drained the same slot: flush their
                    // releases as one timestamp-coalesced batch, and the
                    // slot's deliveries as one sink batch.
                    if st.track_buffers {
                        let mut releases = std::mem::take(&mut st.release_scratch);
                        st.buffers.on_dequeue_at_batch(Site::Switch, &mut releases);
                        st.release_scratch = releases;
                    }
                    st.flush_deliveries();
                    st.grant_scratch = granted;
                    // xlint: allow(wall-clock) — apply phase-timing block end (RunReport::phases), excluded from golden serialization
                    let phase_t1 = std::time::Instant::now();
                    st.phases.apply += phase_t1.duration_since(phase_t0).as_nanos() as u64;
                    if let Some(tr) = &mut st.trace {
                        // Reuses the apply-phase instants: the slot span
                        // nests the grant-burst spans recorded above.
                        tr.span_between(
                            "epoch",
                            "apply",
                            phase_t0,
                            phase_t1,
                            &[("entry", idx as u64)],
                        );
                    }
                }
                if idx + 1 < sched.entries.len() {
                    st.scheds[sid] = Some(sched);
                    q.schedule_at(slot_end, Ev::SlotConfigure { sid, idx: idx + 1 });
                } else {
                    st.free_scheds.push(sid);
                }
            }

            Ev::HostGrant {
                host,
                dst,
                slot_start,
                slot_end,
            } => {
                // The host obeys its own clock: a skewed host mistimes the
                // window (§2's synchronization argument).
                let (start_seen, end_seen) = {
                    let h = &st.hosts[host];
                    (h.actual_time(slot_start), h.actual_time(slot_end))
                };
                let h = &mut st.hosts[host];
                let pool = &mut st.host_pool;
                let mut cursor = now.max(start_seen).max(h.nic_busy_until);
                let link = st.cfg.host_link;
                while let Some(front) = pool.front(&h.voq[dst]) {
                    let bytes = front.bytes as u64;
                    let tx = st.host_tx.tx_time(bytes);
                    if cursor + tx > end_seen {
                        break;
                    }
                    let pkt = pool.pop(&mut h.voq[dst]).expect("peeked");
                    let dep = cursor + tx;
                    cursor = dep;
                    h.voq_bytes[dst] -= bytes;
                    h.voq_total -= bytes;
                    h.voq_dirty[dst] = true;
                    if st.track_buffers {
                        st.buffers.on_dequeue_at(Site::Host, bytes, dep);
                    }
                    q.schedule_at(dep + link.propagation, Ev::OcsIn { pkt });
                }
                h.nic_busy_until = h.nic_busy_until.max(cursor);
            }

            Ev::RotateMatrix { idx } => {
                if let (Some(cycle), Some(g)) = (&st.matrix_cycle, &mut st.flowgen) {
                    g.set_matrix(cycle.matrices[idx % cycle.matrices.len()].clone());
                    let next = now + cycle.period;
                    if next <= st.horizon {
                        q.schedule_at(next, Ev::RotateMatrix { idx: idx + 1 });
                    }
                }
            }

            Ev::OcsIn { pkt } => {
                let (i, j, bytes) = (pkt.src.index(), pkt.dst.index(), pkt.bytes as u64);
                if st.faults.as_ref().is_some_and(|fs| fs.pair_failed(i, j)) {
                    // The link died while the packet was in flight: the
                    // light went into a dark fiber.
                    st.drop_sink.on_drop(DropCause::LinkDark, now);
                    return;
                }
                match st.switching.ocs.transmit(i, j, bytes, now) {
                    Ok(()) => {
                        let deliver = now + st.cfg.host_link.propagation;
                        st.record_delivery(&pkt, deliver, DeliveryPath::Ocs);
                        st.flush_deliveries();
                    }
                    Err(_) => {
                        // Dark window or re-assigned circuit: the light
                        // went nowhere useful.
                        st.drop_sink.on_drop(DropCause::SyncViolation, now);
                    }
                }
            }

            Ev::LinkFault => {
                let fs = st.faults.as_mut().expect("LinkFault implies a plan");
                let (port, repair_at, next) = fs.on_link_fault(now);
                if let Some(at) = repair_at {
                    st.counters.fault_events_injected += 1;
                    q.schedule_at(at, Ev::LinkRepair { port });
                }
                if let Some(at) = next {
                    if at <= st.horizon {
                        q.schedule_at(at, Ev::LinkFault);
                    }
                }
            }

            Ev::LinkRepair { port } => {
                st.faults
                    .as_mut()
                    .expect("LinkRepair implies a plan")
                    .on_link_repair(port, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::MirrorEstimator;
    use crate::sched::{EpsOnlyScheduler, HotspotScheduler, IslipScheduler};
    use xds_hw::{HwAlgo, HwSchedulerModel, SwSchedulerModel};
    use xds_net::PortNo;
    use xds_sim::BitRate;
    use xds_traffic::{CbrApp, FlowGenerator, FlowSizeDist, TrafficMatrix};

    /// Test shorthand over [`SimBuilder`] (the positional shape the old
    /// constructor had).
    fn sim(
        cfg: NodeConfig,
        workload: Workload,
        scheduler: Box<dyn Scheduler>,
        estimator: Box<dyn DemandEstimator>,
    ) -> HybridSim {
        SimBuilder::new(cfg)
            .workload(workload)
            .scheduler(scheduler)
            .estimator(estimator)
            .build()
            .expect("test sim must build")
    }

    fn hw_cfg(n: usize) -> NodeConfig {
        NodeConfig::fast(
            n,
            SimDuration::from_nanos(100),
            HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 }),
        )
    }

    fn flows(n: usize, load: f64, seed: u64) -> Workload {
        Workload::flows(FlowGenerator::with_load(
            TrafficMatrix::uniform(n),
            FlowSizeDist::Fixed(150_000), // bulk-class flows
            load,
            BitRate::GBPS_10,
            SimRng::new(seed),
        ))
    }

    fn run_fast(n: usize, load: f64, ms: u64) -> RunReport {
        let cfg = hw_cfg(n);
        sim(
            cfg,
            flows(n, load, 7),
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(ms))
    }

    #[test]
    fn fast_mode_delivers_most_offered_bytes() {
        let r = run_fast(4, 0.4, 5);
        assert!(r.offered_bytes > 0);
        let gp = r.goodput_fraction();
        assert!(
            gp > 0.8,
            "goodput {gp} ({:?} of {})",
            r.delivered_bytes(),
            r.offered_bytes
        );
        assert_eq!(r.drops.sync_violation, 0, "hardware mode cannot misfire");
        assert!(r.decisions > 0);
        assert!(r.ocs.rejected == 0, "granted transmissions must be legal");
    }

    #[test]
    fn bulk_rides_ocs_not_eps_in_fast_mode() {
        let r = run_fast(4, 0.4, 5);
        assert!(
            r.delivered_ocs_bytes > 10 * r.delivered_eps_bytes,
            "bulk flows should ride circuits: ocs={} eps={}",
            r.delivered_ocs_bytes,
            r.delivered_eps_bytes
        );
        assert!(r.peak_switch_buffer > 0, "fast mode buffers in the switch");
        assert_eq!(r.peak_host_buffer, 0, "fast mode keeps host buffers empty");
    }

    #[test]
    fn eps_only_baseline_uses_no_circuits() {
        let n = 4;
        let cfg = hw_cfg(n);
        let r = sim(
            cfg,
            flows(n, 0.2, 9),
            Box::new(EpsOnlyScheduler::new()),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(2));
        assert_eq!(r.delivered_ocs_bytes, 0);
        assert_eq!(r.ocs.reconfigurations, 0);
        // The undersized EPS (1 Gb/s/port) chokes on bulk: VOQs fill and
        // overflow since nothing drains them.
        assert!(r.drops.voq_full > 0 || r.peak_switch_buffer > 0);
    }

    #[test]
    fn voip_over_eps_has_low_latency_in_fast_mode() {
        let n = 4;
        let cfg = hw_cfg(n);
        // Accelerated CBR streams (500 µs interval) so a short run still
        // sees many packets.
        let mk = |id, s, d| {
            let mut a = CbrApp::voip(id, PortNo(s), PortNo(d), SimTime::ZERO);
            a.interval = SimDuration::from_micros(500);
            a
        };
        let apps = vec![mk(0, 0, 1), mk(1, 2, 3)];
        let r = sim(
            cfg,
            flows(n, 0.3, 11).with_apps(apps),
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(20));
        assert!(
            r.latency_interactive.count() >= 60,
            "both calls flowed: {}",
            r.latency_interactive.count()
        );
        // EPS at 1 Gb/s: a 200 B packet takes ~1.6 µs + queue; p99 should
        // be well under a millisecond when the EPS isn't overloaded.
        assert!(
            r.latency_interactive.p99() < 1_000_000,
            "p99 {}ns",
            r.latency_interactive.p99()
        );
        assert!(r.voip_jitter_mean_ns.is_some());
    }

    #[test]
    fn slow_mode_buffers_at_hosts_and_works_with_good_sync() {
        let n = 4;
        let mut cfg = NodeConfig::slow(
            n,
            SimDuration::from_micros(100),
            SwSchedulerModel::tuned_userspace(),
        );
        cfg.epoch = SimDuration::from_millis(1);
        cfg.seed = 3;
        // Perfect sync first: no violations expected.
        if let Placement::Software { sync, .. } = &mut cfg.placement {
            *sync = xds_hw::SyncModel::perfect();
        }
        let r = sim(
            cfg,
            flows(n, 0.3, 13),
            Box::new(HotspotScheduler::new(10_000)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(20));
        assert!(r.peak_host_buffer > 0, "slow mode buffers at hosts");
        assert_eq!(r.peak_switch_buffer, 0, "no switch VOQs in slow mode");
        assert!(r.delivered_ocs_bytes > 0, "grants must move bulk");
        assert_eq!(
            r.drops.sync_violation, 0,
            "perfect sync ⇒ no dark-window hits"
        );
    }

    #[test]
    fn clock_skew_causes_sync_violations_in_slow_mode() {
        let n = 4;
        let mut cfg = NodeConfig::slow(
            n,
            SimDuration::from_micros(50),
            SwSchedulerModel::tuned_userspace(),
        );
        cfg.epoch = SimDuration::from_millis(1);
        cfg.seed = 5;
        if let Placement::Software { sync, .. } = &mut cfg.placement {
            // Skew comparable to the dark window: edges will be clipped.
            *sync = xds_hw::SyncModel {
                skew_bound: SimDuration::from_micros(40),
                drift_ppb: 0,
                resync_interval: SimDuration::from_secs(1),
            };
        }
        let r = sim(
            cfg,
            flows(n, 0.5, 17),
            Box::new(HotspotScheduler::new(10_000)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(20));
        assert!(
            r.drops.sync_violation > 0,
            "µs-scale skew must clip slot edges"
        );
    }

    #[test]
    fn guard_band_absorbs_clock_skew() {
        // The E8 mitigation: with a guard band at least as large as the
        // worst-case offset (plus propagation), the same skew that causes
        // violations produces none — at the cost of shortened slots.
        let n = 4;
        let mk = |guard_us: u64| {
            let mut cfg = NodeConfig::slow(
                n,
                SimDuration::from_micros(50),
                SwSchedulerModel::tuned_userspace(),
            );
            cfg.epoch = SimDuration::from_millis(1);
            cfg.seed = 5;
            cfg.guard = SimDuration::from_micros(guard_us);
            if let Placement::Software { sync, .. } = &mut cfg.placement {
                *sync = xds_hw::SyncModel {
                    skew_bound: SimDuration::from_micros(40),
                    drift_ppb: 0,
                    resync_interval: SimDuration::from_secs(1),
                };
            }
            sim(
                cfg,
                flows(n, 0.5, 17),
                Box::new(HotspotScheduler::new(10_000)),
                Box::new(MirrorEstimator::new(n)),
            )
            .run(SimTime::from_millis(20))
        };
        let unguarded = mk(0);
        let guarded = mk(45);
        assert!(
            unguarded.drops.sync_violation > 0,
            "skew must bite without guard"
        );
        assert_eq!(guarded.drops.sync_violation, 0, "guard ≥ skew absorbs it");
        // The protection costs circuit capacity.
        assert!(
            guarded.delivered_ocs_bytes
                <= unguarded.delivered_ocs_bytes + unguarded.drops.sync_violation * 9000
        );
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = run_fast(4, 0.5, 3);
        let b = run_fast(4, 0.5, 3);
        assert_eq!(a.delivered_ocs_bytes, b.delivered_ocs_bytes);
        assert_eq!(a.delivered_eps_bytes, b.delivered_eps_bytes);
        assert_eq!(a.events, b.events);
        assert_eq!(a.offered_flows, b.offered_flows);
        assert_eq!(a.latency_bulk.p99(), b.latency_bulk.p99());
    }

    #[test]
    fn flow_stop_caps_injection() {
        let n = 4;
        let cfg = hw_cfg(n);
        let w = flows(n, 0.5, 19).with_flow_stop(SimTime::from_micros(100));
        let r = sim(
            cfg,
            w,
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(5));
        assert!(r.offered_flows > 0);
        // All offered flows get plenty of drain time: everything delivers.
        assert!(r.goodput_fraction() > 0.99, "{}", r.goodput_fraction());
        assert_eq!(r.completed_flows, r.offered_flows);
    }

    #[test]
    fn matrix_rotation_changes_traffic_mid_run() {
        let n = 4;
        let cfg = hw_cfg(n);
        // Start with all traffic on pair (0→1); rotate to (2→3) after 1 ms.
        let m1 = TrafficMatrix::from_weights(n, {
            let mut w = vec![0.0; 16];
            w[1] = 1.0; // 0 -> 1
            w
        })
        .unwrap();
        let m2 = TrafficMatrix::from_weights(n, {
            let mut w = vec![0.0; 16];
            w[2 * 4 + 3] = 1.0; // 2 -> 3
            w
        })
        .unwrap();
        let gen = FlowGenerator::with_load(
            m1.clone(),
            FlowSizeDist::Fixed(150_000),
            0.2,
            BitRate::GBPS_10,
            SimRng::new(23),
        );
        let w = Workload::flows(gen).with_matrix_cycle(SimDuration::from_millis(1), vec![m2, m1]);
        let r = sim(
            cfg,
            w,
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(4));
        // Both permutations' circuits must have been configured at some
        // point: reconfigurations > 2 and bytes flowed.
        assert!(r.delivered_ocs_bytes > 0);
        assert!(r.ocs.reconfigurations > 2);
    }

    #[test]
    fn voip_on_ocs_ablation_gates_interactive_in_fast_mode() {
        let n = 4;
        let mk = |gated: bool| {
            let mut cfg = hw_cfg(n);
            cfg.voip_on_ocs = gated;
            let mut app = CbrApp::voip(0, PortNo(0), PortNo(2), SimTime::ZERO);
            app.interval = SimDuration::from_micros(200);
            sim(
                cfg,
                Workload::apps_only(vec![app]),
                Box::new(IslipScheduler::new(n, 3)),
                Box::new(MirrorEstimator::new(n)),
            )
            .run(SimTime::from_millis(10))
        };
        let normal = mk(false);
        let gated = mk(true);
        assert!(normal.latency_interactive.count() > 0);
        assert!(gated.latency_interactive.count() > 0);
        // Gated packets wait for epoch grants: p50 latency must be much
        // larger than the EPS path's.
        assert!(
            gated.latency_interactive.p50() > 2 * normal.latency_interactive.p50(),
            "gated {} vs normal {}",
            gated.latency_interactive.p50(),
            normal.latency_interactive.p50()
        );
        assert!(gated.delivered_ocs_bytes > 0, "gated voip rides circuits");
        assert_eq!(normal.delivered_ocs_bytes, 0, "ungated voip rides the EPS");
    }

    #[test]
    fn slow_mode_conserves_bytes_with_perfect_sync() {
        let n = 4;
        let mut cfg = NodeConfig::slow(
            n,
            SimDuration::from_micros(100),
            SwSchedulerModel::tuned_userspace(),
        );
        cfg.epoch = SimDuration::from_millis(1);
        if let Placement::Software { sync, .. } = &mut cfg.placement {
            *sync = xds_hw::SyncModel::perfect();
        }
        let w = flows(n, 0.2, 37).with_flow_stop(SimTime::from_millis(3));
        let r = sim(
            cfg,
            w,
            Box::new(HotspotScheduler::new(10_000)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(60));
        assert_eq!(r.drops.total(), 0, "{:?}", r.drops);
        assert_eq!(
            r.delivered_bytes(),
            r.offered_bytes,
            "host VOQs must fully drain once flows stop"
        );
    }

    #[test]
    fn decisions_slower_than_epoch_stretch_the_cadence() {
        // When the decision latency exceeds the epoch, the scheduler
        // cannot start a new decision until the previous one lands: the
        // effective cadence is the decision latency.
        let n = 4;
        let mut cfg = hw_cfg(n);
        cfg.epoch = SimDuration::from_micros(20);
        cfg.placement = Placement::Hardware(HwSchedulerModel {
            clock: xds_hw::ClockDomain::from_mhz(1000),
            demand_cycles: 100_000, // 100 µs decision at 1 GHz
            algo: HwAlgo::Tdma,
            grant_cycles: 0,
        });
        let r = sim(
            cfg,
            flows(n, 0.3, 41),
            Box::new(IslipScheduler::new(n, 3)),
            Box::new(MirrorEstimator::new(n)),
        )
        .run(SimTime::from_millis(2));
        // 2 ms / 100 µs ≈ 20 decisions (not 2 ms / 20 µs = 100).
        assert!(
            (15..=25).contains(&r.decisions),
            "expected ~20 stretched epochs, got {}",
            r.decisions
        );
    }

    #[test]
    fn mismatched_workload_rejected() {
        let err = SimBuilder::new(hw_cfg(4))
            .workload(flows(8, 0.5, 1))
            .scheduler(Box::new(IslipScheduler::new(4, 3)))
            .build()
            .err()
            .expect("mismatched workload must be rejected");
        assert_eq!(
            err,
            BuildError::PortSpaceMismatch {
                workload_ports: 8,
                switch_ports: 4
            }
        );
        assert!(err.to_string().contains("workload port count mismatch"));
    }

    #[test]
    fn builder_reports_typed_errors() {
        // Invalid configuration.
        let mut bad = hw_cfg(4);
        bad.epoch = SimDuration::ZERO;
        let err = SimBuilder::new(bad)
            .scheduler(Box::new(IslipScheduler::new(4, 3)))
            .build()
            .err()
            .expect("invalid config must be rejected");
        assert!(matches!(err, BuildError::InvalidConfig(_)), "{err:?}");
        // Out-of-range app endpoint.
        let app = CbrApp::voip(0, PortNo(0), PortNo(9), SimTime::ZERO);
        let err = SimBuilder::new(hw_cfg(4))
            .workload(Workload::apps_only(vec![app]))
            .scheduler(Box::new(IslipScheduler::new(4, 3)))
            .build()
            .err()
            .expect("out-of-range app must be rejected");
        assert_eq!(
            err,
            BuildError::AppEndpointOutOfRange {
                app: 0,
                src: 0,
                dst: 9,
                switch_ports: 4
            }
        );
        // Missing scheduler.
        let err = SimBuilder::new(hw_cfg(4)).build().err().unwrap();
        assert_eq!(err, BuildError::MissingScheduler);
    }

    #[test]
    fn builder_happy_path_builds_and_runs() {
        // The canonical construction path (typed errors covered above):
        // explicit estimator, default instrumentation, traffic flows.
        let n = 4;
        let r = SimBuilder::new(hw_cfg(n))
            .workload(flows(n, 0.3, 7))
            .scheduler(Box::new(IslipScheduler::new(n, 3)))
            .estimator(Box::new(MirrorEstimator::new(n)))
            .build()
            .expect("valid spec must build")
            .run(SimTime::from_millis(1));
        assert!(r.delivered_bytes() > 0);
    }

    #[test]
    fn estimator_defaults_to_mirror() {
        let n = 4;
        let r = SimBuilder::new(hw_cfg(n))
            .workload(flows(n, 0.4, 7))
            .scheduler(Box::new(IslipScheduler::new(n, 3)))
            .build()
            .expect("builds without an explicit estimator")
            .run(SimTime::from_millis(2));
        // The mirror's error sample is identically zero once traffic flows.
        assert_eq!(r.demand_error_mean, Some(0.0));
    }

    #[test]
    fn lean_profile_matches_full_events_and_bytes_exactly() {
        let run = |instr: Instrumentation| {
            SimBuilder::new(hw_cfg(4))
                .workload(flows(4, 0.5, 21))
                .scheduler(Box::new(IslipScheduler::new(4, 3)))
                .instrumentation(instr)
                .build()
                .expect("builds")
                .run(SimTime::from_millis(5))
        };
        let full = run(Instrumentation::full());
        let lean = run(Instrumentation::lean());
        // Simulated behavior is profile-invariant…
        assert_eq!(full.events, lean.events);
        assert_eq!(full.delivered_ocs_bytes, lean.delivered_ocs_bytes);
        assert_eq!(full.delivered_eps_bytes, lean.delivered_eps_bytes);
        assert_eq!(full.offered_bytes, lean.offered_bytes);
        assert_eq!(full.decisions, lean.decisions);
        // …while the lean profile skips the observation work.
        assert!(full.latency_bulk.count() > 0);
        assert_eq!(lean.latency_bulk.count(), 0);
        assert_eq!(lean.completed_flows, 0);
        assert_eq!(lean.peak_switch_buffer, 0);
        assert_eq!(lean.demand_error_mean, None);
        assert!(full.peak_switch_buffer > 0);
    }

    #[test]
    fn counters_populate_and_tracing_defaults_to_off() {
        let r = run_fast(4, 0.4, 5);
        assert!(r.chrome_trace.is_none(), "tracing defaults to off");
        assert!(r.counters.grant_bursts > 0, "bulk load grants bursts");
        assert!(r.counters.grant_pkts_max > 0);
        assert!(r.counters.delivery_batches > 0);
        assert!(r.counters.pool_allocs > 0, "packets went through a pool");
        assert!(r.counters.pool_frees <= r.counters.pool_allocs);
        assert!(r.counters.pool_live_peak > 0);
        // Counters are part of the run's deterministic identity.
        let again = run_fast(4, 0.4, 5);
        assert_eq!(r.counters, again.counters);
    }

    #[test]
    fn flight_recorder_emits_a_valid_chrome_trace_without_perturbing_the_run() {
        let traced = SimBuilder::new(hw_cfg(4))
            .workload(flows(4, 0.4, 7))
            .scheduler(Box::new(IslipScheduler::new(4, 3)))
            .trace(true)
            .build()
            .expect("builds")
            .run(SimTime::from_millis(3));
        let json = traced.chrome_trace.as_ref().expect("recorder ran");
        let summary = crate::trace::validate_chrome_trace(json).expect("valid Chrome trace");
        assert!(summary.complete_events > 0);
        for name in ["epoch", "estimate", "decompose", "apply", "grant_burst"] {
            assert!(summary.names.contains(name), "missing span {name}");
        }
        // Simulated behavior and counters are trace-invariant.
        let plain = SimBuilder::new(hw_cfg(4))
            .workload(flows(4, 0.4, 7))
            .scheduler(Box::new(IslipScheduler::new(4, 3)))
            .build()
            .expect("builds")
            .run(SimTime::from_millis(3));
        assert!(plain.chrome_trace.is_none());
        assert_eq!(plain.events, traced.events);
        assert_eq!(plain.delivered_ocs_bytes, traced.delivered_ocs_bytes);
        assert_eq!(plain.counters, traced.counters);
    }

    #[test]
    fn timeseries_profile_records_one_row_per_epoch() {
        let r = SimBuilder::new(hw_cfg(4))
            .workload(flows(4, 0.5, 23))
            .scheduler(Box::new(IslipScheduler::new(4, 3)))
            .instrumentation(Instrumentation::timeseries())
            .build()
            .expect("builds")
            .run(SimTime::from_millis(3));
        let series = r.timeseries.as_ref().expect("timeseries profile records");
        assert_eq!(series.len() as u64, r.decisions, "one row per decision");
        let rows = series.rows();
        assert!(rows[0].duty_cycle.is_none(), "first row has no interval");
        assert!(
            rows.iter().skip(1).all(|row| row.duty_cycle.is_some()),
            "every later row derives a duty cycle"
        );
        assert!(
            rows.iter().any(|row| row.backlog_bytes > 0),
            "backlog must be observed under load"
        );
        // Full fidelity rides along: the aggregate metrics are intact.
        assert!(r.latency_bulk.count() > 0);
        assert_eq!(r.demand_error_mean, Some(0.0), "mirror estimator");
    }

    /// Asserts the sharded determinism contract between two reports:
    /// identical behavior (events, bytes, flows, decisions, drops,
    /// switch stats, latency/FCT observables) and identical values for
    /// every counter that is not a per-shard structural ledger.
    fn assert_shard_equiv(want: &RunReport, got: &RunReport, label: &str) {
        assert_eq!(want.events, got.events, "{label}: events");
        assert_eq!(want.offered_bytes, got.offered_bytes, "{label}: offered");
        assert_eq!(want.offered_flows, got.offered_flows, "{label}: flows");
        assert_eq!(
            want.completed_flows, got.completed_flows,
            "{label}: completed"
        );
        assert_eq!(
            want.delivered_ocs_bytes, got.delivered_ocs_bytes,
            "{label}: ocs bytes"
        );
        assert_eq!(
            want.delivered_eps_bytes, got.delivered_eps_bytes,
            "{label}: eps bytes"
        );
        assert_eq!(want.decisions, got.decisions, "{label}: decisions");
        assert_eq!(want.drops, got.drops, "{label}: drops");
        assert_eq!(want.ocs, got.ocs, "{label}: ocs stats");
        assert_eq!(want.eps, got.eps, "{label}: eps stats");
        assert_eq!(
            want.peak_host_buffer, got.peak_host_buffer,
            "{label}: host peak"
        );
        assert_eq!(
            want.peak_switch_buffer, got.peak_switch_buffer,
            "{label}: switch peak"
        );
        assert_eq!(want.horizon, got.horizon, "{label}: horizon");
        for h in [
            (&want.latency_bulk, &got.latency_bulk, "bulk"),
            (&want.latency_short, &got.latency_short, "short"),
            (&want.latency_interactive, &got.latency_interactive, "inter"),
        ] {
            assert_eq!(h.0.count(), h.1.count(), "{label}: {} count", h.2);
            assert_eq!(h.0.p99(), h.1.p99(), "{label}: {} p99", h.2);
        }
        assert_eq!(
            want.voip_jitter_mean_ns, got.voip_jitter_mean_ns,
            "{label}: jitter"
        );
        // Behavioral counters are K-invariant; the structural ledgers
        // (queue_*, pool_*) are per-(K, seed) deterministic but differ.
        for name in [
            "sched_memo_hits",
            "sched_hk_runs",
            "sched_probes",
            "sched_worklist_peak",
            "sched_bucket_peak",
            "grant_bursts",
            "grant_pkts_max",
            "delivery_batches",
        ] {
            assert_eq!(
                want.counters.get(name),
                got.counters.get(name),
                "{label}: counter {name}"
            );
        }
    }

    #[test]
    fn sharded_fast_mode_reproduces_the_classic_core() {
        let n = 8;
        let mk = || {
            SimBuilder::new(hw_cfg(n))
                .workload(flows(n, 0.4, 7))
                .scheduler(Box::new(IslipScheduler::new(n, 3)))
                .estimator(Box::new(MirrorEstimator::new(n)))
        };
        let classic = mk().build().unwrap().run(SimTime::from_millis(3));
        assert!(classic.delivered_ocs_bytes > 0);
        for k in [2, 4, 8] {
            let sharded = mk().shards(k).build().unwrap().run(SimTime::from_millis(3));
            assert_shard_equiv(&classic, &sharded, &format!("k={k}"));
        }
    }

    #[test]
    fn sharded_slow_mode_reproduces_the_classic_core() {
        let n = 4;
        let mk = || {
            let mut cfg = NodeConfig::slow(
                n,
                SimDuration::from_micros(50),
                SwSchedulerModel::tuned_userspace(),
            );
            cfg.epoch = SimDuration::from_millis(1);
            cfg.seed = 5;
            if let Placement::Software { sync, .. } = &mut cfg.placement {
                *sync = xds_hw::SyncModel {
                    skew_bound: SimDuration::from_micros(40),
                    drift_ppb: 0,
                    resync_interval: SimDuration::from_secs(1),
                };
            }
            SimBuilder::new(cfg)
                .workload(flows(n, 0.5, 17))
                .scheduler(Box::new(HotspotScheduler::new(10_000)))
                .estimator(Box::new(MirrorEstimator::new(n)))
        };
        let classic = mk().build().unwrap().run(SimTime::from_millis(20));
        assert!(
            classic.drops.sync_violation > 0,
            "exercise the violation path"
        );
        for k in [2, 4] {
            let sharded = mk()
                .shards(k)
                .build()
                .unwrap()
                .run(SimTime::from_millis(20));
            assert_shard_equiv(&classic, &sharded, &format!("slow k={k}"));
        }
    }

    #[test]
    fn sharded_with_apps_reproduces_the_classic_core() {
        let n = 4;
        let mk = || {
            let mk_app = |id, s, d| {
                let mut a = CbrApp::voip(id, PortNo(s), PortNo(d), SimTime::ZERO);
                a.interval = SimDuration::from_micros(500);
                a
            };
            SimBuilder::new(hw_cfg(n))
                .workload(flows(n, 0.3, 11).with_apps(vec![mk_app(0, 0, 1), mk_app(1, 2, 3)]))
                .scheduler(Box::new(IslipScheduler::new(n, 3)))
                .estimator(Box::new(MirrorEstimator::new(n)))
        };
        let classic = mk().build().unwrap().run(SimTime::from_millis(10));
        assert!(classic.latency_interactive.count() > 0, "apps flowed");
        let sharded = mk()
            .shards(2)
            .build()
            .unwrap()
            .run(SimTime::from_millis(10));
        assert_shard_equiv(&classic, &sharded, "apps k=2");
    }

    #[test]
    fn shard_executor_modes_are_equivalent() {
        // Threads vs inline must be byte-identical (shards share nothing
        // within a window) — this exercises the concurrent path even on
        // a single-CPU machine.
        let n = 8;
        let mk = |exec| {
            SimBuilder::new(hw_cfg(n))
                .workload(flows(n, 0.4, 7))
                .scheduler(Box::new(IslipScheduler::new(n, 3)))
                .shards(4)
                .shard_execution(exec)
                .build()
                .unwrap()
                .run(SimTime::from_millis(3))
        };
        let inline = mk(ShardExec::Inline);
        let threads = mk(ShardExec::Threads);
        assert_eq!(inline.events, threads.events);
        assert_eq!(inline.delivered_ocs_bytes, threads.delivered_ocs_bytes);
        assert_eq!(inline.delivered_eps_bytes, threads.delivered_eps_bytes);
        assert_eq!(inline.counters, threads.counters, "full counter registry");
    }

    #[test]
    fn arbitrary_shard_maps_preserve_behavior() {
        let n = 8;
        let mk = || {
            SimBuilder::new(hw_cfg(n))
                .workload(flows(n, 0.4, 7))
                .scheduler(Box::new(IslipScheduler::new(n, 3)))
        };
        let classic = mk().build().unwrap().run(SimTime::from_millis(3));
        // A deliberately lopsided, non-contiguous assignment.
        let map = ShardMap::from_assignment(vec![1, 0, 2, 0, 1, 0, 2, 0]).unwrap();
        let sharded = mk()
            .shard_map(map)
            .build()
            .unwrap()
            .run(SimTime::from_millis(3));
        assert_shard_equiv(&classic, &sharded, "scattered map");
    }

    #[test]
    fn shard_map_validates_density_and_port_space() {
        assert!(ShardMap::from_assignment(vec![0, 2]).is_err(), "hole at 1");
        assert!(ShardMap::from_assignment(Vec::new()).is_err());
        let m = ShardMap::contiguous(8, 3);
        assert_eq!(m.k(), 3);
        let mut counts = vec![0usize; 3];
        for p in 0..8 {
            counts[m.shard_of(p)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(
            counts.iter().all(|&c| c >= 2),
            "near-equal split: {counts:?}"
        );
        // A map sized for the wrong fabric is a typed build error.
        let built = SimBuilder::new(hw_cfg(4))
            .scheduler(Box::new(IslipScheduler::new(4, 3)))
            .shard_map(ShardMap::contiguous(8, 2))
            .build();
        assert!(matches!(built.err(), Some(BuildError::InvalidConfig(_))));
    }
}
