//! Flight-recorder span tracing: nested wall-clock spans serialized as
//! Chrome Trace Event Format JSON.
//!
//! The coarse `phase_*_ns` split added with the epoch-phase accounting
//! says *that* decompose dominates an epoch; it cannot say whether the
//! time went to threshold probes, Hopcroft–Karp runs or grant fan-out.
//! The [`TraceRecorder`] answers that: the runtime (and, through
//! [`SchedObs`], the scheduler) records one complete span per unit of
//! hot-path work — epoch → estimate/decompose/apply, per threshold
//! probe, per matching, per slot activation and grant burst — and the
//! whole recording loads directly into Perfetto / `chrome://tracing`.
//!
//! Recording is strictly opt-in: the runtime holds an
//! `Option<TraceRecorder>` and every call site is behind a single
//! `is-some` test, so a tracing-disabled run does no extra work — no
//! `Instant::now()` calls, no allocation, no branch beyond the test the
//! hot path already pays for capability flags. Span timestamps are
//! host wall-clock and therefore **never deterministic**: they belong
//! only in the `results/<out>.trace.json` artifact, never in golden
//! traces or pinned counters (the deterministic side of the flight
//! recorder is `xds_metrics::CounterSet`).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// An open (begun, not yet ended) span on the recorder's stack.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    cat: &'static str,
    name: &'static str,
    start: Instant,
}

/// A finished span: a Chrome "complete" (`"ph": "X"`) event.
#[derive(Debug, Clone)]
struct CompleteEvent {
    cat: &'static str,
    name: &'static str,
    /// Start offset from the recorder's anchor, nanoseconds.
    ts_ns: u64,
    dur_ns: u64,
    args: Vec<(&'static str, u64)>,
}

/// Records nested wall-clock spans and serializes them as Chrome Trace
/// Event Format JSON (see the module docs for when this is enabled).
#[derive(Debug)]
pub struct TraceRecorder {
    t0: Instant,
    events: Vec<CompleteEvent>,
    stack: Vec<OpenSpan>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A fresh recorder anchored at "now": the first span starts near
    /// `ts = 0`.
    pub fn new() -> Self {
        TraceRecorder {
            t0: Instant::now(),
            events: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Opens a nested span; every `begin` must be matched by one
    /// [`end`](Self::end) / [`end_with_args`](Self::end_with_args).
    pub fn begin(&mut self, cat: &'static str, name: &'static str) {
        self.stack.push(OpenSpan {
            cat,
            name,
            start: Instant::now(),
        });
    }

    /// Closes the innermost open span.
    pub fn end(&mut self) {
        self.end_with_args(&[]);
    }

    /// Closes the innermost open span, attaching `args` (rendered under
    /// the event's `"args"` object in the trace viewer).
    pub fn end_with_args(&mut self, args: &[(&'static str, u64)]) {
        let open = self
            .stack
            .pop()
            .expect("TraceRecorder::end without a matching begin");
        let end = Instant::now();
        self.push_complete(open.cat, open.name, open.start, end, args);
    }

    /// Records a span from externally captured instants (used to re-play
    /// scheduler-internal spans drained after `schedule()`, and to reuse
    /// the phase-accounting instants the runtime measures anyway).
    pub fn span_between(
        &mut self,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        end: Instant,
        args: &[(&'static str, u64)],
    ) {
        self.push_complete(cat, name, start, end, args);
    }

    fn push_complete(
        &mut self,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        end: Instant,
        args: &[(&'static str, u64)],
    ) {
        let ts_ns = start.saturating_duration_since(self.t0).as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
        self.events.push(CompleteEvent {
            cat,
            name,
            ts_ns,
            dur_ns,
            args: args.to_vec(),
        });
    }

    /// Number of completed spans recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the recording as Chrome Trace Event Format JSON: a
    /// `traceEvents` array of complete (`"ph": "X"`) events on one
    /// process/thread track (the simulation is single-threaded; nesting
    /// comes from span containment), timestamps in microseconds with
    /// nanosecond precision. Loadable as-is in Perfetto and
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        debug_assert!(
            self.stack.is_empty(),
            "serializing with {} spans still open",
            self.stack.len()
        );
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\": [\n");
        out.push_str(
            "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, \
             \"args\": {\"name\": \"xds-sim\"}}",
        );
        for e in &self.events {
            out.push_str(",\n  ");
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": 1, \"tid\": 1",
                e.name,
                e.cat,
                micros(e.ts_ns),
                micros(e.dur_ns)
            );
            if !e.args.is_empty() {
                out.push_str(", \"args\": {");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{k}\": {v}");
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n],\n\"displayTimeUnit\": \"ms\"}\n");
        out
    }
}

/// Renders nanoseconds as a decimal microsecond literal (`12345` →
/// `12.345`), keeping full precision without floating point.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One scheduler-internal span, captured with raw instants and re-played
/// into the recorder after `schedule()` returns (the scheduler has no
/// recorder reference on its hot path).
#[derive(Debug, Clone, Copy)]
pub struct SchedSpan {
    /// Span label (`probe`, `match_hk`, `match_memo`).
    pub name: &'static str,
    /// Wall-clock start.
    pub start: Instant,
    /// Wall-clock end.
    pub end: Instant,
    /// One attached argument, e.g. `("entries", n)`.
    pub arg: (&'static str, u64),
}

/// Per-epoch scheduler observability, drained by the runtime via
/// [`Scheduler::take_obs`](crate::sched::Scheduler::take_obs) after each
/// `schedule()` call.
///
/// Counter fields are per-epoch deltas (the runtime accumulates them
/// into the run's `CounterSet`); `spans` is only populated when the
/// scheduler was told to capture spans via
/// [`Scheduler::set_trace`](crate::sched::Scheduler::set_trace) — an
/// empty `Vec` allocates nothing, so untraced runs stay allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SchedObs {
    /// Matching-memo replays this epoch.
    pub memo_hits: u64,
    /// Hopcroft–Karp executions this epoch.
    pub hk_runs: u64,
    /// Threshold probes (adjacency builds) this epoch.
    pub probes: u64,
    /// Worklist entries loaded this epoch.
    pub worklist_len: u64,
    /// Populated value buckets this epoch.
    pub buckets_len: u64,
    /// Captured spans, oldest first (empty unless tracing).
    pub spans: Vec<SchedSpan>,
}

impl SchedObs {
    /// True when the epoch recorded nothing (no counters, no spans).
    pub fn is_empty(&self) -> bool {
        self.memo_hits == 0
            && self.hk_runs == 0
            && self.probes == 0
            && self.worklist_len == 0
            && self.buckets_len == 0
            && self.spans.is_empty()
    }
}

/// Summary returned by [`validate_chrome_trace`]: what a well-formed
/// trace contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Complete (`"ph": "X"`) events in the trace.
    pub complete_events: usize,
    /// Distinct span names seen.
    pub names: BTreeSet<String>,
}

/// Validates a string against the subset of Chrome Trace Event Format
/// the [`TraceRecorder`] emits — the schema half of the round-trip test
/// (the workspace builds without serde, so validation is hand-rolled,
/// like every other parser in the repo).
///
/// Checks: the outer object carries a `traceEvents` array; every element
/// is a flat object (one nesting level allowed for `args`) with `name`,
/// `ph`, `pid` and `tid`; complete events additionally carry `cat`,
/// numeric `ts` and `dur`. Returns what was found, or a one-line error
/// saying where the document went wrong.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let body = json.trim();
    if !body.starts_with('{') || !body.ends_with('}') {
        return Err("trace is not a JSON object".into());
    }
    let arr_key = "\"traceEvents\"";
    let key_at = body
        .find(arr_key)
        .ok_or_else(|| "missing \"traceEvents\" key".to_string())?;
    let after = &body[key_at + arr_key.len()..];
    let colon = after
        .find(':')
        .ok_or_else(|| "no ':' after \"traceEvents\"".to_string())?;
    let arr = after[colon + 1..].trim_start();
    if !arr.starts_with('[') {
        return Err("\"traceEvents\" is not an array".into());
    }
    let objects = split_array_objects(arr)?;
    let mut complete_events = 0usize;
    let mut names = BTreeSet::new();
    for (i, obj) in objects.iter().enumerate() {
        let fields = object_fields(obj).map_err(|e| format!("event {i}: {e}"))?;
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
        let name = get("name").ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let name = name
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("event {i}: \"name\" is not a string"))?;
        let ph = get("ph").ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        for k in ["pid", "tid"] {
            let v = get(k).ok_or_else(|| format!("event {i}: missing \"{k}\""))?;
            v.parse::<u64>()
                .map_err(|_| format!("event {i}: \"{k}\" is not an integer"))?;
        }
        if ph == "\"X\"" {
            for k in ["ts", "dur"] {
                let v = get(k).ok_or_else(|| format!("event {i} ({name}): missing \"{k}\""))?;
                v.parse::<f64>()
                    .map_err(|_| format!("event {i} ({name}): \"{k}\" is not a number"))?;
            }
            get("cat").ok_or_else(|| format!("event {i} ({name}): missing \"cat\""))?;
            complete_events += 1;
            names.insert(name.to_string());
        }
    }
    Ok(TraceSummary {
        complete_events,
        names,
    })
}

/// Splits a JSON array literal into its top-level object slices,
/// tracking string and nesting state (no allocation beyond the output
/// vector). Errors on anything that is not a `[ {..}, {..}, ... ]`
/// shape.
fn split_array_objects(arr: &str) -> Result<Vec<&str>, String> {
    debug_assert!(arr.starts_with('['));
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut obj_start = None;
    for (i, c) in arr.char_indices().skip(1) {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced '}'".to_string())?;
                if depth == 0 {
                    let start = obj_start.take().expect("open brace recorded");
                    objects.push(&arr[start..=i]);
                }
            }
            ']' if depth == 0 => return Ok(objects),
            ',' | ' ' | '\n' | '\r' | '\t' => {}
            other if depth == 0 => {
                return Err(format!("unexpected '{other}' between array elements"));
            }
            _ => {}
        }
    }
    Err("array never closed".into())
}

/// Extracts the top-level `key: value` pairs of one flat JSON object
/// (values of nested objects are kept as raw slices, so `args` does not
/// confuse the scan).
fn object_fields(obj: &str) -> Result<Vec<(String, String)>, String> {
    let inner = obj
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not an object".to_string())?;
    let mut fields = Vec::new();
    let bytes: Vec<char> = inner.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            ' ' | '\n' | '\r' | '\t' | ',' => i += 1,
            '"' => {
                let (key, after_key) = read_string(&bytes, i)?;
                let mut j = after_key;
                while j < bytes.len() && bytes[j].is_whitespace() {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != ':' {
                    return Err(format!("key \"{key}\" has no ':'"));
                }
                j += 1;
                while j < bytes.len() && bytes[j].is_whitespace() {
                    j += 1;
                }
                let (value, next) = read_value(&bytes, j)?;
                fields.push((key, value));
                i = next;
            }
            other => return Err(format!("unexpected '{other}' where a key should start")),
        }
    }
    Ok(fields)
}

/// Reads a string literal starting at `bytes[i] == '"'`; returns the
/// unquoted content and the index one past the closing quote.
fn read_string(bytes: &[char], i: usize) -> Result<(String, usize), String> {
    debug_assert_eq!(bytes[i], '"');
    let mut out = String::new();
    let mut j = i + 1;
    let mut escaped = false;
    while j < bytes.len() {
        let c = bytes[j];
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((out, j + 1));
        } else {
            out.push(c);
        }
        j += 1;
    }
    Err("unterminated string".into())
}

/// Reads one JSON value starting at `bytes[i]` (string, number, keyword
/// or nested object/array kept as a raw slice); returns its raw text and
/// the index one past its end.
fn read_value(bytes: &[char], i: usize) -> Result<(String, usize), String> {
    if i >= bytes.len() {
        return Err("value missing".into());
    }
    match bytes[i] {
        '"' => {
            let (s, next) = read_string(bytes, i)?;
            Ok((format!("\"{s}\""), next))
        }
        '{' | '[' => {
            let (open, close) = if bytes[i] == '{' {
                ('{', '}')
            } else {
                ('[', ']')
            };
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            for (off, &c) in bytes[i..].iter().enumerate() {
                if in_string {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        in_string = false;
                    }
                    continue;
                }
                match c {
                    '"' => in_string = true,
                    c if c == open => depth += 1,
                    c if c == close => {
                        depth -= 1;
                        if depth == 0 {
                            let raw: String = bytes[i..=i + off].iter().collect();
                            return Ok((raw, i + off + 1));
                        }
                    }
                    _ => {}
                }
            }
            Err("unterminated nested value".into())
        }
        _ => {
            let mut j = i;
            while j < bytes.len()
                && !matches!(bytes[j], ',' | '}' | ']')
                && !bytes[j].is_whitespace()
            {
                j += 1;
            }
            if j == i {
                return Err("empty value".into());
            }
            Ok((bytes[i..j].iter().collect(), j))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_round_trips_through_the_validator() {
        let mut tr = TraceRecorder::new();
        tr.begin("runtime", "epoch");
        tr.begin("runtime", "estimate");
        tr.end();
        tr.end_with_args(&[("epoch", 0)]);
        let a = Instant::now();
        tr.span_between("sched", "probe", a, Instant::now(), &[("entries", 7)]);
        assert_eq!(tr.len(), 3);
        let json = tr.to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.complete_events, 3);
        let names: Vec<&str> = summary.names.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["epoch", "estimate", "probe"]);
        assert!(json.contains("\"args\": {\"epoch\": 0}"), "{json}");
        assert!(json.contains("\"displayTimeUnit\": \"ms\""));
    }

    #[test]
    fn empty_recorder_is_still_a_valid_trace() {
        let tr = TraceRecorder::new();
        assert!(tr.is_empty());
        let summary = validate_chrome_trace(&tr.to_chrome_json()).expect("valid");
        assert_eq!(summary.complete_events, 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"other\": []}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        // A complete event without a duration is not schema-valid.
        let no_dur = "{\"traceEvents\": [{\"name\": \"a\", \"cat\": \"c\", \"ph\": \"X\", \
                      \"ts\": 1.0, \"pid\": 1, \"tid\": 1}]}";
        let err = validate_chrome_trace(no_dur).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn micros_renders_exact_nanosecond_precision() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(12_345), "12.345");
    }

    #[test]
    fn sched_obs_emptiness() {
        assert!(SchedObs::default().is_empty());
        let obs = SchedObs {
            probes: 1,
            ..SchedObs::default()
        };
        assert!(!obs.is_empty());
    }
}
