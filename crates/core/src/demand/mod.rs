//! Demand matrices, scheduling requests, and demand estimators.
//!
//! Figure 2: "As the status of a VOQ changes, the subsystem generates
//! scheduling requests … The scheduling logic processes the incoming
//! requests, estimates the demand matrix, and runs the scheduling
//! algorithm."

mod estimators;

pub use estimators::{
    CountMinEstimator, DemandEstimator, EwmaEstimator, MirrorEstimator, WindowEstimator,
};

use xds_sim::SimTime;

/// Optional support tracker for a [`DemandMatrix`]: the flat indices of
/// every cell that *may* be non-zero (a superset — cells that decayed
/// back to zero linger until [`DemandMatrix::compact_support`]). This is
/// the sparse epoch interface: at kilofabric scale the per-epoch
/// consumers (Solstice's worklist build, the estimators' fills, the
/// scratch clears) must walk the live cells, not all `n²` of them.
#[derive(Debug, Clone)]
struct SupportTracker {
    /// Flat indices of possibly-non-zero cells, in insertion order.
    cells: Vec<u32>,
    /// Membership bitmap over all `n²` cells (1 byte each; two tracked
    /// matrices at 1024 ports cost 2 MB — noise next to the matrices).
    member: Vec<bool>,
    /// Writes that zeroed a member cell since the last compaction: a
    /// cheap staleness signal so compaction can be skipped while the
    /// support is exact.
    stale: usize,
}

/// An `n × n` matrix of demanded bytes from each input to each output.
///
/// Equality and the golden-trace surface consider only the port count
/// and cell values; the optional support tracker is bookkeeping.
#[derive(Debug, Clone)]
pub struct DemandMatrix {
    n: usize,
    bytes: Vec<u64>,
    support: Option<Box<SupportTracker>>,
}

impl PartialEq for DemandMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.bytes == other.bytes
    }
}

impl Eq for DemandMatrix {}

impl DemandMatrix {
    /// The zero matrix over `n` ports.
    pub fn zero(n: usize) -> Self {
        assert!(n > 0, "demand matrix needs at least one port");
        DemandMatrix {
            n,
            bytes: vec![0; n * n],
            support: None,
        }
    }

    /// The zero matrix with support tracking enabled (see
    /// [`track_support`](Self::track_support)).
    pub fn zero_tracked(n: usize) -> Self {
        let mut m = Self::zero(n);
        m.track_support();
        m
    }

    /// Builds from a row-major byte vector.
    pub fn from_vec(n: usize, bytes: Vec<u64>) -> Self {
        assert_eq!(bytes.len(), n * n, "need n² entries");
        DemandMatrix {
            n,
            bytes,
            support: None,
        }
    }

    /// Enables support tracking: from now on the matrix maintains the
    /// (superset) list of non-zero cells alongside the values, so epoch
    /// consumers can iterate and clear by worklist instead of walking
    /// `n²` cells. Existing non-zeros are scanned in once. Idempotent.
    pub fn track_support(&mut self) {
        if self.support.is_some() {
            return;
        }
        let mut t = SupportTracker {
            cells: Vec::new(),
            member: vec![false; self.bytes.len()],
            stale: 0,
        };
        for (idx, &v) in self.bytes.iter().enumerate() {
            if v > 0 {
                t.member[idx] = true;
                t.cells.push(idx as u32);
            }
        }
        self.support = Some(Box::new(t));
    }

    /// Whether support tracking is enabled.
    pub fn is_tracked(&self) -> bool {
        self.support.is_some()
    }

    /// The tracked support: flat indices of every possibly-non-zero cell,
    /// in insertion order. A **superset** — callers must skip cells whose
    /// value reads zero. `None` when tracking is off (callers fall back
    /// to the dense walk).
    pub fn support(&self) -> Option<&[u32]> {
        self.support.as_ref().map(|t| t.cells.as_slice())
    }

    /// Drops zero-valued cells from the tracked support, making it exact
    /// (insertion order preserved). No-op when untracked or when no
    /// member cell was zeroed since the last compaction.
    pub fn compact_support(&mut self) {
        let Some(t) = &mut self.support else { return };
        if t.stale == 0 {
            return;
        }
        let bytes = &self.bytes;
        let member = &mut t.member;
        t.cells.retain(|&idx| {
            let live = bytes[idx as usize] > 0;
            if !live {
                member[idx as usize] = false;
            }
            live
        });
        t.stale = 0;
    }

    /// Zeroes the matrix by its tracked worklist — O(support) instead of
    /// O(n²) — and empties the support. Falls back to the dense
    /// [`clear`](Self::clear) when tracking is off.
    pub fn clear_sparse(&mut self) {
        match &mut self.support {
            Some(t) => {
                for &idx in &t.cells {
                    self.bytes[idx as usize] = 0;
                    t.member[idx as usize] = false;
                }
                t.cells.clear();
                t.stale = 0;
            }
            None => self.bytes.fill(0),
        }
    }

    /// Records a write of `v` to flat index `idx` in the tracker.
    #[inline]
    fn note_write(&mut self, idx: usize, v: u64) {
        if let Some(t) = &mut self.support {
            if v > 0 {
                if !t.member[idx] {
                    t.member[idx] = true;
                    t.cells.push(idx as u32);
                }
            } else if t.member[idx] {
                t.stale += 1;
            }
        }
    }

    /// Rebuilds the tracker after a dense overwrite (the slow path —
    /// tracked matrices should prefer sparse writes). Reuses the
    /// tracker's allocations: the rescan is unavoidably O(n²), but it
    /// must not also reallocate the n²-entry bitmap each time.
    fn rebuild_support(&mut self) {
        let Some(t) = &mut self.support else { return };
        t.member.fill(false);
        t.cells.clear();
        t.stale = 0;
        for (idx, &v) in self.bytes.iter().enumerate() {
            if v > 0 {
                t.member[idx] = true;
                t.cells.push(idx as u32);
            }
        }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The demand from `src` to `dst` in bytes.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Sets the demand for a pair.
    pub fn set(&mut self, src: usize, dst: usize, bytes: u64) {
        let idx = src * self.n + dst;
        self.bytes[idx] = bytes;
        self.note_write(idx, bytes);
    }

    /// Adds demand to a pair (saturating).
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        let idx = src * self.n + dst;
        let e = &mut self.bytes[idx];
        *e = e.saturating_add(bytes);
        let v = *e;
        self.note_write(idx, v);
    }

    /// Subtracts served bytes from a pair (saturating).
    pub fn sub(&mut self, src: usize, dst: usize, bytes: u64) {
        let idx = src * self.n + dst;
        let e = &mut self.bytes[idx];
        *e = e.saturating_sub(bytes);
        let v = *e;
        self.note_write(idx, v);
    }

    /// Zeroes every entry in place (scratch-buffer reuse: the hot path
    /// rebuilds demand and occupancy every epoch and must not reallocate
    /// the `n²` backing store each time). Tracked matrices should prefer
    /// [`clear_sparse`](Self::clear_sparse).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
        if let Some(t) = &mut self.support {
            for &idx in &t.cells {
                t.member[idx as usize] = false;
            }
            t.cells.clear();
            t.stale = 0;
        }
    }

    /// Overwrites `self` with `other`'s entries, reusing the allocation.
    ///
    /// # Panics
    /// Panics if the port counts differ.
    pub fn copy_from(&mut self, other: &DemandMatrix) {
        assert_eq!(self.n, other.n, "matrix sizes differ");
        self.bytes.copy_from_slice(&other.bytes);
        self.rebuild_support();
    }

    /// Overwrites every entry from a row-major slice (the incremental-
    /// occupancy fast path).
    ///
    /// # Panics
    /// Panics if the slice is not exactly `n²` long.
    pub fn copy_from_slice(&mut self, src: &[u64]) {
        assert_eq!(src.len(), self.n * self.n, "need n² entries");
        self.bytes.copy_from_slice(src);
        self.rebuild_support();
    }

    /// Overwrites every entry from a row-major iterator (the strided
    /// gather the VOQ bank uses when occupancy lives inside per-pair
    /// records rather than a dense array).
    ///
    /// # Panics
    /// Panics if the iterator does not yield exactly `n²` entries.
    pub fn fill_from(&mut self, src: impl Iterator<Item = u64>) {
        let mut wrote = 0;
        for v in src {
            assert!(wrote < self.bytes.len(), "more than n² entries");
            self.bytes[wrote] = v;
            wrote += 1;
        }
        assert_eq!(wrote, self.n * self.n, "need n² entries");
        self.rebuild_support();
    }

    /// The row-major backing store (read-only view for flat iteration).
    pub fn as_slice(&self) -> &[u64] {
        &self.bytes
    }

    /// Writes one cell by row-major flat index (sparse-update fast path).
    pub fn set_cell(&mut self, idx: usize, bytes: u64) {
        self.bytes[idx] = bytes;
        self.note_write(idx, bytes);
    }

    /// Zeroes one cell by row-major flat index.
    pub fn clear_cell(&mut self, idx: usize) {
        self.bytes[idx] = 0;
        self.note_write(idx, 0);
    }

    /// Total demanded bytes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// True when all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    /// The largest entry and its pair, or `None` when zero.
    pub fn max_entry(&self) -> Option<(usize, usize, u64)> {
        let (idx, &v) = self
            .bytes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .expect("non-empty");
        if v == 0 {
            None
        } else {
            Some((idx / self.n, idx % self.n, v))
        }
    }

    /// Row sums (per-source demanded bytes).
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.n)
            .map(|s| (0..self.n).map(|d| self.get(s, d)).sum())
            .collect()
    }

    /// Column sums (per-destination demanded bytes).
    pub fn col_sums(&self) -> Vec<u64> {
        (0..self.n)
            .map(|d| (0..self.n).map(|s| self.get(s, d)).sum())
            .collect()
    }

    /// Iterates non-zero entries as `(src, dst, bytes)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.bytes
            .iter()
            .enumerate()
            .filter_map(move |(i, &b)| (b > 0).then_some((i / self.n, i % self.n, b)))
    }

    /// Sum of absolute differences against another matrix (estimation
    /// error metric for E6).
    pub fn l1_distance(&self, other: &DemandMatrix) -> u64 {
        assert_eq!(self.n, other.n, "matrix sizes differ");
        self.bytes
            .iter()
            .zip(other.bytes.iter())
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }

    /// `(l1_distance(truth), truth.total())` in one pass — the epoch
    /// loop's demand-error sample, fused so the truth matrix is walked
    /// once instead of twice.
    pub fn error_vs(&self, truth: &DemandMatrix) -> (u64, u64) {
        assert_eq!(self.n, truth.n, "matrix sizes differ");
        let mut l1 = 0u64;
        let mut total = 0u64;
        for (&a, &b) in self.bytes.iter().zip(truth.bytes.iter()) {
            l1 += a.abs_diff(b);
            total += b;
        }
        (l1, total)
    }
}

/// A scheduling request: the VOQ-status report the processing logic sends
/// when a VOQ changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedRequest {
    /// Input port.
    pub src: usize,
    /// Output port.
    pub dst: usize,
    /// Bytes currently queued in the VOQ.
    pub queued_bytes: u64,
    /// Cumulative bytes ever enqueued to the VOQ (lets rate estimators see
    /// arrivals even when the queue drains).
    pub arrived_bytes_total: u64,
    /// When the report was generated.
    pub at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_is_zero() {
        let m = DemandMatrix::zero(4);
        assert!(m.is_zero());
        assert_eq!(m.total(), 0);
        assert_eq!(m.max_entry(), None);
    }

    #[test]
    fn get_set_add_sub() {
        let mut m = DemandMatrix::zero(3);
        m.set(0, 1, 100);
        m.add(0, 1, 50);
        m.sub(0, 1, 30);
        assert_eq!(m.get(0, 1), 120);
        m.sub(0, 1, 1000);
        assert_eq!(m.get(0, 1), 0, "sub saturates");
        m.add(2, 0, u64::MAX);
        m.add(2, 0, 1);
        assert_eq!(m.get(2, 0), u64::MAX, "add saturates");
    }

    #[test]
    fn sums_and_max() {
        let m = DemandMatrix::from_vec(2, vec![0, 10, 20, 0]);
        assert_eq!(m.row_sums(), vec![10, 20]);
        assert_eq!(m.col_sums(), vec![20, 10]);
        assert_eq!(m.max_entry(), Some((1, 0, 20)));
        assert_eq!(m.total(), 30);
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let m = DemandMatrix::from_vec(2, vec![0, 5, 0, 0]);
        let nz: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(nz, vec![(0, 1, 5)]);
    }

    #[test]
    fn l1_distance_is_symmetric() {
        let a = DemandMatrix::from_vec(2, vec![0, 10, 5, 0]);
        let b = DemandMatrix::from_vec(2, vec![0, 4, 9, 0]);
        assert_eq!(a.l1_distance(&b), 10);
        assert_eq!(b.l1_distance(&a), 10);
        assert_eq!(a.l1_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "need n² entries")]
    fn wrong_size_rejected() {
        DemandMatrix::from_vec(3, vec![0; 8]);
    }

    /// The tracked support must hold every non-zero cell (superset
    /// invariant) under every sparse write path.
    fn assert_support_covers(m: &DemandMatrix) {
        // BTreeSet: a failure message that walks the set prints cells
        // in index order on every run, and the determinism contract
        // bans random-state hash collections in core outright.
        let support: std::collections::BTreeSet<u32> =
            m.support().expect("tracked").iter().copied().collect();
        for (idx, &v) in m.as_slice().iter().enumerate() {
            if v > 0 {
                assert!(support.contains(&(idx as u32)), "cell {idx} untracked");
            }
        }
    }

    #[test]
    fn tracked_support_covers_nonzeros_and_compacts_exactly() {
        let mut m = DemandMatrix::zero_tracked(4);
        m.set(0, 1, 100);
        m.add(2, 3, 50);
        m.set_cell(5, 7); // (1, 1)
        m.sub(2, 3, 50); // back to zero: stays in the superset
        assert_support_covers(&m);
        assert_eq!(
            m.support().unwrap().len(),
            3,
            "superset keeps the stale cell"
        );
        m.compact_support();
        let mut exact: Vec<u32> = m.support().unwrap().to_vec();
        exact.sort_unstable();
        assert_eq!(exact, vec![1, 5], "compaction drops the zeroed cell");
        // Re-adding a compacted-away cell re-tracks it.
        m.add(2, 3, 7);
        assert_support_covers(&m);
    }

    #[test]
    fn clear_sparse_equals_dense_clear() {
        let mut m = DemandMatrix::zero_tracked(3);
        m.set(0, 1, 10);
        m.set(2, 2, 20);
        m.clear_sparse();
        assert!(m.is_zero());
        assert!(m.support().unwrap().is_empty());
        // Writes after the sparse clear re-track.
        m.set(1, 0, 5);
        assert_support_covers(&m);
        assert_eq!(m.support().unwrap(), &[3]);
    }

    #[test]
    fn tracking_is_invisible_to_equality() {
        let mut a = DemandMatrix::zero_tracked(2);
        let mut b = DemandMatrix::zero(2);
        a.set(0, 1, 9);
        b.set(0, 1, 9);
        assert_eq!(a, b);
        a.track_support(); // idempotent
        assert_eq!(a, b);
    }

    #[test]
    fn dense_overwrites_rebuild_the_tracker() {
        let mut m = DemandMatrix::zero_tracked(2);
        m.set(0, 0, 1);
        m.copy_from_slice(&[0, 4, 0, 8]);
        assert_support_covers(&m);
        let mut cells: Vec<u32> = m.support().unwrap().to_vec();
        cells.sort_unstable();
        assert_eq!(cells, vec![1, 3]);
        m.fill_from([7, 0, 0, 0].into_iter());
        assert_support_covers(&m);
        assert_eq!(m.support().unwrap(), &[0]);
        let other = DemandMatrix::from_vec(2, vec![0, 0, 3, 0]);
        m.copy_from(&other);
        assert_support_covers(&m);
        assert_eq!(m.support().unwrap(), &[2]);
        // Dense clear resets the tracker too.
        m.clear();
        assert!(m.support().unwrap().is_empty());
        assert_support_covers(&m);
    }

    #[test]
    fn untracked_matrices_report_no_support() {
        let mut m = DemandMatrix::zero(2);
        m.set(0, 1, 3);
        assert!(m.support().is_none());
        m.compact_support(); // no-ops, no panic
        m.clear_sparse(); // falls back to dense clear
        assert!(m.is_zero());
    }
}
