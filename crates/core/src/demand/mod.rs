//! Demand matrices, scheduling requests, and demand estimators.
//!
//! Figure 2: "As the status of a VOQ changes, the subsystem generates
//! scheduling requests … The scheduling logic processes the incoming
//! requests, estimates the demand matrix, and runs the scheduling
//! algorithm."

mod estimators;

pub use estimators::{
    CountMinEstimator, DemandEstimator, EwmaEstimator, MirrorEstimator, WindowEstimator,
};

use xds_sim::SimTime;

/// An `n × n` matrix of demanded bytes from each input to each output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemandMatrix {
    n: usize,
    bytes: Vec<u64>,
}

impl DemandMatrix {
    /// The zero matrix over `n` ports.
    pub fn zero(n: usize) -> Self {
        assert!(n > 0, "demand matrix needs at least one port");
        DemandMatrix {
            n,
            bytes: vec![0; n * n],
        }
    }

    /// Builds from a row-major byte vector.
    pub fn from_vec(n: usize, bytes: Vec<u64>) -> Self {
        assert_eq!(bytes.len(), n * n, "need n² entries");
        DemandMatrix { n, bytes }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The demand from `src` to `dst` in bytes.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Sets the demand for a pair.
    pub fn set(&mut self, src: usize, dst: usize, bytes: u64) {
        self.bytes[src * self.n + dst] = bytes;
    }

    /// Adds demand to a pair (saturating).
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        let e = &mut self.bytes[src * self.n + dst];
        *e = e.saturating_add(bytes);
    }

    /// Subtracts served bytes from a pair (saturating).
    pub fn sub(&mut self, src: usize, dst: usize, bytes: u64) {
        let e = &mut self.bytes[src * self.n + dst];
        *e = e.saturating_sub(bytes);
    }

    /// Zeroes every entry in place (scratch-buffer reuse: the hot path
    /// rebuilds demand and occupancy every epoch and must not reallocate
    /// the `n²` backing store each time).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }

    /// Overwrites `self` with `other`'s entries, reusing the allocation.
    ///
    /// # Panics
    /// Panics if the port counts differ.
    pub fn copy_from(&mut self, other: &DemandMatrix) {
        assert_eq!(self.n, other.n, "matrix sizes differ");
        self.bytes.copy_from_slice(&other.bytes);
    }

    /// Overwrites every entry from a row-major slice (the incremental-
    /// occupancy fast path).
    ///
    /// # Panics
    /// Panics if the slice is not exactly `n²` long.
    pub fn copy_from_slice(&mut self, src: &[u64]) {
        assert_eq!(src.len(), self.n * self.n, "need n² entries");
        self.bytes.copy_from_slice(src);
    }

    /// Overwrites every entry from a row-major iterator (the strided
    /// gather the VOQ bank uses when occupancy lives inside per-pair
    /// records rather than a dense array).
    ///
    /// # Panics
    /// Panics if the iterator does not yield exactly `n²` entries.
    pub fn fill_from(&mut self, src: impl Iterator<Item = u64>) {
        let mut wrote = 0;
        for v in src {
            assert!(wrote < self.bytes.len(), "more than n² entries");
            self.bytes[wrote] = v;
            wrote += 1;
        }
        assert_eq!(wrote, self.n * self.n, "need n² entries");
    }

    /// The row-major backing store (read-only view for flat iteration).
    pub fn as_slice(&self) -> &[u64] {
        &self.bytes
    }

    /// Writes one cell by row-major flat index (sparse-update fast path).
    pub fn set_cell(&mut self, idx: usize, bytes: u64) {
        self.bytes[idx] = bytes;
    }

    /// Zeroes one cell by row-major flat index.
    pub fn clear_cell(&mut self, idx: usize) {
        self.bytes[idx] = 0;
    }

    /// Total demanded bytes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// True when all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    /// The largest entry and its pair, or `None` when zero.
    pub fn max_entry(&self) -> Option<(usize, usize, u64)> {
        let (idx, &v) = self
            .bytes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .expect("non-empty");
        if v == 0 {
            None
        } else {
            Some((idx / self.n, idx % self.n, v))
        }
    }

    /// Row sums (per-source demanded bytes).
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.n)
            .map(|s| (0..self.n).map(|d| self.get(s, d)).sum())
            .collect()
    }

    /// Column sums (per-destination demanded bytes).
    pub fn col_sums(&self) -> Vec<u64> {
        (0..self.n)
            .map(|d| (0..self.n).map(|s| self.get(s, d)).sum())
            .collect()
    }

    /// Iterates non-zero entries as `(src, dst, bytes)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.bytes
            .iter()
            .enumerate()
            .filter_map(move |(i, &b)| (b > 0).then_some((i / self.n, i % self.n, b)))
    }

    /// Sum of absolute differences against another matrix (estimation
    /// error metric for E6).
    pub fn l1_distance(&self, other: &DemandMatrix) -> u64 {
        assert_eq!(self.n, other.n, "matrix sizes differ");
        self.bytes
            .iter()
            .zip(other.bytes.iter())
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }

    /// `(l1_distance(truth), truth.total())` in one pass — the epoch
    /// loop's demand-error sample, fused so the truth matrix is walked
    /// once instead of twice.
    pub fn error_vs(&self, truth: &DemandMatrix) -> (u64, u64) {
        assert_eq!(self.n, truth.n, "matrix sizes differ");
        let mut l1 = 0u64;
        let mut total = 0u64;
        for (&a, &b) in self.bytes.iter().zip(truth.bytes.iter()) {
            l1 += a.abs_diff(b);
            total += b;
        }
        (l1, total)
    }
}

/// A scheduling request: the VOQ-status report the processing logic sends
/// when a VOQ changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedRequest {
    /// Input port.
    pub src: usize,
    /// Output port.
    pub dst: usize,
    /// Bytes currently queued in the VOQ.
    pub queued_bytes: u64,
    /// Cumulative bytes ever enqueued to the VOQ (lets rate estimators see
    /// arrivals even when the queue drains).
    pub arrived_bytes_total: u64,
    /// When the report was generated.
    pub at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_is_zero() {
        let m = DemandMatrix::zero(4);
        assert!(m.is_zero());
        assert_eq!(m.total(), 0);
        assert_eq!(m.max_entry(), None);
    }

    #[test]
    fn get_set_add_sub() {
        let mut m = DemandMatrix::zero(3);
        m.set(0, 1, 100);
        m.add(0, 1, 50);
        m.sub(0, 1, 30);
        assert_eq!(m.get(0, 1), 120);
        m.sub(0, 1, 1000);
        assert_eq!(m.get(0, 1), 0, "sub saturates");
        m.add(2, 0, u64::MAX);
        m.add(2, 0, 1);
        assert_eq!(m.get(2, 0), u64::MAX, "add saturates");
    }

    #[test]
    fn sums_and_max() {
        let m = DemandMatrix::from_vec(2, vec![0, 10, 20, 0]);
        assert_eq!(m.row_sums(), vec![10, 20]);
        assert_eq!(m.col_sums(), vec![20, 10]);
        assert_eq!(m.max_entry(), Some((1, 0, 20)));
        assert_eq!(m.total(), 30);
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let m = DemandMatrix::from_vec(2, vec![0, 5, 0, 0]);
        let nz: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(nz, vec![(0, 1, 5)]);
    }

    #[test]
    fn l1_distance_is_symmetric() {
        let a = DemandMatrix::from_vec(2, vec![0, 10, 5, 0]);
        let b = DemandMatrix::from_vec(2, vec![0, 4, 9, 0]);
        assert_eq!(a.l1_distance(&b), 10);
        assert_eq!(b.l1_distance(&a), 10);
        assert_eq!(a.l1_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "need n² entries")]
    fn wrong_size_rejected() {
        DemandMatrix::from_vec(3, vec![0; 8]);
    }
}
