//! Demand estimators: from scheduling requests to a demand matrix.
//!
//! "Allowing quick demand estimation" is one of the three advantages §2
//! claims for hardware scheduling; experiment E6 compares these estimators
//! under a shifting hotspot. Each estimator answers the same question —
//! *how many bytes will pair (s, d) want in the next epoch?* — from the
//! stream of [`SchedRequest`]s:
//!
//! * [`MirrorEstimator`] — trust the latest queued-bytes report
//!   (instantaneous occupancy; what iSLIP-class schedulers use);
//! * [`EwmaEstimator`] — exponentially weighted arrival rate × epoch;
//! * [`WindowEstimator`] — arrivals in a sliding window, rescaled to the
//!   epoch;
//! * [`CountMinEstimator`] — a count-min sketch over arrivals, the
//!   hardware-friendly sublinear-memory option (hash collisions
//!   overestimate — the E6 trade-off).

use xds_sim::{SimDuration, SimTime};

use super::{DemandMatrix, SchedRequest};

/// A pluggable demand estimator.
pub trait DemandEstimator: Send {
    /// Short name for tables.
    fn name(&self) -> &'static str;

    /// Ingests one VOQ status report.
    fn on_request(&mut self, req: &SchedRequest);

    /// Produces the demand estimate for the epoch starting at `now`.
    fn estimate(&mut self, now: SimTime, epoch: SimDuration) -> DemandMatrix;

    /// Writes the estimate into a caller-owned matrix, overwriting every
    /// cell — the allocation-free form the runtime's epoch loop uses (the
    /// output buffer is reused across epochs). The default falls back to
    /// [`estimate`](Self::estimate); the shipped estimators override it
    /// to fill in place.
    fn estimate_into(&mut self, now: SimTime, epoch: SimDuration, out: &mut DemandMatrix) {
        *out = self.estimate(now, epoch);
    }

    /// True when this estimator's output provably equals the true VOQ
    /// occupancy at every estimation instant (every occupancy change
    /// generates a request, and the estimate is the latest reports
    /// verbatim). The runtime then skips the `n²` ground-truth snapshot
    /// and L1 pass per epoch — the demand error is identically zero.
    /// Only return `true` when exactness holds by construction.
    fn mirrors_occupancy(&self) -> bool {
        false
    }

    /// A borrowed view of the estimate when it is already materialized
    /// inside the estimator (the mirror's incrementally-maintained
    /// occupancy). The runtime's epoch loop feeds this straight to the
    /// scheduler, skipping the per-epoch `n²` copy into its scratch
    /// matrix — at 256 ports that copy was half a megabyte per epoch.
    /// Must return `Some` only when the borrowed matrix equals what
    /// [`estimate_into`](Self::estimate_into) would have produced.
    fn estimate_ref(&mut self, _now: SimTime, _epoch: SimDuration) -> Option<&DemandMatrix> {
        None
    }
}

// ---------------------------------------------------------------------
// Mirror (instantaneous occupancy)
// ---------------------------------------------------------------------

/// Mirrors the latest reported VOQ occupancy.
#[derive(Debug, Clone)]
pub struct MirrorEstimator {
    occupancy: DemandMatrix,
}

impl MirrorEstimator {
    /// Creates a mirror over `n` ports. The occupancy matrix tracks its
    /// support: schedulers borrowing it via
    /// [`estimate_ref`](DemandEstimator::estimate_ref) get the non-zero
    /// worklist for free instead of re-scanning `n²` cells per epoch.
    pub fn new(n: usize) -> Self {
        MirrorEstimator {
            occupancy: DemandMatrix::zero_tracked(n),
        }
    }
}

impl DemandEstimator for MirrorEstimator {
    fn name(&self) -> &'static str {
        "mirror"
    }

    fn on_request(&mut self, req: &SchedRequest) {
        self.occupancy.set(req.src, req.dst, req.queued_bytes);
    }

    fn estimate(&mut self, _now: SimTime, _epoch: SimDuration) -> DemandMatrix {
        self.occupancy.clone()
    }

    fn estimate_into(&mut self, _now: SimTime, _epoch: SimDuration, out: &mut DemandMatrix) {
        out.copy_from(&self.occupancy);
    }

    fn mirrors_occupancy(&self) -> bool {
        true
    }

    fn estimate_ref(&mut self, _now: SimTime, _epoch: SimDuration) -> Option<&DemandMatrix> {
        // The mirror *is* the estimate: hand the scheduler the
        // incrementally-maintained matrix instead of copying it. Compact
        // first so the lent support is exact — drained VOQs would
        // otherwise accumulate as stale worklist entries across epochs.
        self.occupancy.compact_support();
        Some(&self.occupancy)
    }
}

// ---------------------------------------------------------------------
// EWMA rate
// ---------------------------------------------------------------------

/// Exponentially weighted moving average of per-pair arrival rates.
#[derive(Debug, Clone)]
pub struct EwmaEstimator {
    n: usize,
    alpha: f64,
    /// Smoothed rate in bytes/sec per pair.
    rate: Vec<f64>,
    /// Last seen cumulative arrivals per pair.
    last_total: Vec<u64>,
    /// Last update time per pair.
    last_at: Vec<SimTime>,
    /// Pairs whose smoothed rate is non-zero — the only cells
    /// [`estimate_into`](DemandEstimator::estimate_into) must visit (an
    /// EWMA decays multiplicatively, so a pair goes active at its first
    /// arrival and stays; every other cell reads an exact zero).
    active: Vec<u32>,
    active_member: Vec<bool>,
}

impl EwmaEstimator {
    /// Creates an estimator with smoothing factor `alpha ∈ (0, 1]`
    /// (higher = more reactive).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaEstimator {
            n,
            alpha,
            rate: vec![0.0; n * n],
            last_total: vec![0; n * n],
            last_at: vec![SimTime::ZERO; n * n],
            active: Vec::new(),
            active_member: vec![false; n * n],
        }
    }
}

impl DemandEstimator for EwmaEstimator {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn on_request(&mut self, req: &SchedRequest) {
        let idx = req.src * self.n + req.dst;
        let dt = req.at.saturating_since(self.last_at[idx]).as_secs_f64();
        if dt <= 0.0 {
            // Multiple reports at the same instant: fold the arrival delta
            // in when time advances.
            return;
        }
        let delta = req.arrived_bytes_total.saturating_sub(self.last_total[idx]);
        let inst_rate = delta as f64 / dt;
        self.rate[idx] = self.alpha * inst_rate + (1.0 - self.alpha) * self.rate[idx];
        self.last_total[idx] = req.arrived_bytes_total;
        self.last_at[idx] = req.at;
        if self.rate[idx] > 0.0 && !self.active_member[idx] {
            self.active_member[idx] = true;
            self.active.push(idx as u32);
        }
    }

    fn estimate(&mut self, now: SimTime, epoch: SimDuration) -> DemandMatrix {
        let mut m = DemandMatrix::zero(self.n);
        self.estimate_into(now, epoch, &mut m);
        m
    }

    fn estimate_into(&mut self, _now: SimTime, epoch: SimDuration, out: &mut DemandMatrix) {
        let secs = epoch.as_secs_f64();
        // Inactive pairs hold an exact zero rate: clearing then filling
        // only the active worklist writes the same matrix the dense
        // `n²` double loop produced.
        out.clear_sparse();
        for &idx in &self.active {
            let bytes = self.rate[idx as usize] * secs;
            if bytes >= 1.0 {
                out.set_cell(idx as usize, bytes as u64);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sliding window
// ---------------------------------------------------------------------

/// Arrivals within a sliding window, rescaled to the epoch length.
#[derive(Debug, Clone)]
pub struct WindowEstimator {
    n: usize,
    window: SimDuration,
    /// `(time, src, dst, bytes)` arrival deltas inside the window.
    events: std::collections::VecDeque<(SimTime, usize, usize, u64)>,
    last_total: Vec<u64>,
    /// Scratch: distinct pairs touched by the current window (rescale
    /// visits each once instead of walking `n²` cells).
    touched: Vec<u32>,
}

impl WindowEstimator {
    /// Creates an estimator summing arrivals over `window`.
    pub fn new(n: usize, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowEstimator {
            n,
            window,
            events: std::collections::VecDeque::new(),
            last_total: vec![0; n * n],
            touched: Vec::new(),
        }
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.as_nanos().saturating_sub(self.window.as_nanos());
        while let Some(&(t, ..)) = self.events.front() {
            if t.as_nanos() < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }
}

impl DemandEstimator for WindowEstimator {
    fn name(&self) -> &'static str {
        "window"
    }

    fn on_request(&mut self, req: &SchedRequest) {
        let idx = req.src * self.n + req.dst;
        let delta = req.arrived_bytes_total.saturating_sub(self.last_total[idx]);
        self.last_total[idx] = req.arrived_bytes_total;
        if delta > 0 {
            self.events.push_back((req.at, req.src, req.dst, delta));
        }
    }

    fn estimate(&mut self, now: SimTime, epoch: SimDuration) -> DemandMatrix {
        let mut m = DemandMatrix::zero(self.n);
        self.estimate_into(now, epoch, &mut m);
        m
    }

    fn estimate_into(&mut self, now: SimTime, epoch: SimDuration, out: &mut DemandMatrix) {
        self.evict(now);
        out.clear_sparse();
        self.touched.clear();
        for &(_, s, d, b) in &self.events {
            let idx = s * self.n + d;
            // First touch of a pair (the matrix was just cleared, so a
            // zero cell means unseen): the worklist collects each
            // distinct pair once, already deduplicated.
            if out.as_slice()[idx] == 0 {
                self.touched.push(idx as u32);
            }
            out.add(s, d, b);
        }
        // Rescale window bytes to the epoch horizon — each distinct
        // touched pair exactly once (every other cell is zero).
        let scale = epoch.as_secs_f64() / self.window.as_secs_f64();
        if (scale - 1.0).abs() > 1e-9 {
            for &idx in &self.touched {
                let b = out.as_slice()[idx as usize];
                out.set_cell(idx as usize, (b as f64 * scale) as u64);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Count-min sketch
// ---------------------------------------------------------------------

/// A count-min sketch over arrival bytes with periodic halving (decay).
///
/// Hardware rationale: `d × w` counters instead of `n²` — at 256 ports a
/// full matrix needs 65 536 counters while a 4×1024 sketch needs 4 096.
/// The price is overestimation on hash collisions.
#[derive(Debug, Clone)]
pub struct CountMinEstimator {
    n: usize,
    width: usize,
    depth: usize,
    counters: Vec<u64>,
    last_total: Vec<u64>,
    /// Halve all counters when `now - last_decay` exceeds this.
    decay_every: SimDuration,
    last_decay: SimTime,
}

impl CountMinEstimator {
    /// Creates a `depth × width` sketch decayed every `decay_every`.
    pub fn new(n: usize, depth: usize, width: usize, decay_every: SimDuration) -> Self {
        assert!(
            depth >= 1 && width >= 1,
            "sketch dimensions must be positive"
        );
        CountMinEstimator {
            n,
            width,
            depth,
            counters: vec![0; depth * width],
            last_total: vec![0; n * n],
            decay_every,
            last_decay: SimTime::ZERO,
        }
    }

    fn hash(&self, row: usize, s: usize, d: usize) -> usize {
        // Split-mix style per-row hashing of the pair index.
        let mut x = (s * self.n + d) as u64 ^ (row as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) as usize % self.width
    }

    fn maybe_decay(&mut self, now: SimTime) {
        while now.saturating_since(self.last_decay) >= self.decay_every {
            for c in &mut self.counters {
                *c /= 2;
            }
            self.last_decay += self.decay_every;
        }
    }

    fn point_query(&self, s: usize, d: usize) -> u64 {
        (0..self.depth)
            .map(|r| self.counters[r * self.width + self.hash(r, s, d)])
            .min()
            .unwrap_or(0)
    }
}

impl DemandEstimator for CountMinEstimator {
    fn name(&self) -> &'static str {
        "countmin"
    }

    fn on_request(&mut self, req: &SchedRequest) {
        self.maybe_decay(req.at);
        let idx = req.src * self.n + req.dst;
        let delta = req.arrived_bytes_total.saturating_sub(self.last_total[idx]);
        self.last_total[idx] = req.arrived_bytes_total;
        if delta == 0 {
            return;
        }
        for r in 0..self.depth {
            let h = self.hash(r, req.src, req.dst);
            let c = &mut self.counters[r * self.width + h];
            *c = c.saturating_add(delta);
        }
    }

    fn estimate(&mut self, now: SimTime, epoch: SimDuration) -> DemandMatrix {
        let mut m = DemandMatrix::zero(self.n);
        self.estimate_into(now, epoch, &mut m);
        m
    }

    fn estimate_into(&mut self, now: SimTime, _epoch: SimDuration, out: &mut DemandMatrix) {
        self.maybe_decay(now);
        // Deliberately dense: a sketch has no per-pair state, and a pair
        // that never saw traffic can still read non-zero when its hashes
        // collide with hot counters in every row — materializing the
        // estimate *is* `n²` point queries. (The sparse epoch interface
        // covers the estimators whose zero cells are exact.)
        for s in 0..self.n {
            for d in 0..self.n {
                let v = if s != d { self.point_query(s, d) } else { 0 };
                out.set(s, d, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(src: usize, dst: usize, queued: u64, total: u64, at_us: u64) -> SchedRequest {
        SchedRequest {
            src,
            dst,
            queued_bytes: queued,
            arrived_bytes_total: total,
            at: SimTime::from_micros(at_us),
        }
    }

    #[test]
    fn mirror_tracks_latest_report() {
        let mut e = MirrorEstimator::new(4);
        e.on_request(&req(0, 1, 5_000, 5_000, 1));
        e.on_request(&req(0, 1, 2_000, 7_000, 2));
        let m = e.estimate(SimTime::from_micros(3), SimDuration::from_micros(10));
        assert_eq!(m.get(0, 1), 2_000);
        assert_eq!(m.get(1, 0), 0);
    }

    #[test]
    fn ewma_converges_to_steady_rate() {
        let mut e = EwmaEstimator::new(2, 0.3);
        // 1000 bytes every 10 µs = 100 MB/s.
        let mut total = 0;
        for k in 1..200u64 {
            total += 1000;
            e.on_request(&req(0, 1, 0, total, 10 * k));
        }
        // Over a 10 µs epoch, expect ≈1000 bytes.
        let m = e.estimate(SimTime::from_micros(2000), SimDuration::from_micros(10));
        let est = m.get(0, 1);
        assert!((800..=1200).contains(&est), "ewma estimate {est}");
    }

    #[test]
    fn ewma_adapts_when_traffic_stops() {
        let mut e = EwmaEstimator::new(2, 0.5);
        let mut total = 0;
        for k in 1..50u64 {
            total += 1000;
            e.on_request(&req(0, 1, 0, total, 10 * k));
        }
        let before = e
            .estimate(SimTime::from_micros(500), SimDuration::from_micros(10))
            .get(0, 1);
        // Silence: totals stop growing.
        for k in 50..100u64 {
            e.on_request(&req(0, 1, 0, total, 10 * k));
        }
        let after = e
            .estimate(SimTime::from_micros(1000), SimDuration::from_micros(10))
            .get(0, 1);
        assert!(
            after < before / 10,
            "rate should decay: {before} -> {after}"
        );
    }

    #[test]
    fn window_sums_and_evicts() {
        let mut e = WindowEstimator::new(2, SimDuration::from_micros(100));
        e.on_request(&req(0, 1, 0, 1_000, 10));
        e.on_request(&req(0, 1, 0, 3_000, 50));
        // Window == epoch → no rescale.
        let m = e.estimate(SimTime::from_micros(60), SimDuration::from_micros(100));
        assert_eq!(m.get(0, 1), 3_000);
        // At t=130 µs the first event (t=10 µs) has left the 100 µs window
        // but the second (t=50 µs) remains.
        let m2 = e.estimate(SimTime::from_micros(130), SimDuration::from_micros(100));
        assert_eq!(m2.get(0, 1), 2_000);
        // Far later, everything ages out.
        let m3 = e.estimate(SimTime::from_micros(400), SimDuration::from_micros(100));
        assert_eq!(m3.get(0, 1), 0);
    }

    #[test]
    fn window_rescales_to_epoch() {
        let mut e = WindowEstimator::new(2, SimDuration::from_micros(100));
        e.on_request(&req(0, 1, 0, 1_000, 10));
        let m = e.estimate(SimTime::from_micros(20), SimDuration::from_micros(50));
        assert_eq!(m.get(0, 1), 500, "half-epoch rescale");
    }

    #[test]
    fn countmin_point_queries_are_overestimates() {
        let mut e = CountMinEstimator::new(8, 4, 64, SimDuration::from_secs(1));
        e.on_request(&req(0, 1, 0, 10_000, 1));
        e.on_request(&req(2, 3, 0, 5_000, 2));
        let m = e.estimate(SimTime::from_micros(3), SimDuration::from_micros(10));
        assert!(m.get(0, 1) >= 10_000, "never underestimates");
        assert!(m.get(2, 3) >= 5_000);
        // A pair with no traffic may collide, but with a 4×64 sketch and 2
        // flows it should read 0.
        assert_eq!(m.get(5, 6), 0);
    }

    #[test]
    fn countmin_decays() {
        let mut e = CountMinEstimator::new(4, 2, 32, SimDuration::from_micros(100));
        e.on_request(&req(0, 1, 0, 8_000, 1));
        let before = e
            .estimate(SimTime::from_micros(2), SimDuration::from_micros(10))
            .get(0, 1);
        let after = e
            .estimate(SimTime::from_micros(450), SimDuration::from_micros(10))
            .get(0, 1);
        assert_eq!(before, 8_000);
        assert!(after <= 8_000 / 16, "4 halvings expected, got {after}");
    }

    #[test]
    fn estimators_expose_names() {
        assert_eq!(MirrorEstimator::new(2).name(), "mirror");
        assert_eq!(EwmaEstimator::new(2, 0.5).name(), "ewma");
        assert_eq!(
            WindowEstimator::new(2, SimDuration::from_micros(1)).name(),
            "window"
        );
        assert_eq!(
            CountMinEstimator::new(2, 2, 16, SimDuration::from_secs(1)).name(),
            "countmin"
        );
    }
}
