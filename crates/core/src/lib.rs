//! # xds-core — the hybrid-switch scheduling framework (Figure 2)
//!
//! This crate is the paper's contribution: "a flexible framework for rapid
//! prototyping, exploration and evaluation of novel hybrid schedulers"
//! (§3), partitioned exactly as Figure 2 partitions it:
//!
//! * [`processing`] — **processing logic**: packets are classified and
//!   placed into Virtual Output Queues; VOQ status changes generate
//!   scheduling requests; transmission happens upon grants;
//! * [`demand`] + [`sched`] — **scheduling logic**: requests are folded
//!   into a demand estimate; a pluggable [`sched::Scheduler`] computes the
//!   switch configuration(s); grants go out;
//! * [`switching`] — **switching logic**: the grant matrix configures the
//!   OCS (which is dark while reconfiguring); residual traffic rides the
//!   EPS;
//! * [`node`] + [`runtime`] — the assembled testbed: an event-driven
//!   simulation of hosts, the hybrid ToR and the scheduler, in either
//!   **fast scheduling** (hardware scheduler, switch-buffered — Figure 1
//!   right) or **slow scheduling** (software scheduler, host-buffered,
//!   grant round-trips, clock skew — Figure 1 left) placement.
//!
//! "The users implement novel design in the scheduling logic module" — in
//! this reproduction, *users implement [`sched::Scheduler`]* and hand it to
//! the runtime; everything else is the constant (yet configurable)
//! infrastructure the paper describes. Nine schedulers ship in
//! [`sched`]: iSLIP, PIM, RRM, wavefront, greedy LQF, Hungarian, BvN/TMS,
//! Solstice-style greedy, c-Through-style hotspot, plus TDMA and EPS-only
//! baselines.

#![warn(missing_docs)]

pub mod config;
pub mod demand;
pub mod fault;
pub mod instrument;
pub mod node;
pub mod pool;
pub mod processing;
pub mod report;
pub mod runtime;
pub mod sched;
pub mod switching;
pub mod trace;

pub use config::{NodeConfig, Placement};
pub use demand::{DemandEstimator, DemandMatrix, SchedRequest};
pub use fault::{FaultPlan, LinkFaultSpec, MisfireSpec, StallSpec};
pub use instrument::{
    DeliveryPath, DeliveryRecord, DeliverySink, DropCause, DropSink, EpochProbe, EpochSample,
    InstrProfile, Instrumentation, SinkCtx,
};
pub use node::{MatrixCycle, Workload};
pub use pool::{PacketPool, PktFifo};
pub use report::{MetricValue, RunReport};
pub use runtime::{BuildError, HybridSim, ShardExec, ShardMap, SimBuilder};
pub use sched::{Schedule, ScheduleCtx, ScheduleEntry, Scheduler};
pub use trace::{validate_chrome_trace, SchedObs, SchedSpan, TraceRecorder, TraceSummary};
pub use xds_metrics::CounterSet;
