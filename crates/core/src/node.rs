//! Workload description for a testbed run.

use xds_sim::{SimDuration, SimTime};
use xds_traffic::{CbrApp, FlowGenerator, TrafficMatrix};

/// A rotating traffic-matrix schedule: every `period` the generator
/// switches to the next matrix in the cycle. Experiment E6 uses this to
/// move a hotspot and watch which demand estimators keep up.
#[derive(Debug, Clone)]
pub struct MatrixCycle {
    /// Rotation period.
    pub period: SimDuration,
    /// Matrices cycled through (wraps around).
    pub matrices: Vec<TrafficMatrix>,
}

/// What the hosts offer to the network during a run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Background/bulk flow generator (optional: an apps-only run is
    /// legal).
    pub flows: Option<FlowGenerator>,
    /// Interactive constant-bit-rate applications.
    pub apps: Vec<CbrApp>,
    /// Stop generating new flows after this instant (existing queues keep
    /// draining). `SimTime::MAX` means "for the whole run".
    pub flow_stop: SimTime,
    /// Optional mid-run traffic-matrix rotation.
    pub matrix_cycle: Option<MatrixCycle>,
}

impl Workload {
    /// A flows-only workload.
    pub fn flows(gen: FlowGenerator) -> Self {
        Workload {
            flows: Some(gen),
            apps: Vec::new(),
            flow_stop: SimTime::MAX,
            matrix_cycle: None,
        }
    }

    /// An apps-only workload (e.g. pure VOIP latency probes).
    pub fn apps_only(apps: Vec<CbrApp>) -> Self {
        Workload {
            flows: None,
            apps,
            flow_stop: SimTime::MAX,
            matrix_cycle: None,
        }
    }

    /// Rotates the generator's traffic matrix mid-run (builder style).
    pub fn with_matrix_cycle(mut self, period: SimDuration, matrices: Vec<TrafficMatrix>) -> Self {
        assert!(!matrices.is_empty(), "cycle needs at least one matrix");
        self.matrix_cycle = Some(MatrixCycle { period, matrices });
        self
    }

    /// Adds interactive apps (builder style).
    pub fn with_apps(mut self, apps: Vec<CbrApp>) -> Self {
        self.apps = apps;
        self
    }

    /// Caps flow generation (builder style).
    pub fn with_flow_stop(mut self, at: SimTime) -> Self {
        self.flow_stop = at;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_net::PortNo;
    use xds_sim::{BitRate, SimRng};
    use xds_traffic::{FlowSizeDist, TrafficMatrix};

    #[test]
    fn builders_compose() {
        let gen = FlowGenerator::with_load(
            TrafficMatrix::uniform(4),
            FlowSizeDist::Fixed(1000),
            0.5,
            BitRate::GBPS_10,
            SimRng::new(1),
        );
        let w = Workload::flows(gen)
            .with_apps(vec![CbrApp::voip(1, PortNo(0), PortNo(1), SimTime::ZERO)])
            .with_flow_stop(SimTime::from_millis(5));
        assert!(w.flows.is_some());
        assert_eq!(w.apps.len(), 1);
        assert_eq!(w.flow_stop, SimTime::from_millis(5));
        let a = Workload::apps_only(vec![]);
        assert!(a.flows.is_none());
    }
}
