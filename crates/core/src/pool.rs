//! The shared chunked packet pool: one slab of 4-packet chunks backing
//! any number of intrusive FIFOs.
//!
//! PR 2 introduced this layout inside the switch-side VOQ bank
//! ([`crate::processing::ProcessingLogic`]); here it is factored out so
//! the host-staging path (`q_inter`/`q_short`/`q_bulk` and the slow-mode
//! host VOQs in [`crate::runtime`]) shares the same discipline instead of
//! shuffling 40-byte [`Packet`] descriptors through per-queue
//! `VecDeque`s. A queue is a [`PktFifo`] — four integers naming a chunk
//! run inside the pool — so moving a packet touches one pool slot and one
//! compact header, enqueue order is preserved exactly, and freed chunks
//! recycle through a FIFO free list (runs freed together are reused
//! together, keeping traversals in allocation order).
//!
//! The pool tracks live packets and in-use chunks so callers can assert
//! **occupancy conservation** at epoch boundaries: every chunk is either
//! on the free list or reachable from exactly one FIFO, and a packet
//! dropped *before* admission never touches the pool (so it cannot leak
//! or double-free a chunk).

use xds_net::Packet;

const NIL: u32 = u32::MAX;

/// Packets per pool chunk: four 40-byte descriptors plus the link fit in
/// three cache lines, and a FIFO touches a new chunk only every fourth
/// packet.
pub const CHUNK_PKTS: usize = 4;

/// A pooled run of consecutive packets belonging to one FIFO, linked into
/// that FIFO's chunk list.
#[derive(Debug, Clone)]
struct Chunk {
    pkts: [Packet; CHUNK_PKTS],
    next: u32,
}

/// An intrusive FIFO of packets inside a [`PacketPool`]: chunk-list head
/// and tail plus the live offsets within them. Plain data — copying the
/// header without transferring ownership of the chunks is a logic error,
/// so it is deliberately not `Clone`/`Copy`.
#[derive(Debug)]
pub struct PktFifo {
    /// Chunk FIFO head/tail (`NIL` when empty).
    head: u32,
    tail: u32,
    /// First live packet within the head chunk.
    head_off: u8,
    /// Live packets within the tail chunk.
    tail_len: u8,
}

impl Default for PktFifo {
    fn default() -> Self {
        Self::new()
    }
}

impl PktFifo {
    /// An empty FIFO (owns no chunks).
    pub const fn new() -> Self {
        PktFifo {
            head: NIL,
            tail: NIL,
            head_off: 0,
            tail_len: 0,
        }
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.head == NIL
    }
}

/// The shared chunk slab plus its free list and conservation counters.
#[derive(Debug)]
pub struct PacketPool {
    chunks: Vec<Chunk>,
    /// Free chunks form a FIFO through `next`.
    free_head: u32,
    free_tail: u32,
    free_chunks: usize,
    live_pkts: u64,
    /// Always-on conservation accounting (plain u64 increments, kept in
    /// release builds): `allocs - frees == live_pkts` is the leak
    /// invariant [`check_conserved`](Self::check_conserved) enforces at
    /// end of run, and the peaks feed the flight-recorder counter
    /// registry.
    allocs: u64,
    frees: u64,
    live_peak: u64,
    chunk_growths: u64,
}

impl Default for PacketPool {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketPool {
    /// Creates an empty pool; chunks are allocated on demand and recycled
    /// forever after.
    pub fn new() -> Self {
        PacketPool {
            chunks: Vec::new(),
            free_head: NIL,
            free_tail: NIL,
            free_chunks: 0,
            live_pkts: 0,
            allocs: 0,
            frees: 0,
            live_peak: 0,
            chunk_growths: 0,
        }
    }

    /// Takes a chunk off the free FIFO (or grows the slab), seeding every
    /// slot with `p` (slot 0 is the live one; the rest are overwritten as
    /// the chunk fills).
    #[inline]
    fn alloc_chunk(&mut self, p: Packet) -> u32 {
        if self.free_head != NIL {
            let c = self.free_head;
            self.free_head = self.chunks[c as usize].next;
            if self.free_head == NIL {
                self.free_tail = NIL;
            }
            self.free_chunks -= 1;
            let chunk = &mut self.chunks[c as usize];
            chunk.pkts[0] = p;
            chunk.next = NIL;
            c
        } else {
            assert!(self.chunks.len() < NIL as usize, "packet pool overflow");
            self.chunk_growths += 1;
            self.chunks.push(Chunk {
                pkts: [p; CHUNK_PKTS],
                next: NIL,
            });
            (self.chunks.len() - 1) as u32
        }
    }

    /// Returns a chunk to the free FIFO. Every chunk is freed exactly
    /// once per use: only the dequeue paths below call this, always on a
    /// chunk they have just unlinked from a FIFO.
    #[inline]
    fn free_chunk(&mut self, c: u32) {
        self.chunks[c as usize].next = NIL;
        if self.free_tail == NIL {
            self.free_head = c;
        } else {
            self.chunks[self.free_tail as usize].next = c;
        }
        self.free_tail = c;
        self.free_chunks += 1;
    }

    /// Appends `p` to the back of `f`.
    #[inline]
    pub fn push(&mut self, f: &mut PktFifo, p: Packet) {
        if f.tail != NIL && (f.tail_len as usize) < CHUNK_PKTS {
            // Fast path: room in the tail chunk.
            self.chunks[f.tail as usize].pkts[f.tail_len as usize] = p;
            f.tail_len += 1;
        } else {
            let c = self.alloc_chunk(p);
            if f.tail == NIL {
                f.head = c;
                f.head_off = 0;
            } else {
                self.chunks[f.tail as usize].next = c;
            }
            f.tail = c;
            f.tail_len = 1;
        }
        self.live_pkts += 1;
        self.allocs += 1;
        if self.live_pkts > self.live_peak {
            self.live_peak = self.live_pkts;
        }
    }

    /// The packet at the front of `f`, if any.
    #[inline]
    pub fn front<'a>(&'a self, f: &PktFifo) -> Option<&'a Packet> {
        if f.head == NIL {
            return None;
        }
        Some(&self.chunks[f.head as usize].pkts[f.head_off as usize])
    }

    /// Removes and returns the front packet of `f`, releasing its chunk
    /// to the free list when the last live packet leaves it.
    #[inline]
    pub fn pop(&mut self, f: &mut PktFifo) -> Option<Packet> {
        if f.head == NIL {
            return None;
        }
        let head = f.head;
        let p = self.chunks[head as usize].pkts[f.head_off as usize];
        f.head_off += 1;
        self.live_pkts -= 1;
        self.frees += 1;
        let exhausted = if f.head == f.tail {
            f.head_off == f.tail_len
        } else {
            f.head_off as usize == CHUNK_PKTS
        };
        if exhausted {
            let next = self.chunks[head as usize].next;
            self.free_chunk(head);
            if f.head == f.tail {
                *f = PktFifo::new();
            } else {
                f.head = next;
                f.head_off = 0;
            }
        }
        Some(p)
    }

    /// Dequeues packets from the front of `f` while their cumulative size
    /// fits within `budget_bytes`, appending them to `out`. Returns the
    /// bytes drained (grant execution's budgeted dequeue, kept here so
    /// the chunk walk stays inside the pool).
    pub fn drain_budget_into(
        &mut self,
        f: &mut PktFifo,
        budget_bytes: u64,
        out: &mut Vec<Packet>,
    ) -> u64 {
        let mut head = f.head;
        if head == NIL {
            return 0;
        }
        let mut off = f.head_off;
        let tail = f.tail;
        let tail_len = f.tail_len;
        let mut used = 0u64;
        'drain: while head != NIL {
            let limit = if head == tail {
                tail_len
            } else {
                CHUNK_PKTS as u8
            };
            while off < limit {
                let pkt = self.chunks[head as usize].pkts[off as usize];
                let b = pkt.bytes as u64;
                if used + b > budget_bytes {
                    break 'drain;
                }
                used += b;
                self.live_pkts -= 1;
                self.frees += 1;
                out.push(pkt);
                off += 1;
            }
            if head == tail {
                // Tail chunk exhausted: the FIFO is empty.
                if off == tail_len {
                    self.free_chunk(head);
                    head = NIL;
                    off = 0;
                }
                break;
            }
            let next = self.chunks[head as usize].next;
            self.free_chunk(head);
            head = next;
            off = 0;
        }
        f.head = head;
        f.head_off = off;
        if head == NIL {
            f.tail = NIL;
            f.tail_len = 0;
        }
        used
    }

    /// Packets currently queued across every FIFO backed by this pool.
    pub fn live_packets(&self) -> u64 {
        self.live_pkts
    }

    /// Chunks currently reachable from some FIFO (not on the free list).
    pub fn chunks_in_use(&self) -> usize {
        self.chunks.len() - self.free_chunks
    }

    /// Packets ever pushed into this pool.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Packets ever popped/drained out of this pool.
    pub fn free_count(&self) -> u64 {
        self.frees
    }

    /// High-water mark of simultaneously live packets.
    pub fn live_peak(&self) -> u64 {
        self.live_peak
    }

    /// Slab growth events (a chunk allocated because the free list was
    /// empty).
    pub fn chunk_growth_count(&self) -> u64 {
        self.chunk_growths
    }

    /// The always-on end-of-run leak check: verifies the alloc/free
    /// ledger balances against the live count, and that chunk occupancy
    /// bounds hold. Unlike
    /// [`debug_assert_conserved`](Self::debug_assert_conserved) this
    /// runs (and fails) in release builds too — a leak must error the
    /// run, not silently pass once debug assertions compile out. Returns
    /// a one-line description of the first violated invariant.
    pub fn check_conserved(&self) -> Result<(), String> {
        if self.allocs.checked_sub(self.frees) != Some(self.live_pkts) {
            return Err(format!(
                "packet pool leak: {} allocs - {} frees != {} live packets",
                self.allocs, self.frees, self.live_pkts
            ));
        }
        let in_use = self.chunks_in_use() as u64;
        if !(in_use <= self.live_pkts && self.live_pkts <= in_use * CHUNK_PKTS as u64) {
            return Err(format!(
                "packet pool occupancy violated: {} live packets across {in_use} in-use chunks",
                self.live_pkts
            ));
        }
        if self.live_pkts == 0 && in_use != 0 {
            return Err(format!(
                "packet pool leak: {in_use} chunks in use with zero live packets"
            ));
        }
        Ok(())
    }

    /// Debug-asserts occupancy conservation: every in-use chunk holds
    /// between one and [`CHUNK_PKTS`] live packets, and an empty pool has
    /// released every chunk to the free list. A chunk freed twice (or a
    /// drop path that forgot to release one) breaks these bounds. Called
    /// by the runtime once per scheduler epoch; compiles to nothing in
    /// release builds.
    #[inline]
    pub fn debug_assert_conserved(&self) {
        let in_use = self.chunks_in_use() as u64;
        debug_assert!(
            in_use <= self.live_pkts && self.live_pkts <= in_use * CHUNK_PKTS as u64,
            "pool occupancy violated: {} live packets across {} in-use chunks",
            self.live_pkts,
            in_use,
        );
        debug_assert!(
            self.live_pkts > 0 || in_use == 0,
            "pool leak: {in_use} chunks in use with zero live packets",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_net::{PortNo, TrafficClass};
    use xds_sim::SimTime;

    fn pkt(id: u64, bytes: u32) -> Packet {
        Packet::new(
            id,
            id,
            PortNo(0),
            PortNo(1),
            bytes,
            TrafficClass::Bulk,
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn fifo_order_across_chunk_boundaries() {
        let mut pool = PacketPool::new();
        let mut f = PktFifo::new();
        for i in 0..11 {
            pool.push(&mut f, pkt(i, 100));
        }
        assert_eq!(pool.live_packets(), 11);
        assert_eq!(pool.chunks_in_use(), 3);
        for i in 0..11 {
            assert_eq!(pool.front(&f).unwrap().id.0, i);
            assert_eq!(pool.pop(&mut f).unwrap().id.0, i);
        }
        assert!(pool.pop(&mut f).is_none());
        assert!(f.is_empty());
        pool.debug_assert_conserved();
        assert_eq!(pool.chunks_in_use(), 0, "all chunks back on the free list");
    }

    #[test]
    fn chunks_are_recycled_not_grown() {
        let mut pool = PacketPool::new();
        let mut f = PktFifo::new();
        for round in 0..5u64 {
            for i in 0..8 {
                pool.push(&mut f, pkt(round * 8 + i, 64));
            }
            while pool.pop(&mut f).is_some() {}
        }
        assert_eq!(pool.chunks.len(), 2, "slab stays at peak footprint");
        pool.debug_assert_conserved();
    }

    #[test]
    fn interleaved_fifos_do_not_cross_talk() {
        let mut pool = PacketPool::new();
        let mut a = PktFifo::new();
        let mut b = PktFifo::new();
        for i in 0..6 {
            pool.push(&mut a, pkt(i, 10));
            pool.push(&mut b, pkt(100 + i, 10));
        }
        for i in 0..6 {
            assert_eq!(pool.pop(&mut a).unwrap().id.0, i);
            assert_eq!(pool.pop(&mut b).unwrap().id.0, 100 + i);
        }
        pool.debug_assert_conserved();
    }

    #[test]
    fn conservation_ledger_balances_and_catches_leaks() {
        let mut pool = PacketPool::new();
        let mut f = PktFifo::new();
        pool.check_conserved().expect("empty pool conserves");
        for i in 0..9 {
            pool.push(&mut f, pkt(i, 100));
        }
        assert_eq!(pool.alloc_count(), 9);
        assert_eq!(pool.live_peak(), 9);
        assert_eq!(pool.chunk_growth_count(), 3, "9 packets = 3 fresh chunks");
        pool.check_conserved().expect("mid-run ledger balances");
        let mut out = Vec::new();
        pool.drain_budget_into(&mut f, u64::MAX, &mut out);
        assert_eq!(pool.free_count(), 9);
        assert_eq!(pool.live_peak(), 9, "peak survives the drain");
        pool.check_conserved().expect("drained pool conserves");
        // Re-fill reuses chunks: growth count must not move.
        for i in 0..9 {
            pool.push(&mut f, pkt(i, 100));
        }
        assert_eq!(pool.chunk_growth_count(), 3);
        assert_eq!(pool.live_peak(), 9);
        // A cooked ledger is reported, not silently accepted.
        let mut bad = PacketPool::new();
        let mut g = PktFifo::new();
        bad.push(&mut g, pkt(0, 10));
        bad.frees = 1; // simulate a free the live count never saw
        let err = bad.check_conserved().unwrap_err();
        assert!(err.contains("leak"), "{err}");
    }

    #[test]
    fn drain_budget_respects_budget_and_frees_once() {
        let mut pool = PacketPool::new();
        let mut f = PktFifo::new();
        for i in 0..5 {
            pool.push(&mut f, pkt(i, 1500));
        }
        let before_chunks = pool.chunks_in_use();
        let mut out = Vec::new();
        let used = pool.drain_budget_into(&mut f, 4000, &mut out);
        assert_eq!(used, 3000);
        assert_eq!(out.len(), 2);
        assert_eq!(pool.live_packets(), 3);
        // Draining within the head chunk frees nothing yet.
        assert_eq!(pool.chunks_in_use(), before_chunks);
        let used = pool.drain_budget_into(&mut f, u64::MAX, &mut out);
        assert_eq!(used, 4500);
        assert!(f.is_empty());
        assert_eq!(pool.chunks_in_use(), 0);
        pool.debug_assert_conserved();
        // A second drain on the empty FIFO must be a no-op, not a
        // double free.
        assert_eq!(pool.drain_budget_into(&mut f, u64::MAX, &mut out), 0);
        assert_eq!(pool.chunks_in_use(), 0);
    }
}
