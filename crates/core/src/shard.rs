//! Sharded parallel simulation core: the fabric splits into K port
//! groups, each owning its hosts, VOQ bank rows, packet pool and event
//! queue. Intra-shard work (NIC pumps, switch-ingress classification,
//! slow-mode grant transmission) runs independently per shard between
//! *barriers* — the coordinator's own events (epochs, slot activations,
//! app sends, matrix rotations), which own cross-shard state: the
//! scheduler, the OCS/EPS, the instrumentation sinks and the buffer
//! tracker.
//!
//! # Determinism contract
//!
//! The sharded core is defined by equivalence, not by approximation:
//!
//! * **K = 1 is not this code.** A build without shards runs the classic
//!   single-queue loop in [`super::HybridSim::run`], byte-identical to
//!   every prior release (golden traces hold without regeneration).
//! * **K > 1 reproduces K = 1** on events, delivered bytes, offered
//!   bytes, decisions, drops and the scheduler-/grant-path counters, for
//!   any shard map. Three mechanisms make that exact rather than lucky:
//!   1. *Windows end at the next coordinator event, with same-instant
//!      ties broken by scheduling time.* Every event — coordinator or
//!      shard-local — is stamped with the simulation time at which it
//!      was *scheduled*. A shard processes events with `t < T_next`,
//!      plus events at exactly `T_next` whose stamp is older than the
//!      coordinator event's own stamp; same-instant events within a
//!      shard replay in stamp order. That is precisely the K = 1 pop
//!      order (insertion sequence) whenever scheduling times differ —
//!      e.g. a `SwitchIn` landing on the very nanosecond a slot
//!      activates runs first iff its NIC scheduled it before the slot
//!      was configured, exactly as the single queue would have popped
//!      them. Events tied on *both* fire and scheduling time keep
//!      coordinator-first / insertion order — still deterministic, and
//!      reachable only if one handler schedules a shard event and a
//!      coordinator event for the same future instant (today that
//!      needs the control one-way delay to exactly equal the OCS
//!      reconfiguration delay).
//!   2. *Sink effects are shipped, not applied.* Anything a shard-local
//!      event would do to shared state — an EPS arrival, a slow-mode
//!      circuit arrival, a drop, a buffer-tracker op — is buffered as a
//!      `(time, shard, seq)`-stamped item and replayed in that canonical
//!      order at the barrier. OCS and EPS state only changes at
//!      coordinator events, so deferred replay is exact.
//!   3. *Requests merge in global `(src, dst)` order* — the same order a
//!      full-fabric row-major scan produces — so the estimator, the
//!      scheduler and the decision-latency RNG consume identical inputs.
//!
//! Counters whose value reflects *structure* rather than behavior —
//! the per-shard ladder-queue and packet-pool ledgers (`queue_*`,
//! `pool_*`) — are merged across shards with
//! [`CounterSet::merge`] semantics (sums for tallies, max for peaks) and
//! are deterministic per `(K, seed)` but legitimately K-dependent.
//!
//! # Execution
//!
//! Shard windows run on their own threads when the machine has more
//! than one CPU ([`ShardExec::Auto`]); on a single CPU they run inline,
//! sequentially — same results either way, because shards share nothing
//! within a window. Even inline, sharding pays on big fabrics: each
//! shard's window drains its events back-to-back against a private pool
//! and VOQ slice, instead of interleaving every port's state through one
//! global time order.

use super::*;

/// Assignment of ports to shards. Construct with [`contiguous`]
/// (`ShardMap::contiguous`) for the standard equal split, or
/// [`from_assignment`](ShardMap::from_assignment) for arbitrary
/// (test/proptest) layouts. The determinism contract holds for any map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `assign[port] = shard`.
    assign: Vec<u32>,
    k: usize,
}

impl ShardMap {
    /// Splits `n` ports into `k` contiguous, near-equal groups (shard
    /// `s` owns ports `[s·n/k, (s+1)·n/k)`). `k` is clamped to `[1, n]`.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(n > 0, "need at least one port");
        let k = k.clamp(1, n);
        let assign = (0..n).map(|p| (p * k / n) as u32).collect();
        ShardMap { assign, k }
    }

    /// Builds a map from an explicit `port → shard` table. Shard ids
    /// must be dense (`0..k` with every id used).
    pub fn from_assignment(assign: Vec<usize>) -> Result<Self, String> {
        if assign.is_empty() {
            return Err("shard assignment is empty".into());
        }
        let k = assign.iter().max().copied().unwrap_or(0) + 1;
        let mut used = vec![false; k];
        for &s in &assign {
            used[s] = true;
        }
        if let Some(hole) = used.iter().position(|u| !u) {
            return Err(format!("shard ids not dense: {hole} unused below {k}"));
        }
        Ok(ShardMap {
            assign: assign.into_iter().map(|s| s as u32).collect(),
            k,
        })
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of ports the map covers.
    pub fn ports(&self) -> usize {
        self.assign.len()
    }

    /// The shard owning `port`.
    pub fn shard_of(&self, port: usize) -> usize {
        self.assign[port] as usize
    }

    /// The (sorted, ascending) global ports shard `s` owns.
    pub fn rows_of(&self, s: usize) -> Vec<usize> {
        (0..self.assign.len())
            .filter(|&p| self.assign[p] as usize == s)
            .collect()
    }
}

/// How shard windows execute between barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardExec {
    /// One worker thread per busy shard when the machine has more than
    /// one CPU; inline otherwise.
    #[default]
    Auto,
    /// Always sequential, in shard order, on the calling thread.
    Inline,
    /// Always scoped worker threads (even on one CPU — results are
    /// identical, this just exercises the concurrent path).
    Threads,
}

/// Shard-local events: the subset of [`Ev`] whose handlers touch only
/// one port group's state plus pure sinks (which get shipped).
#[derive(Debug)]
enum SEv {
    /// A pre-generated flow arrives at its (shard-owned) source host.
    Inject {
        flow: FlowSpec,
    },
    Pump {
        host: usize,
    },
    SwitchIn {
        pkt: Packet,
    },
    HostGrant {
        host: usize,
        dst: usize,
        slot_start: SimTime,
        slot_end: SimTime,
    },
    OcsIn {
        pkt: Packet,
    },
}

/// A side effect on shared state, deferred to the next barrier.
#[derive(Debug)]
enum ShipKind {
    /// Non-gated packet reached the switch ingress: EPS admission.
    Eps(Packet),
    /// Slow-mode bulk packet arrived expecting a live circuit.
    OcsArrival(Packet),
    Drop(DropCause),
    BufEnqueue {
        site: Site,
        bytes: u64,
    },
    BufRelease {
        site: Site,
        bytes: u64,
        release: SimTime,
    },
}

#[derive(Debug)]
struct Ship {
    t: SimTime,
    seq: u64,
    kind: ShipKind,
}

/// One port group: its hosts, pool, VOQ rows and event queue.
struct Shard {
    id: usize,
    /// Sorted global ports this shard owns.
    ports: Vec<usize>,
    /// `local[global] = index into hosts`, `u32::MAX` for foreign ports.
    local: Vec<u32>,
    hosts: Vec<Host>,
    /// Backs this shard's staging queues and host VOQs.
    pool: PacketPool,
    /// Row-windowed switch VOQ bank (this shard's source rows only).
    proc: ProcessingLogic,
    /// Payloads carry the event's *scheduling* time — the `now` of the
    /// handler (or coordinator) that scheduled it — so same-instant
    /// events can replay in K = 1 insertion order.
    queue: EventQueue<(SimTime, SEv)>,
    /// Scratch for draining a same-instant batch in `run_window`.
    batch: Vec<(SimTime, SEv)>,
    host_tx: TxTimeCache,
    req_scratch: Vec<SchedRequest>,
    // Immutable per-run configuration copies (kept off `SimState` so a
    // window borrows nothing shared).
    is_hw: bool,
    gate_interactive: bool,
    mtu: u32,
    prop: SimDuration,
    track_buffers: bool,
    // Accounting.
    next_pkt_id: u64,
    pops: u64,
    ship: Vec<Ship>,
}

impl Shard {
    fn gated(&self, class: TrafficClass) -> bool {
        class == TrafficClass::Bulk || (self.gate_interactive && class == TrafficClass::Interactive)
    }

    fn ship(&mut self, t: SimTime, kind: ShipKind) {
        let seq = self.ship.len() as u64;
        self.ship.push(Ship { t, seq, kind });
    }

    fn host_mut(&mut self, global: usize) -> &mut Host {
        let li = self.local[global];
        debug_assert!(
            li != u32::MAX,
            "port {global} not owned by shard {}",
            self.id
        );
        &mut self.hosts[li as usize]
    }

    /// `at_least` is the caller's current time — it doubles as the new
    /// event's scheduling stamp.
    fn ensure_pump(&mut self, at_least: SimTime, host: usize) {
        let li = self.local[host] as usize;
        let h = &mut self.hosts[li];
        if !h.pump_active {
            h.pump_active = true;
            let at = at_least.max(h.nic_busy_until);
            self.queue.schedule_at(at, (at_least, SEv::Pump { host }));
        }
    }

    /// Whether any queued event may fall inside the window bounded by
    /// `limit = (T_next, sched_coord)` (capped by the horizon). Events
    /// at exactly `T_next` are a *maybe* — only their scheduling stamps
    /// (inspected by `run_window`) decide — so this errs on "busy".
    fn has_work(&self, limit: Option<(SimTime, SimTime)>, horizon: SimTime) -> bool {
        match self.queue.peek_time() {
            None => false,
            Some(t) => t <= horizon && limit.is_none_or(|(lt, _)| t <= lt),
        }
    }

    /// Drains shard-local events with `t < T_next` — plus events at
    /// exactly `T_next` scheduled before the coordinator event was —
    /// capped by the horizon. Same-instant events replay in scheduling-
    /// stamp order: the K = 1 insertion sequence.
    fn run_window(&mut self, limit: Option<(SimTime, SimTime)>, horizon: SimTime) {
        loop {
            let Some(t) = self.queue.peek_time() else {
                return;
            };
            if t > horizon || limit.is_some_and(|(lt, _)| t > lt) {
                return;
            }
            let (sched, ev) = self.queue.pop().expect("peeked").1;
            // Fast path: the instant holds exactly one event (the
            // overwhelmingly common case — packet times rarely collide),
            // so stamp order is trivially satisfied.
            if self.queue.peek_time() != Some(t) {
                match limit {
                    Some((lt, ls)) if t == lt && sched >= ls => {
                        // Due only after the coordinator event: put it
                        // back and end the window.
                        self.queue.schedule_at(t, (sched, ev));
                        return;
                    }
                    _ => {
                        self.pops += 1;
                        self.handle(t, ev);
                        continue;
                    }
                }
            }
            // Same-instant batch: drain it, replay in stamp order (the
            // K = 1 insertion sequence), defer what the coordinator
            // event precedes.
            let mut batch = std::mem::take(&mut self.batch);
            batch.push((sched, ev));
            while self.queue.peek_time() == Some(t) {
                let (_, item) = self.queue.pop().expect("peeked");
                batch.push(item);
            }
            // Stable, so equal stamps keep queue (insertion) order.
            batch.sort_by_key(|&(sched, _)| sched);
            let due = match limit {
                Some((lt, ls)) if t == lt => batch.partition_point(|&(sched, _)| sched < ls),
                _ => batch.len(),
            };
            // Anything stamped at-or-after the coordinator event waits
            // for the next window; re-queued stamp-sorted, which the
            // stable re-sort above preserves across windows.
            for (sched, ev) in batch.drain(due..) {
                self.queue.schedule_at(t, (sched, ev));
            }
            let blocked = due == 0;
            for (_, ev) in batch.drain(..) {
                self.pops += 1;
                self.handle(t, ev);
            }
            self.batch = batch;
            if blocked {
                return;
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: SEv) {
        match ev {
            // Mirrors `SimState::inject_flow`; flow-start notification
            // and offered-byte accounting already happened coordinator-
            // side at pre-generation.
            SEv::Inject { flow: f } => {
                let host = f.src.index();
                let gated = self.gated(f.class);
                for (seq, size) in packet_sizes(f.bytes, self.mtu).enumerate() {
                    // Ids are namespaced per shard (unobservable in any
                    // report; uniqueness is all that matters).
                    let id = ((self.id as u64 + 1) << 48) | self.next_pkt_id;
                    let pkt = Packet::new(id, f.id, f.src, f.dst, size, f.class, now, seq as u32);
                    self.next_pkt_id += 1;
                    if gated && !self.is_hw {
                        let li = self.local[host] as usize;
                        let h = &mut self.hosts[li];
                        let d = f.dst.index();
                        self.pool.push(&mut h.voq[d], pkt);
                        h.voq_bytes[d] += size as u64;
                        h.voq_total += size as u64;
                        h.voq_arrived[d] += size as u64;
                        h.voq_dirty[d] = true;
                        if self.track_buffers {
                            self.ship(
                                now,
                                ShipKind::BufEnqueue {
                                    site: Site::Host,
                                    bytes: size as u64,
                                },
                            );
                        }
                    } else {
                        let li = self.local[host] as usize;
                        let h = &mut self.hosts[li];
                        let q = match pkt.class {
                            TrafficClass::Interactive => &mut h.q_inter,
                            TrafficClass::Short => &mut h.q_short,
                            TrafficClass::Bulk => &mut h.q_bulk,
                        };
                        self.pool.push(q, pkt);
                    }
                }
                self.ensure_pump(now, host);
            }

            SEv::Pump { host } => {
                let nic_busy = self.host_mut(host).nic_busy_until;
                if now < nic_busy {
                    self.queue.schedule_at(nic_busy, (now, SEv::Pump { host }));
                    return;
                }
                let li = self.local[host] as usize;
                let popped = self.hosts[li].pop_staged(&mut self.pool);
                let Some(pkt) = popped else {
                    self.hosts[li].pump_active = false;
                    return;
                };
                let tx = self.host_tx.tx_time(pkt.bytes as u64);
                self.hosts[li].nic_busy_until = now + tx;
                self.queue
                    .schedule_at(now + tx + self.prop, (now, SEv::SwitchIn { pkt }));
                self.queue.schedule_at(now + tx, (now, SEv::Pump { host }));
            }

            SEv::SwitchIn { pkt } => {
                if self.gated(pkt.class) {
                    debug_assert!(self.is_hw, "slow mode gates bulk at hosts");
                    let bytes = pkt.bytes as u64;
                    match self.proc.enqueue(pkt) {
                        Ok(()) => {
                            if self.track_buffers {
                                self.ship(
                                    now,
                                    ShipKind::BufEnqueue {
                                        site: Site::Switch,
                                        bytes,
                                    },
                                );
                            }
                        }
                        Err(_) => self.ship(now, ShipKind::Drop(DropCause::VoqFull)),
                    }
                } else {
                    // EPS admission reads shared switch state: defer.
                    self.ship(now, ShipKind::Eps(pkt));
                }
            }

            SEv::HostGrant {
                host,
                dst,
                slot_start,
                slot_end,
            } => {
                let li = self.local[host] as usize;
                let (start_seen, end_seen) = {
                    let h = &self.hosts[li];
                    (h.actual_time(slot_start), h.actual_time(slot_end))
                };
                let mut cursor = now.max(start_seen).max(self.hosts[li].nic_busy_until);
                while let Some(front) = self.pool.front(&self.hosts[li].voq[dst]) {
                    let bytes = front.bytes as u64;
                    let tx = self.host_tx.tx_time(bytes);
                    if cursor + tx > end_seen {
                        break;
                    }
                    let pkt = self.pool.pop(&mut self.hosts[li].voq[dst]).expect("peeked");
                    let dep = cursor + tx;
                    cursor = dep;
                    let h = &mut self.hosts[li];
                    h.voq_bytes[dst] -= bytes;
                    h.voq_total -= bytes;
                    h.voq_dirty[dst] = true;
                    if self.track_buffers {
                        self.ship(
                            now,
                            ShipKind::BufRelease {
                                site: Site::Host,
                                bytes,
                                release: dep,
                            },
                        );
                    }
                    self.queue
                        .schedule_at(dep + self.prop, (now, SEv::OcsIn { pkt }));
                }
                let h = &mut self.hosts[li];
                h.nic_busy_until = h.nic_busy_until.max(cursor);
            }

            SEv::OcsIn { pkt } => {
                // Circuit validation reads shared OCS state: defer.
                self.ship(now, ShipKind::OcsArrival(pkt));
            }
        }
    }
}

/// Runs the sharded core. Entered from [`HybridSim::run`] when the
/// build carries a shard map with `k > 1`.
pub(super) fn run_sharded(sim: HybridSim, horizon: SimTime, map: ShardMap) -> RunReport {
    let exec = sim.shard_exec;
    let HybridSim { mut state, .. } = sim;
    state.horizon = horizon;
    let n = state.cfg.n_ports;
    assert_eq!(map.ports(), n, "shard map port-space mismatch");
    let threaded = match exec {
        ShardExec::Inline => false,
        ShardExec::Threads => true,
        ShardExec::Auto => std::thread::available_parallelism().is_ok_and(|p| p.get() > 1),
    };

    // Partition the built hosts (clock offsets were drawn in global port
    // order at build, exactly as in the classic path) into shards.
    let mut host_slots: Vec<Option<Host>> = state.hosts.drain(..).map(Some).collect();
    let mut shards: Vec<Shard> = (0..map.k())
        .map(|s| {
            let ports = map.rows_of(s);
            let mut local = vec![u32::MAX; n];
            for (li, &p) in ports.iter().enumerate() {
                local[p] = li as u32;
            }
            let hosts = ports
                .iter()
                .map(|&p| host_slots[p].take().expect("port owned once"))
                .collect();
            Shard {
                id: s,
                local,
                hosts,
                pool: PacketPool::new(),
                proc: ProcessingLogic::with_rows(n, state.cfg.voq_capacity, ports.clone()),
                ports,
                queue: EventQueue::new(),
                batch: Vec::new(),
                host_tx: state.cfg.host_link.rate.tx_cache(),
                req_scratch: Vec::new(),
                is_hw: state.is_hw,
                gate_interactive: state.cfg.voip_on_ocs,
                mtu: state.cfg.mtu,
                prop: state.cfg.host_link.propagation,
                track_buffers: state.track_buffers,
                next_pkt_id: 0,
                pops: 0,
                ship: Vec::new(),
            }
        })
        .collect();

    // Seed the coordinator queue exactly like the classic path, except
    // flows are pre-generated at barriers instead of chained through
    // `Ev::NextFlow` (the generator's draw order is preserved — one draw
    // ahead, next draw on injection). Like the shard queues, payloads
    // carry the event's scheduling stamp (`ZERO` for the seeds, which
    // matches the classic path scheduling them before the first pop).
    let mut cq: EventQueue<(SimTime, Ev)> = EventQueue::new();
    if let Some(g) = &mut state.flowgen {
        let f = g.next_flow();
        if f.start <= state.flow_stop {
            state.pending_flow = Some(f);
        }
    }
    for (i, a) in state.apps.iter().enumerate() {
        cq.schedule_at(a.start, (SimTime::ZERO, Ev::AppSend { app: i }));
    }
    if let Some(cycle) = &state.matrix_cycle {
        cq.schedule_at(
            SimTime::ZERO + cycle.period,
            (SimTime::ZERO, Ev::RotateMatrix { idx: 1 }),
        );
    }
    cq.schedule_at(SimTime::ZERO, (SimTime::ZERO, Ev::EpochStart));
    // Fault chain, exactly as the classic path seeds it. Fault events
    // are coordinator events, so every draw happens at a barrier in the
    // same order regardless of the shard map.
    if let Some(fs) = &mut state.faults {
        if let Some(at) = fs.first_fault_at() {
            cq.schedule_at(at, (SimTime::ZERO, Ev::LinkFault));
        }
    }

    let mut coord_pops: u64 = 0;
    let mut end_time = SimTime::ZERO;
    // The generator's "seed" draw predates every seeded event; stamps
    // appear once the chain starts (each draw happens as its predecessor
    // injects, exactly when `Ev::NextFlow` would have been scheduled).
    let mut pending_sched: Option<SimTime> = None;
    let mut replay_buf: Vec<(SimTime, u32, u64, ShipKind)> = Vec::new();
    loop {
        // Pop the coordinator event up front: the window rule needs its
        // scheduling stamp, and the queue has no payload peek. Windows
        // never schedule onto the coordinator queue, so nothing can
        // preempt an already-popped event.
        let coord = match cq.peek_time() {
            Some(t) if t <= horizon => cq.pop(),
            _ => None,
        };
        let limit = coord.as_ref().map(|(t, (s, _))| (*t, *s));
        pregen_flows(&mut state, &mut shards, &map, limit, &mut pending_sched);
        run_windows(&mut shards, limit, horizon, threaded);
        replay_ships(&mut state, &mut shards, &mut replay_buf);
        let Some((now, (_, ev))) = coord else { break };
        coord_pops += 1;
        end_time = end_time.max(now);
        handle_coord(&mut state, &mut shards, &map, &mut cq, now, ev);
    }
    for s in &shards {
        end_time = end_time.max(s.queue.now());
    }

    // Fold the coordinator's structural ledgers (the classic formulas —
    // the builder's full-fabric pool and bank are inert husks here),
    // then merge each shard's ledger set with kind-aware semantics:
    // tallies sum, peaks max.
    let mut st = state;
    st.counters.queue_spreads = cq.spread_count();
    st.counters.queue_spills = cq.spill_count();
    st.counters.queue_direct_sorts = cq.direct_sort_count();
    let (p_allocs, p_frees, p_peak, p_growths) = st.proc.pool_ledger();
    st.counters.pool_allocs = st.host_pool.alloc_count() + p_allocs;
    st.counters.pool_frees = st.host_pool.free_count() + p_frees;
    st.counters.pool_live_peak = st.host_pool.live_peak() + p_peak;
    st.counters.pool_chunk_growths = st.host_pool.chunk_growth_count() + p_growths;
    let mut events = coord_pops;
    for s in &shards {
        events += s.pops;
        let (a, f, pk, g) = s.proc.pool_ledger();
        let c = CounterSet {
            queue_spreads: s.queue.spread_count(),
            queue_spills: s.queue.spill_count(),
            queue_direct_sorts: s.queue.direct_sort_count(),
            pool_allocs: s.pool.alloc_count() + a,
            pool_frees: s.pool.free_count() + f,
            // Same composition as the classic single-core formula, per
            // shard: host-pool peak + VOQ-bank peak. Across shards the
            // merge takes the max — the documented peak semantic.
            pool_live_peak: s.pool.live_peak() + pk,
            pool_chunk_growths: s.pool.chunk_growth_count() + g,
            ..Default::default()
        };
        st.counters.merge(&c);
        // Per-shard conservation audits, as strict as the classic ones.
        if let Err(e) = s.pool.check_conserved() {
            panic!("end-of-run shard {} host pool audit failed: {e}", s.id);
        }
        if let Err(e) = s.proc.check_pool_conserved() {
            panic!("end-of-run shard {} switch pool audit failed: {e}", s.id);
        }
    }
    st.into_report(events, end_time, horizon)
}

/// Injects every pending flow due before `limit = (T_next, sched_coord)`
/// (or up to the horizon when no coordinator event remains) into its
/// source shard, drawing follow-ups in exactly the order `Ev::NextFlow`
/// would have. A flow starting at exactly `T_next` is due iff its draw
/// (`pending_sched`, the previous flow's start — `None` for the
/// pre-loop seed draw) predates the coordinator event's stamp, which is
/// when K = 1 would have scheduled its `Ev::NextFlow`.
fn pregen_flows(
    st: &mut SimState,
    shards: &mut [Shard],
    map: &ShardMap,
    limit: Option<(SimTime, SimTime)>,
    pending_sched: &mut Option<SimTime>,
) {
    loop {
        let Some(f) = st.pending_flow.take() else {
            return;
        };
        let due = match limit {
            Some((lt, ls)) => {
                f.start < lt || (f.start == lt && pending_sched.is_none_or(|s| s < ls))
            }
            None => f.start <= st.horizon,
        };
        if !due {
            st.pending_flow = Some(f);
            return;
        }
        st.offered_bytes += f.bytes;
        st.offered_flows += 1;
        st.delivery_sink.on_flow_started(f.id, f.bytes, f.start);
        let s = map.shard_of(f.src.index());
        let start = f.start;
        let sched = pending_sched.unwrap_or(SimTime::ZERO);
        shards[s]
            .queue
            .schedule_at(start, (sched, SEv::Inject { flow: f }));
        *pending_sched = Some(start);
        if let Some(g) = &mut st.flowgen {
            let next = g.next_flow();
            if next.start <= st.flow_stop && next.start <= st.horizon {
                st.pending_flow = Some(next);
            }
        }
    }
}

/// Runs every busy shard's window — threaded when allowed and at least
/// two shards have due work, inline otherwise. Shards share nothing
/// within a window, so the two modes produce identical results. The
/// threaded path caps workers at the machine's parallelism and hands
/// each a contiguous slice of busy shards: K is free to exceed the core
/// count (big K pays for itself in cache locality even inline — see the
/// module docs) without spawning K threads per barrier.
fn run_windows(
    shards: &mut [Shard],
    limit: Option<(SimTime, SimTime)>,
    horizon: SimTime,
    threaded: bool,
) {
    if !threaded {
        for sh in shards.iter_mut() {
            sh.run_window(limit, horizon);
        }
        return;
    }
    let mut busy: Vec<&mut Shard> = shards
        .iter_mut()
        .filter(|s| s.has_work(limit, horizon))
        .collect();
    match busy.len() {
        0 => {}
        1 => busy[0].run_window(limit, horizon),
        n => {
            let workers = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(n);
            let per = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for chunk in busy.chunks_mut(per) {
                    scope.spawn(move || {
                        for sh in chunk {
                            sh.run_window(limit, horizon);
                        }
                    });
                }
            });
        }
    }
}

/// Applies every shipped sink effect in canonical `(time, shard, seq)`
/// order — the cross-shard merge rule that pins determinism.
fn replay_ships(
    st: &mut SimState,
    shards: &mut [Shard],
    buf: &mut Vec<(SimTime, u32, u64, ShipKind)>,
) {
    if shards.iter().all(|s| s.ship.is_empty()) {
        return;
    }
    buf.clear();
    for s in shards.iter_mut() {
        let sid = s.id as u32;
        buf.extend(s.ship.drain(..).map(|sh| (sh.t, sid, sh.seq, sh.kind)));
    }
    buf.sort_unstable_by_key(|&(t, sid, seq, _)| (t, sid, seq));
    for (t, _, _, kind) in buf.drain(..) {
        match kind {
            ShipKind::Eps(pkt) => {
                let out = pkt.dst.index();
                match st.switching.eps.enqueue(out, pkt.bytes as u64, t) {
                    Ok(dep) => {
                        let deliver = dep + st.cfg.host_link.propagation;
                        st.record_delivery(&pkt, deliver, DeliveryPath::Eps);
                        st.flush_deliveries();
                    }
                    Err(()) => st.drop_sink.on_drop(DropCause::EpsFull, t),
                }
            }
            ShipKind::OcsArrival(pkt) => {
                let (i, j, bytes) = (pkt.src.index(), pkt.dst.index(), pkt.bytes as u64);
                if st.faults.as_ref().is_some_and(|fs| fs.pair_failed(i, j)) {
                    // Mirrors the classic `Ev::OcsIn` fault check: fault
                    // flags only change at coordinator events, so the
                    // state seen here equals what K = 1 saw at `t`.
                    st.drop_sink.on_drop(DropCause::LinkDark, t);
                    continue;
                }
                match st.switching.ocs.transmit(i, j, bytes, t) {
                    Ok(()) => {
                        let deliver = t + st.cfg.host_link.propagation;
                        st.record_delivery(&pkt, deliver, DeliveryPath::Ocs);
                        st.flush_deliveries();
                    }
                    Err(_) => st.drop_sink.on_drop(DropCause::SyncViolation, t),
                }
            }
            ShipKind::Drop(cause) => st.drop_sink.on_drop(cause, t),
            ShipKind::BufEnqueue { site, bytes } => st.buffers.on_enqueue(site, bytes, t),
            ShipKind::BufRelease {
                site,
                bytes,
                release,
            } => st.buffers.on_dequeue_at(site, bytes, release),
        }
    }
}

/// Handles one coordinator event at a barrier. Each arm is the classic
/// handler operating over shard-held state (the coordinator owns every
/// shard between windows).
fn handle_coord(
    st: &mut SimState,
    shards: &mut [Shard],
    map: &ShardMap,
    q: &mut EventQueue<(SimTime, Ev)>,
    now: SimTime,
    ev: Ev,
) {
    match ev {
        Ev::AppSend { app } => {
            let a = st.apps[app].clone();
            let pkt = Packet::new(
                st.next_pkt_id,
                APP_FLOW_BASE + app as u64,
                a.src,
                a.dst,
                a.pkt_bytes,
                TrafficClass::Interactive,
                now,
                0,
            );
            st.next_pkt_id += 1;
            st.offered_bytes += a.pkt_bytes as u64;
            let host = a.src.index();
            let sh = &mut shards[map.shard_of(host)];
            let li = sh.local[host] as usize;
            if st.gated(TrafficClass::Interactive) && !st.is_hw {
                let d = a.dst.index();
                let h = &mut sh.hosts[li];
                sh.pool.push(&mut h.voq[d], pkt);
                h.voq_bytes[d] += a.pkt_bytes as u64;
                h.voq_total += a.pkt_bytes as u64;
                h.voq_arrived[d] += a.pkt_bytes as u64;
                h.voq_dirty[d] = true;
                if st.track_buffers {
                    st.buffers.on_enqueue(Site::Host, a.pkt_bytes as u64, now);
                }
            } else {
                let h = &mut sh.hosts[li];
                sh.pool.push(&mut h.q_inter, pkt);
                sh.ensure_pump(now, host);
            }
            let next = a.next_send(now, &mut st.rng);
            if next <= st.horizon {
                q.schedule_at(next, (now, Ev::AppSend { app }));
            }
        }

        Ev::EpochStart => {
            // xlint: allow(wall-clock) — epoch phase-timing split (RunReport::phases): host-time observability, excluded from golden serialization
            let phase_t0 = std::time::Instant::now();
            for s in shards.iter() {
                s.pool.debug_assert_conserved();
            }
            // Requests from every shard, merged into global (src, dst)
            // order — identical to a full-fabric row-major scan.
            let mut reqs = std::mem::take(&mut st.reqs_scratch);
            reqs.clear();
            for s in shards.iter_mut() {
                if st.is_hw {
                    let mut buf = std::mem::take(&mut s.req_scratch);
                    s.proc.take_requests_into(now, &mut buf);
                    reqs.extend_from_slice(&buf);
                    s.req_scratch = buf;
                } else {
                    for (li, &hi) in s.ports.clone().iter().enumerate() {
                        let h = &mut s.hosts[li];
                        for d in 0..h.voq_dirty.len() {
                            if h.voq_dirty[d] {
                                h.voq_dirty[d] = false;
                                reqs.push(SchedRequest {
                                    src: hi,
                                    dst: d,
                                    queued_bytes: h.voq_bytes[d],
                                    arrived_bytes_total: h.voq_arrived[d],
                                    at: now,
                                });
                            }
                        }
                    }
                }
            }
            reqs.sort_unstable_by_key(|r| (r.src, r.dst));
            for r in &reqs {
                st.estimator.on_request(r);
            }
            st.reqs_scratch = reqs;
            let have_ref = st.estimator.estimate_ref(now, st.cfg.epoch).is_some();
            if !have_ref {
                st.estimator
                    .estimate_into(now, st.cfg.epoch, &mut st.demand_scratch);
            }
            let truth_total: u64 = if st.is_hw {
                shards.iter().map(|s| s.proc.total_bytes()).sum()
            } else {
                shards
                    .iter()
                    .map(|s| s.hosts.iter().map(|h| h.voq_total).sum::<u64>())
                    .sum()
            };
            let mut demand_err_rel: Option<f64> = None;
            if st.estimator_is_mirror {
                if truth_total > 0 {
                    demand_err_rel = Some(0.0);
                }
            } else if st.want_demand_error {
                if st.is_hw {
                    for s in shards.iter() {
                        s.proc.occupancy_rows_into(&mut st.truth_scratch);
                    }
                } else {
                    for s in shards.iter() {
                        for (li, &hi) in s.ports.iter().enumerate() {
                            let h = &s.hosts[li];
                            for d in 0..st.cfg.n_ports {
                                st.truth_scratch.set(hi, d, h.voq_bytes[d]);
                            }
                        }
                    }
                }
                let estimate = match st.estimator.estimate_ref(now, st.cfg.epoch) {
                    Some(m) => m,
                    None => &st.demand_scratch,
                };
                let (err_l1, tt) = estimate.error_vs(&st.truth_scratch);
                debug_assert_eq!(tt, truth_total, "snapshot disagrees with running total");
                if truth_total > 0 {
                    demand_err_rel = Some(err_l1 as f64 / truth_total as f64);
                }
            }
            let ctx = ScheduleCtx {
                now,
                line_rate: st.cfg.line_rate,
                reconfig: st.cfg.reconfig,
                epoch: st.cfg.epoch,
                max_entries: st.cfg.max_entries,
            };
            let demand = match st.estimator.estimate_ref(now, st.cfg.epoch) {
                Some(m) => m,
                None => &st.demand_scratch,
            };
            // Mirrors the classic handler: dark ports are masked out of
            // the demand the scheduler sees.
            let demand = match &mut st.faults {
                Some(fs) if fs.n_failed > 0 => fs.mask_demand(demand),
                _ => demand,
            };
            // xlint: allow(wall-clock) — phase-timing block boundary (estimate → decompose), never serialized into goldens
            let phase_t1 = std::time::Instant::now();
            st.phases.estimate += phase_t1.duration_since(phase_t0).as_nanos() as u64;
            let sched = st.scheduler.schedule(demand, &ctx);
            // xlint: allow(wall-clock) — phase-timing block boundary (decompose end), never serialized into goldens
            let phase_t2 = std::time::Instant::now();
            st.phases.decompose += phase_t2.duration_since(phase_t1).as_nanos() as u64;
            if let Some(obs) = st.scheduler.take_obs() {
                st.counters.sched_memo_hits += obs.memo_hits;
                st.counters.sched_hk_runs += obs.hk_runs;
                st.counters.sched_probes += obs.probes;
                st.counters.sched_worklist_peak =
                    st.counters.sched_worklist_peak.max(obs.worklist_len);
                st.counters.sched_bucket_peak = st.counters.sched_bucket_peak.max(obs.buckets_len);
                if let Some(tr) = &mut st.trace {
                    for s in &obs.spans {
                        tr.span_between("sched", s.name, s.start, s.end, &[s.arg]);
                    }
                }
            }
            if let Some(tr) = &mut st.trace {
                tr.span_between(
                    "epoch",
                    "epoch",
                    phase_t0,
                    phase_t2,
                    &[("epoch", st.decisions)],
                );
                tr.span_between("epoch", "estimate", phase_t0, phase_t1, &[]);
                tr.span_between(
                    "epoch",
                    "decompose",
                    phase_t1,
                    phase_t2,
                    &[("entries", sched.entries.len() as u64)],
                );
            }
            debug_assert!(
                sched.validate(&ctx, st.cfg.n_ports).is_ok(),
                "{} produced an invalid schedule",
                st.scheduler.name()
            );
            let mut d = st
                .cfg
                .placement
                .decision_latency(st.cfg.n_ports, &mut st.rng);
            if let Some(fs) = &mut st.faults {
                if let Some(extra) = fs.draw_stall(st.cfg.epoch) {
                    d += extra;
                    st.counters.fault_events_injected += 1;
                }
            }
            st.decisions += 1;
            st.decision_ns_sum += d.as_nanos() as u128;
            st.epoch_probe.on_epoch(&EpochSample {
                epoch: st.decisions - 1,
                at: now,
                demand_err_rel,
                backlog_bytes: truth_total,
                decision_ns: d.as_nanos(),
                ocs_dark_ns: st.switching.ocs.stats().dark_time.as_nanos(),
                entries: sched.entries.len(),
            });
            if !sched.entries.is_empty() {
                let sid = st.alloc_sched(sched);
                q.schedule_at(now + d, (now, Ev::ApplySchedule { sid }));
            }
            let next = now + st.cfg.epoch.max(d);
            if next <= st.horizon {
                q.schedule_at(next, (now, Ev::EpochStart));
            }
        }

        Ev::ApplySchedule { sid } => {
            q.schedule_at(now, (now, Ev::SlotConfigure { sid, idx: 0 }));
        }

        Ev::SlotConfigure { sid, idx } => {
            let slot_fault = match &mut st.faults {
                Some(fs) => fs.draw_misfire(),
                None => SlotFault::None,
            };
            if slot_fault != SlotFault::None {
                st.counters.fault_events_injected += 1;
            }
            if slot_fault == SlotFault::Stale {
                st.faults
                    .as_mut()
                    .expect("stale draw implies a plan")
                    .mark_stale(sid, idx);
            }
            let entry = &st.scheds[sid].as_ref().expect("schedule slot live").entries[idx];
            let active_at = match slot_fault {
                SlotFault::None => st.switching.configure(&entry.perm, now),
                SlotFault::Late(extra) => st.switching.configure(&entry.perm, now + extra),
                SlotFault::Stale => now + st.cfg.reconfig,
            };
            let slot_end = active_at + entry.slot;
            if !st.is_hw && slot_fault != SlotFault::Stale {
                let g = st.cfg.guard;
                let gs = active_at + g;
                let ge = SimTime::from_nanos(slot_end.as_nanos().saturating_sub(g.as_nanos()));
                if ge > gs {
                    // Grants fan out to each source's owning shard.
                    for (i, j) in entry.perm.pairs() {
                        shards[map.shard_of(i)].queue.schedule_at(
                            now + st.ctrl_oneway,
                            (
                                now,
                                SEv::HostGrant {
                                    host: i,
                                    dst: j,
                                    slot_start: gs,
                                    slot_end: ge,
                                },
                            ),
                        );
                    }
                }
            }
            q.schedule_at(active_at, (now, Ev::SlotActive { sid, idx }));
        }

        Ev::SlotActive { sid, idx } => {
            let sched = st.scheds[sid].take().expect("schedule slot live");
            let entry = &sched.entries[idx];
            let slot_end = now + entry.slot;
            let stale = match &mut st.faults {
                Some(fs) => fs.take_stale(sid, idx),
                None => false,
            };
            if st.is_hw {
                // xlint: allow(wall-clock) — apply phase-timing block start (RunReport::phases), excluded from golden serialization
                let phase_t0 = std::time::Instant::now();
                let budget = st.cfg.line_rate.bytes_in(entry.slot);
                let mut granted = std::mem::take(&mut st.grant_scratch);
                for (i, j) in entry.perm.pairs() {
                    granted.clear();
                    shards[map.shard_of(i)]
                        .proc
                        .dequeue_upto_into(i, j, budget, &mut granted);
                    if granted.is_empty() {
                        continue;
                    }
                    // Same circuit probe as the classic core: overlapping
                    // stall-delayed schedules may have darkened or
                    // re-aimed the fabric mid-slot.
                    let diverted = stale
                        || st.faults.as_ref().is_some_and(|fs| fs.pair_failed(i, j))
                        || (st.faults.is_some() && st.switching.ocs.output_for(i, now) != Some(j));
                    if diverted {
                        // Mirrors the classic failover: the burst rides
                        // the EPS instead of the faulted/stale circuit.
                        for pkt in granted.drain(..) {
                            let bytes = pkt.bytes as u64;
                            if st.track_buffers {
                                st.release_scratch.push((now.as_nanos(), bytes));
                            }
                            match st.switching.eps.enqueue(j, bytes, now) {
                                Ok(dep) => {
                                    st.counters.fault_failover_bytes += bytes;
                                    let deliver = dep + st.cfg.host_link.propagation;
                                    st.record_delivery(&pkt, deliver, DeliveryPath::Eps);
                                }
                                Err(()) => st.drop_sink.on_drop(DropCause::EpsFull, now),
                            }
                        }
                        continue;
                    }
                    // xlint: allow(wall-clock) — flight-recorder grant-burst span start, gated on trace; wall-clock stays out of goldens
                    let burst_t0 = st.trace.is_some().then(std::time::Instant::now);
                    let npkts = granted.len() as u64;
                    st.counters.grant_bursts += 1;
                    st.counters.grant_pkts_max = st.counters.grant_pkts_max.max(npkts);
                    let total: u64 = granted.iter().map(|p| p.bytes as u64).sum();
                    st.switching
                        .ocs
                        .transmit_batch(i, j, total, npkts, now)
                        .expect("granted circuit must be live");
                    let mut cursor = now;
                    for pkt in granted.drain(..) {
                        let bytes = pkt.bytes as u64;
                        let dep = cursor + st.line_tx.tx_time(bytes);
                        cursor = dep;
                        if st.track_buffers {
                            st.release_scratch.push((dep.as_nanos(), bytes));
                        }
                        let deliver = dep + st.cfg.host_link.propagation;
                        st.record_delivery(&pkt, deliver, DeliveryPath::Ocs);
                    }
                    if let (Some(t0), Some(tr)) = (burst_t0, &mut st.trace) {
                        tr.span_between(
                            "slot",
                            "grant_burst",
                            t0,
                            // xlint: allow(wall-clock) — flight-recorder span end, trace-gated
                            std::time::Instant::now(),
                            &[("pkts", npkts)],
                        );
                    }
                }
                if st.track_buffers {
                    let mut releases = std::mem::take(&mut st.release_scratch);
                    st.buffers.on_dequeue_at_batch(Site::Switch, &mut releases);
                    st.release_scratch = releases;
                }
                st.flush_deliveries();
                st.grant_scratch = granted;
                // xlint: allow(wall-clock) — apply phase-timing block end (RunReport::phases), excluded from golden serialization
                let phase_t1 = std::time::Instant::now();
                st.phases.apply += phase_t1.duration_since(phase_t0).as_nanos() as u64;
                if let Some(tr) = &mut st.trace {
                    tr.span_between(
                        "epoch",
                        "apply",
                        phase_t0,
                        phase_t1,
                        &[("entry", idx as u64)],
                    );
                }
            }
            if idx + 1 < sched.entries.len() {
                st.scheds[sid] = Some(sched);
                q.schedule_at(slot_end, (now, Ev::SlotConfigure { sid, idx: idx + 1 }));
            } else {
                st.free_scheds.push(sid);
            }
        }

        Ev::RotateMatrix { idx } => {
            if let (Some(cycle), Some(g)) = (&st.matrix_cycle, &mut st.flowgen) {
                g.set_matrix(cycle.matrices[idx % cycle.matrices.len()].clone());
                let next = now + cycle.period;
                if next <= st.horizon {
                    q.schedule_at(next, (now, Ev::RotateMatrix { idx: idx + 1 }));
                }
            }
        }

        Ev::LinkFault => {
            let fs = st.faults.as_mut().expect("LinkFault implies a plan");
            let (port, repair_at, next) = fs.on_link_fault(now);
            if let Some(at) = repair_at {
                st.counters.fault_events_injected += 1;
                q.schedule_at(at, (now, Ev::LinkRepair { port }));
            }
            if let Some(at) = next {
                if at <= st.horizon {
                    q.schedule_at(at, (now, Ev::LinkFault));
                }
            }
        }

        Ev::LinkRepair { port } => {
            st.faults
                .as_mut()
                .expect("LinkRepair implies a plan")
                .on_link_repair(port, now);
        }

        // Shard-local events never land on the coordinator queue.
        Ev::NextFlow
        | Ev::Pump { .. }
        | Ev::SwitchIn { .. }
        | Ev::HostGrant { .. }
        | Ev::OcsIn { .. } => {
            unreachable!("shard-local event on the coordinator queue")
        }
    }
}
