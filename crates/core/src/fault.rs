//! Seeded, simulation-domain fault injection and the graceful-degradation
//! state the runtime keeps while a plan is armed.
//!
//! A [`FaultPlan`] describes failure *processes*, not failure *events*:
//! the runtime compiles the plan into ordinary stamped events drawn from
//! a dedicated RNG stream forked from the per-run seed. Faulted runs
//! therefore obey the full determinism contract — byte-identical across
//! hosts, sweep thread counts and shard maps — and an unarmed plan costs
//! strictly nothing (no RNG fork, no per-event checks beyond one `Option`
//! test on paths that already branch).
//!
//! Three fault families ship (see the ROADMAP section "Fault injection &
//! degraded mode" for how to add a fourth):
//!
//! * **link failure + repair** ([`LinkFaultSpec`]) — an OCS port goes
//!   dark for a drawn interval. The runtime masks its row/column out of
//!   the demand matrix handed to the scheduler, diverts granted bursts
//!   touching it onto the EPS slow path (fast mode) or drops in-flight
//!   circuit traffic as [`DropCause::LinkDark`] (slow mode), and
//!   restores on repair.
//! * **reconfiguration misfire** ([`MisfireSpec`]) — a slot's configure
//!   applies late, or not at all (the stale permutation stays up for the
//!   slot and every granted pair fails over to the EPS).
//! * **scheduler stall** ([`StallSpec`]) — an epoch's decision arrives
//!   k epochs late; the fabric coasts on the previous schedule.
//!
//! Degradation is observed, not just survived: `fault_*` counters in
//! [`xds_metrics::CounterSet`], [`DropCause::LinkDark`] drop tallies and
//! the `fault_degraded_ns` / `fault_failover_bytes` report columns.
//!
//! [`DropCause::LinkDark`]: crate::instrument::DropCause::LinkDark

use xds_sim::{SimDuration, SimRng, SimTime};

use crate::demand::DemandMatrix;

/// A link/port failure process: ports fail at exponentially distributed
/// intervals and stay dark for exponentially distributed outages.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultSpec {
    /// Mean time between failure arrivals (exponential).
    pub mean_up: SimDuration,
    /// Mean outage length before the port repairs (exponential).
    pub mean_down: SimDuration,
}

/// An OCS reconfiguration misfire process, generalizing the `SyncSpec`
/// skew machinery from "hosts mistime the slot" to "the switch itself
/// mistimes the slot".
#[derive(Debug, Clone, PartialEq)]
pub struct MisfireSpec {
    /// Probability that any given slot configure misfires.
    pub prob: f64,
    /// Of the misfires, the fraction that apply the *stale* permutation
    /// for the whole slot (the rest apply late by [`late`](Self::late)).
    pub stale_frac: f64,
    /// Extra configure delay for a late misfire.
    pub late: SimDuration,
}

/// A scheduler stall process: with probability `prob` an epoch's decision
/// arrives `epochs` epochs late and the fabric coasts on the previous
/// schedule in the meantime.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSpec {
    /// Probability that any given epoch's decision stalls.
    pub prob: f64,
    /// How many extra epochs a stalled decision takes.
    pub epochs: u32,
}

/// A deterministic fault-injection plan: which failure processes are
/// armed and with what parameters. The default plan is empty and the
/// runtime treats it exactly like no plan at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Link/port failure + repair process, if armed.
    pub link: Option<LinkFaultSpec>,
    /// Reconfiguration-misfire process, if armed.
    pub misfire: Option<MisfireSpec>,
    /// Scheduler-stall process, if armed.
    pub stall: Option<StallSpec>,
    /// Chaos knob for harness tests: the build panics deliberately so
    /// sweep executors can prove they isolate a panicking point. Never
    /// set by any catalogue entry.
    pub harness_panic: bool,
}

impl FaultPlan {
    /// The empty plan (identical to running with no plan).
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms the link failure + repair process.
    pub fn with_link(mut self, mean_up: SimDuration, mean_down: SimDuration) -> Self {
        self.link = Some(LinkFaultSpec { mean_up, mean_down });
        self
    }

    /// Arms the reconfiguration-misfire process.
    pub fn with_misfire(mut self, prob: f64, stale_frac: f64, late: SimDuration) -> Self {
        self.misfire = Some(MisfireSpec {
            prob,
            stale_frac,
            late,
        });
        self
    }

    /// Arms the scheduler-stall process.
    pub fn with_stall(mut self, prob: f64, epochs: u32) -> Self {
        self.stall = Some(StallSpec { prob, epochs });
        self
    }

    /// Arms the deliberate build-time panic (harness isolation tests
    /// only).
    pub fn with_harness_panic(mut self) -> Self {
        self.harness_panic = true;
        self
    }

    /// Whether any simulation-domain fault family is armed (the harness
    /// panic is not one — it never reaches the simulation).
    pub fn is_active(&self) -> bool {
        self.link.is_some() || self.misfire.is_some() || self.stall.is_some()
    }

    /// A stable, filename-safe label of the armed families, for sweep
    /// tags and the `faults` output column: `"none"`,
    /// `"link"`, `"link+misfire+stall"`, …
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.link.is_some() {
            parts.push("link");
        }
        if self.misfire.is_some() {
            parts.push("misfire");
        }
        if self.stall.is_some() {
            parts.push("stall");
        }
        if self.harness_panic {
            parts.push("panic");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// The `fault-storm` catalogue preset: all three families, tuned so a
    /// millisecond-scale run sees a steady mix of failures, misfires and
    /// stalls.
    pub fn storm() -> Self {
        Self::none()
            .with_link(SimDuration::from_micros(200), SimDuration::from_micros(100))
            .with_misfire(0.2, 0.5, SimDuration::from_micros(2))
            .with_stall(0.1, 2)
    }

    /// The `flaky-links` catalogue preset: link failures only.
    pub fn flaky_links() -> Self {
        Self::none().with_link(SimDuration::from_micros(500), SimDuration::from_micros(150))
    }
}

/// What one slot-configure draw decided (see [`MisfireSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotFault {
    /// The configure applies normally.
    None,
    /// The configure applies late by the carried extra delay.
    Late(SimDuration),
    /// The configure never applies: the stale permutation stays up.
    Stale,
}

/// Runtime fault state: the armed plan, its dedicated RNG stream, the
/// per-port failure flags and the degraded-time ledger. Lives on the
/// coordinator only — shards never see it — so every draw happens in
/// the same order regardless of the shard map.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) rng: SimRng,
    /// Per-port "dark to faults" flags.
    pub(crate) failed: Vec<bool>,
    /// Count of currently failed ports (`failed.iter().filter(|f| **f)`).
    pub(crate) n_failed: usize,
    /// When the fabric last *entered* degraded mode (any port failed).
    pub(crate) degraded_since: Option<SimTime>,
    /// Accumulated degraded-mode time over closed intervals, in
    /// simulated nanoseconds.
    pub(crate) degraded_ns: u64,
    /// Slots whose configure drew [`SlotFault::Stale`], keyed `(sid,
    /// idx)`; consumed by the matching `SlotActive`.
    pub(crate) stale_slots: Vec<(usize, usize)>,
    /// Scratch copy of the demand matrix with failed rows/columns
    /// zeroed, lent to the scheduler while ports are dark.
    mask: DemandMatrix,
}

impl FaultState {
    /// Builds the state for an armed plan over an `n`-port fabric. The
    /// RNG must be a dedicated fork of the per-run build RNG.
    pub(crate) fn new(plan: FaultPlan, rng: SimRng, n: usize) -> Self {
        FaultState {
            plan,
            rng,
            failed: vec![false; n],
            n_failed: 0,
            degraded_since: None,
            degraded_ns: 0,
            stale_slots: Vec::new(),
            mask: DemandMatrix::zero_tracked(n),
        }
    }

    /// Draws an exponential interval with the given mean, clamped to at
    /// least one simulated nanosecond so fault chains always advance.
    fn draw_exp(rng: &mut SimRng, mean: SimDuration) -> SimDuration {
        let ns = rng.exp(mean.as_nanos() as f64);
        SimDuration::from_nanos((ns as u64).max(1))
    }

    /// Time of the first link-fault arrival, if the link family is
    /// armed.
    pub(crate) fn first_fault_at(&mut self) -> Option<SimTime> {
        let link = self.plan.link.clone()?;
        Some(SimTime::ZERO + Self::draw_exp(&mut self.rng, link.mean_up))
    }

    /// Handles a link-fault arrival at `now`: draws the victim port and
    /// outage length, returns `(port, repair_at, next_fault_at)`.
    /// `repair_at` is `None` when the drawn port was already dark (the
    /// arrival is absorbed — no double-failure, no double-repair).
    pub(crate) fn on_link_fault(
        &mut self,
        now: SimTime,
    ) -> (usize, Option<SimTime>, Option<SimTime>) {
        let link = self.plan.link.clone().expect("link family armed");
        let port = self.rng.below_usize(self.failed.len());
        let down = Self::draw_exp(&mut self.rng, link.mean_down);
        let repair_at = if self.failed[port] {
            None
        } else {
            self.failed[port] = true;
            if self.n_failed == 0 {
                self.degraded_since = Some(now);
            }
            self.n_failed += 1;
            Some(now + down)
        };
        let next = now + Self::draw_exp(&mut self.rng, link.mean_up);
        (port, repair_at, Some(next))
    }

    /// Handles a link repair at `now`: clears the flag and closes the
    /// degraded interval when the last dark port comes back.
    pub(crate) fn on_link_repair(&mut self, port: usize, now: SimTime) {
        debug_assert!(self.failed[port], "repair for a port that is not dark");
        self.failed[port] = false;
        self.n_failed -= 1;
        if self.n_failed == 0 {
            if let Some(since) = self.degraded_since.take() {
                self.degraded_ns += now.saturating_since(since).as_nanos();
            }
        }
    }

    /// Closes a still-open degraded interval at end of run and returns
    /// the total degraded time.
    pub(crate) fn finalize_degraded_ns(&mut self, end: SimTime) -> u64 {
        if let Some(since) = self.degraded_since.take() {
            self.degraded_ns += end.saturating_since(since).as_nanos();
        }
        self.degraded_ns
    }

    /// True when either endpoint of the pair is dark.
    pub(crate) fn pair_failed(&self, i: usize, j: usize) -> bool {
        self.failed[i] || self.failed[j]
    }

    /// Lends a copy of `demand` with every failed port's row and column
    /// zeroed — the scheduler never plans circuits through dark ports.
    pub(crate) fn mask_demand(&mut self, demand: &DemandMatrix) -> &DemandMatrix {
        self.mask.copy_from(demand);
        let n = self.failed.len();
        for p in 0..n {
            if self.failed[p] {
                for x in 0..n {
                    self.mask.set(p, x, 0);
                    self.mask.set(x, p, 0);
                }
            }
        }
        &self.mask
    }

    /// Draws the misfire outcome for one slot configure.
    pub(crate) fn draw_misfire(&mut self) -> SlotFault {
        let Some(m) = self.plan.misfire.clone() else {
            return SlotFault::None;
        };
        if !self.rng.bool(m.prob) {
            return SlotFault::None;
        }
        if self.rng.bool(m.stale_frac) {
            SlotFault::Stale
        } else {
            SlotFault::Late(m.late)
        }
    }

    /// Draws the stall outcome for one epoch: extra decision latency, if
    /// the stall family is armed and this epoch stalls.
    pub(crate) fn draw_stall(&mut self, epoch: SimDuration) -> Option<SimDuration> {
        let s = self.plan.stall.clone()?;
        if !self.rng.bool(s.prob) {
            return None;
        }
        let mut extra = SimDuration::ZERO;
        for _ in 0..s.epochs {
            extra += epoch;
        }
        Some(extra)
    }

    /// Marks a slot as stale (its configure never applied).
    pub(crate) fn mark_stale(&mut self, sid: usize, idx: usize) {
        self.stale_slots.push((sid, idx));
    }

    /// Consumes the stale marker for a slot, returning whether it was
    /// set.
    pub(crate) fn take_stale(&mut self, sid: usize, idx: usize) -> bool {
        if let Some(pos) = self.stale_slots.iter().position(|&s| s == (sid, idx)) {
            self.stale_slots.swap_remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive_and_labelled_none() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.label(), "none");
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn labels_join_armed_families_in_stable_order() {
        assert_eq!(FaultPlan::flaky_links().label(), "link");
        assert_eq!(FaultPlan::storm().label(), "link+misfire+stall");
        let p = FaultPlan::none().with_stall(0.5, 1).with_misfire(
            0.1,
            0.5,
            SimDuration::from_micros(1),
        );
        assert_eq!(p.label(), "misfire+stall");
        assert_eq!(FaultPlan::none().with_harness_panic().label(), "panic");
    }

    #[test]
    fn harness_panic_alone_is_not_simulation_active() {
        let p = FaultPlan::none().with_harness_panic();
        assert!(!p.is_active());
        assert!(FaultPlan::storm().is_active());
    }

    #[test]
    fn link_fault_chain_tracks_degraded_intervals() {
        let mut fs = FaultState::new(FaultPlan::flaky_links(), SimRng::new(7), 8);
        let t0 = fs.first_fault_at().expect("link family armed");
        assert!(t0 > SimTime::ZERO);
        let (port, repair, next) = fs.on_link_fault(t0);
        assert!(port < 8);
        let repair = repair.expect("fresh port fails");
        assert!(repair > t0);
        assert!(next.expect("chain continues") > t0);
        assert!(fs.failed[port]);
        assert_eq!(fs.n_failed, 1);
        assert!(fs.pair_failed(port, (port + 1) % 8));
        assert!(!fs.pair_failed((port + 1) % 8, (port + 2) % 8));
        fs.on_link_repair(port, repair);
        assert_eq!(fs.n_failed, 0);
        assert_eq!(
            fs.degraded_ns,
            repair.saturating_since(t0).as_nanos(),
            "closed interval is accounted exactly"
        );
        // A still-open interval is closed by finalize.
        let (p2, r2, _) = fs.on_link_fault(repair);
        assert!(r2.is_some());
        let end = repair + SimDuration::from_micros(50);
        let total = fs.finalize_degraded_ns(end);
        assert_eq!(
            total,
            repair.saturating_since(t0).as_nanos() + end.saturating_since(repair).as_nanos()
        );
        let _ = p2;
    }

    #[test]
    fn mask_zeroes_failed_rows_and_columns() {
        let mut fs = FaultState::new(FaultPlan::flaky_links(), SimRng::new(3), 4);
        let mut d = DemandMatrix::zero(4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    d.set(i, j, 100);
                }
            }
        }
        fs.failed[2] = true;
        fs.n_failed = 1;
        let m = fs.mask_demand(&d);
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j || i == 2 || j == 2 { 0 } else { 100 };
                assert_eq!(m.get(i, j), want, "cell ({i},{j})");
            }
        }
        // The original is untouched.
        assert_eq!(d.get(2, 1), 100);
    }

    #[test]
    fn misfire_and_stall_draws_follow_their_probabilities() {
        let mut fs = FaultState::new(
            FaultPlan::none().with_misfire(1.0, 1.0, SimDuration::from_micros(2)),
            SimRng::new(9),
            4,
        );
        assert_eq!(fs.draw_misfire(), SlotFault::Stale);
        let mut fs = FaultState::new(
            FaultPlan::none().with_misfire(1.0, 0.0, SimDuration::from_micros(2)),
            SimRng::new(9),
            4,
        );
        assert_eq!(
            fs.draw_misfire(),
            SlotFault::Late(SimDuration::from_micros(2))
        );
        let mut fs = FaultState::new(FaultPlan::none().with_stall(1.0, 3), SimRng::new(9), 4);
        assert_eq!(
            fs.draw_stall(SimDuration::from_micros(10)),
            Some(SimDuration::from_micros(30))
        );
        let mut fs = FaultState::new(FaultPlan::flaky_links(), SimRng::new(9), 4);
        assert_eq!(fs.draw_misfire(), SlotFault::None, "family not armed");
        assert_eq!(fs.draw_stall(SimDuration::from_micros(10)), None);
    }

    #[test]
    fn stale_markers_are_consumed_once() {
        let mut fs = FaultState::new(FaultPlan::storm(), SimRng::new(1), 4);
        fs.mark_stale(3, 1);
        assert!(!fs.take_stale(3, 0));
        assert!(fs.take_stale(3, 1));
        assert!(!fs.take_stale(3, 1), "marker is consumed");
    }
}
