//! Hungarian (maximum-weight assignment) scheduler: the Helios-style
//! "compute the optimal circuit configuration for the estimated demand"
//! approach. Optimal per-epoch, but O(n³) — the archetypal *software*
//! scheduler algorithm (see `xds_hw::HwAlgo::Hungarian` for why it does
//! not belong in gateware).

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::matching::max_weight_assignment;
use super::{single_entry_schedule, Schedule, ScheduleCtx, Scheduler};

/// Maximum-weight assignment scheduler (stateless).
#[derive(Debug, Clone, Default)]
pub struct HungarianScheduler;

impl HungarianScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        HungarianScheduler
    }

    /// The optimal single configuration for `demand`, with useless
    /// (zero-demand) circuits stripped.
    pub fn matching(demand: &DemandMatrix) -> Permutation {
        let n = demand.n();
        let full = max_weight_assignment(n, &|i, j| demand.get(i, j));
        let mut p = Permutation::empty(n);
        for (i, j) in full.pairs() {
            if demand.get(i, j) > 0 {
                p.set(i, j).expect("subset of a matching");
            }
        }
        p
    }
}

impl Scheduler for HungarianScheduler {
    fn name(&self) -> &'static str {
        "hungarian"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Hungarian
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        single_entry_schedule(Self::matching(demand), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    #[test]
    fn beats_greedy_on_the_trap_instance() {
        let mut d = DemandMatrix::zero(2);
        d.set(0, 0, 10);
        d.set(0, 1, 9);
        d.set(1, 0, 9);
        let m = HungarianScheduler::matching(&d);
        let total: u64 = m.pairs().map(|(i, j)| d.get(i, j)).sum();
        assert_eq!(total, 18, "optimal assignment");
    }

    #[test]
    fn strips_zero_demand_circuits() {
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 100);
        let m = HungarianScheduler::matching(&d);
        assert_eq!(m.assigned(), 1, "only the demanded pair is configured");
        assert_eq!(m.output_of(0), Some(1));
    }

    #[test]
    fn schedule_validates_and_covers_demand() {
        let mut s = HungarianScheduler::new();
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 1000);
        d.set(1, 0, 1000);
        d.set(2, 3, 500);
        d.set(3, 2, 500);
        let sched = run_and_validate(&mut s, &d, &ctx());
        assert_eq!(sched.entries[0].perm.assigned(), 4);
    }

    #[test]
    fn empty_demand_empty_schedule() {
        let mut s = HungarianScheduler::new();
        assert!(run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx())
            .entries
            .is_empty());
    }
}
