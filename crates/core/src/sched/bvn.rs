//! Birkhoff–von-Neumann / TMS decomposition scheduling.
//!
//! Traffic Matrix Scheduling (Mordia) treats the demand matrix as (close
//! to) doubly stochastic and decomposes it into a convex combination of
//! permutations (Birkhoff's theorem); each permutation becomes an OCS
//! configuration held for time proportional to its coefficient.
//!
//! This implementation extracts permutations from the *support* of the
//! remaining demand with maximum-cardinality matchings, taking as the
//! coefficient the minimum demand along the matching (the textbook
//! Birkhoff step). Extraction stops at the entry budget or when demand is
//! exhausted; slots are proportional to coefficients over the epoch's
//! usable time, and entries whose slot would be shorter than the
//! reconfiguration time are dropped (holding a circuit for less than the
//! dark window it costs is a net loss — this is TMS's "longest slots
//! first" truncation).

use xds_hw::HwAlgo;

use crate::demand::DemandMatrix;

use super::matching::hopcroft_karp;
use super::{Schedule, ScheduleCtx, ScheduleEntry, Scheduler};

/// BvN/TMS decomposition scheduler.
#[derive(Debug, Clone)]
pub struct BvnScheduler {
    max_perms: u32,
}

impl BvnScheduler {
    /// Creates the scheduler; `max_perms` caps the decomposition depth
    /// (further capped by the context's entry budget at schedule time).
    pub fn new(max_perms: u32) -> Self {
        assert!(max_perms >= 1);
        BvnScheduler { max_perms }
    }

    /// The raw decomposition: permutations with byte coefficients,
    /// heaviest first.
    pub fn decompose(
        demand: &DemandMatrix,
        max_perms: usize,
    ) -> Vec<(xds_switch::Permutation, u64)> {
        let n = demand.n();
        let mut work = demand.clone();
        let mut out = Vec::new();
        for _ in 0..max_perms {
            if work.is_zero() {
                break;
            }
            let perm = hopcroft_karp(n, |i, j| work.get(i, j) > 0);
            if perm.is_empty() {
                break;
            }
            let coeff = perm
                .pairs()
                .map(|(i, j)| work.get(i, j))
                .min()
                .expect("non-empty matching");
            debug_assert!(coeff > 0);
            for (i, j) in perm.pairs() {
                work.sub(i, j, coeff);
            }
            out.push((perm, coeff));
        }
        out.sort_by_key(|&(_, coeff)| std::cmp::Reverse(coeff));
        out
    }
}

impl Scheduler for BvnScheduler {
    fn name(&self) -> &'static str {
        "bvn"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Bvn {
            perms: self.max_perms,
        }
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        let budget = (self.max_perms as usize).min(ctx.max_entries);
        let decomp = Self::decompose(demand, budget);
        if decomp.is_empty() {
            return Schedule::empty();
        }
        // Proportional slot allocation, with truncation of slots that
        // cannot pay for their own reconfiguration.
        let mut kept = decomp;
        loop {
            let k = kept.len();
            if k == 0 {
                return Schedule::empty();
            }
            let usable = ctx.usable_time(k);
            if usable.is_zero() {
                kept.pop();
                continue;
            }
            let total: u64 = kept.iter().map(|&(_, w)| w).sum();
            let slots: Vec<_> = kept
                .iter()
                .map(|&(_, w)| usable.mul_f64(w as f64 / total as f64))
                .collect();
            // Shortest slot is last (kept is sorted by weight desc).
            if let Some(last) = slots.last() {
                if *last < ctx.reconfig && k > 1 {
                    kept.pop();
                    continue;
                }
                if last.is_zero() {
                    kept.pop();
                    continue;
                }
            }
            return Schedule {
                entries: kept
                    .into_iter()
                    .zip(slots)
                    .map(|((perm, _), slot)| ScheduleEntry { perm, slot })
                    .collect(),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate, served_bytes};

    #[test]
    fn permutation_demand_is_one_perm() {
        let mut d = DemandMatrix::zero(4);
        for i in 0..4 {
            d.set(i, (i + 1) % 4, 1000);
        }
        let decomp = BvnScheduler::decompose(&d, 8);
        assert_eq!(decomp.len(), 1);
        assert_eq!(decomp[0].1, 1000);
        assert!(decomp[0].0.is_full());
    }

    #[test]
    fn decomposition_reconstructs_uniform_demand() {
        // A circulant matrix decomposes exactly into rotations.
        let n = 4;
        let mut d = DemandMatrix::zero(n);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    d.set(s, t, 300);
                }
            }
        }
        let decomp = BvnScheduler::decompose(&d, 16);
        let total: u64 = decomp.iter().map(|(p, w)| w * p.assigned() as u64).sum();
        assert_eq!(total, d.total(), "full decomposition covers all demand");
    }

    #[test]
    fn coefficients_are_sorted_desc() {
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 10_000);
        d.set(1, 0, 10_000);
        d.set(2, 3, 10_000);
        d.set(3, 2, 10_000);
        d.set(0, 2, 100); // forces a second, light permutation
        let decomp = BvnScheduler::decompose(&d, 8);
        assert!(decomp.len() >= 2);
        for w in decomp.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn schedule_slots_proportional_to_weights() {
        let mut s = BvnScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        // Heavy pair set and a lighter crossing pair set (3:1).
        d.set(0, 1, 30_000);
        d.set(1, 0, 30_000);
        d.set(0, 2, 10_000);
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        assert!(sched.entries.len() >= 2);
        let s0 = sched.entries[0].slot.as_nanos() as f64;
        let s1 = sched.entries[1].slot.as_nanos() as f64;
        let ratio = s0 / s1;
        assert!((2.0..4.5).contains(&ratio), "slot ratio {ratio} ≉ 3");
    }

    #[test]
    fn drops_slots_smaller_than_reconfig() {
        let mut s = BvnScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 1_000_000);
        d.set(2, 3, 1); // negligible: its proportional slot ≪ reconfig
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        // The negligible permutation must have been truncated away…
        for e in &sched.entries {
            assert!(e.slot >= c.reconfig, "slot {} below reconfig", e.slot);
        }
    }

    #[test]
    fn serves_what_it_promises() {
        let mut s = BvnScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 50_000);
        d.set(1, 2, 50_000);
        d.set(2, 0, 50_000);
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        let served = served_bytes(&sched, &c, 4);
        // Demand is a (partial) permutation: one entry serves all of it.
        // 99 µs at 10 Gb/s = 123 KB ≥ 50 KB per pair.
        for (s_, d_, want) in d.iter_nonzero() {
            assert!(
                served.get(s_, d_) >= want,
                "pair ({s_},{d_}) served {} of {want}",
                served.get(s_, d_)
            );
        }
    }

    #[test]
    fn empty_demand_empty_schedule() {
        let mut s = BvnScheduler::new(4);
        assert!(run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx())
            .entries
            .is_empty());
    }
}
