//! Wavefront arbiter: a systolic matching engine that sweeps the request
//! matrix along (wrapped) diagonals — every cell on a diagonal can decide
//! simultaneously in hardware because its row/column predecessors have
//! already been resolved. One of the cheapest line-rate matchers to build;
//! the sweep origin rotates every call for fairness.

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::{request_matrix, single_entry_schedule, Schedule, ScheduleCtx, Scheduler};

/// Wavefront scheduler state: the rotating priority offset.
#[derive(Debug, Clone)]
pub struct WavefrontScheduler {
    n: usize,
    offset: usize,
}

impl WavefrontScheduler {
    /// Creates a wavefront scheduler for `n` ports.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        WavefrontScheduler { n, offset: 0 }
    }

    /// Computes one matching (wrapped-diagonal sweep from the current
    /// offset).
    pub fn matching(&mut self, requests: &[bool]) -> Permutation {
        let n = self.n;
        let mut in_free = vec![true; n];
        let mut out_free = vec![true; n];
        let mut perm = Permutation::empty(n);
        for d in 0..n {
            for i in 0..n {
                let j = (i + d + self.offset) % n;
                if in_free[i] && out_free[j] && requests[i * n + j] {
                    in_free[i] = false;
                    out_free[j] = false;
                    perm.set(i, j).expect("freedom checks keep it a matching");
                }
            }
        }
        self.offset = (self.offset + 1) % n;
        perm
    }
}

impl Scheduler for WavefrontScheduler {
    fn name(&self) -> &'static str {
        "wavefront"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Wavefront
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        assert_eq!(demand.n(), self.n, "demand size mismatch");
        let requests = request_matrix(demand);
        let perm = self.matching(&requests);
        single_entry_schedule(perm, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    fn full_requests(n: usize) -> Vec<bool> {
        let mut r = vec![true; n * n];
        for i in 0..n {
            r[i * n + i] = false;
        }
        r
    }

    #[test]
    fn matching_is_maximal() {
        // Wavefront always produces a maximal matching: no request pair
        // remains with both endpoints free.
        let mut s = WavefrontScheduler::new(8);
        let r = full_requests(8);
        let m = s.matching(&r);
        for i in 0..8 {
            for j in 0..8 {
                if r[i * 8 + j] {
                    assert!(
                        m.output_of(i).is_some() || m.input_of(j).is_some(),
                        "pair ({i},{j}) requested but both free"
                    );
                }
            }
        }
    }

    #[test]
    fn offset_rotation_gives_fairness() {
        let n = 4;
        let mut s = WavefrontScheduler::new(n);
        let mut requests = vec![false; n * n];
        for i in 1..4 {
            requests[i * n] = true; // all want output 0
        }
        let mut wins = vec![0u32; n];
        for _ in 0..30 {
            if let Some(i) = s.matching(&requests).input_of(0) {
                wins[i] += 1;
            }
        }
        for (i, &w) in wins.iter().enumerate().skip(1) {
            assert!(w >= 5, "input {i} starved: {w}");
        }
    }

    #[test]
    fn respects_requests_and_validates() {
        let mut s = WavefrontScheduler::new(4);
        let mut demand = DemandMatrix::zero(4);
        demand.set(1, 2, 5);
        demand.set(2, 1, 5);
        let sched = run_and_validate(&mut s, &demand, &ctx());
        let p = &sched.entries[0].perm;
        assert_eq!(p.assigned(), 2);
        assert_eq!(p.output_of(1), Some(2));
        assert_eq!(p.output_of(2), Some(1));
    }
}
