//! Solstice-style greedy hybrid decomposition.
//!
//! Solstice (Liu et al., CoNEXT'15 — the scheduler built for exactly the
//! hybrid ToR this paper's framework targets) greedily extracts circuit
//! configurations that serve *big* demand entries first, using threshold
//! halving: try to match only entries ≥ t, halving t until a matching
//! exists; the slot length is set so the smallest matched entry is fully
//! served; what remains after the configuration budget rides the EPS.
//!
//! Divergence from the published algorithm (documented per DESIGN.md):
//! Solstice first *stuffs* the matrix to make perfect matchings exist; we
//! accept maximal (possibly partial) matchings instead — unmatched ports
//! simply idle during the slot, which preserves the big-flows-first
//! behaviour without the stuffing bookkeeping.
//!
//! [`reference_schedule`] is the executable specification: a dense,
//! state-free transcription of the loop above. [`SolsticeScheduler`] is
//! the production implementation — value-bucketed worklists, incremental
//! probe sets and an epoch-to-epoch matching memo — and is pinned
//! schedule-for-schedule equal to the reference by a differential
//! proptest (`tests/solstice_differential.rs`).

use std::time::Instant;

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;
use crate::trace::{SchedObs, SchedSpan};

use super::matching::{hopcroft_karp, hopcroft_karp_csr, MatchingWorkspace};
use super::{Schedule, ScheduleCtx, ScheduleEntry, Scheduler};

/// Bucket index of a non-zero residual value: `floor(log2 v)`, so bucket
/// `k` holds exactly the values in `[2^k, 2^(k+1))`. The threshold-
/// halving loop probes `t = 2^k`, which makes "entries ≥ t" precisely
/// the union of buckets `k..=63`.
#[inline]
fn bucket_of(v: u64) -> usize {
    debug_assert!(v > 0);
    63 - v.leading_zeros() as usize
}

/// One remembered `(edge set, matching)` pair from a previous epoch.
///
/// [`hopcroft_karp_csr`] is a pure deterministic function of the CSR
/// adjacency, so when an entry's probe produces the *identical* edge set
/// as last epoch (steady demand — the common case between traffic
/// shifts), replaying the remembered matching is byte-for-byte what the
/// matching run would have produced, at the cost of one `O(E)` compare.
/// This is the sound form of warm-starting the matcher: seeding it with
/// a stale matching over a *different* edge set could change which
/// maximum matching it lands on and break schedule determinism.
#[derive(Debug, Clone, Default)]
struct EntryMemo {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    perm: Option<Permutation>,
}

/// Solstice-style scheduler.
///
/// The epoch path is built to stay sublinear in `n²` in practice:
///
/// * the residual worklist comes from the demand's tracked support when
///   available ([`DemandMatrix::support`]) — the dense `n²` scan per
///   epoch that dominated kilofabric decompose time is the fallback,
///   not the norm — and the residual matrix itself resets by worklist
///   ([`DemandMatrix::clear_sparse`]);
/// * the worklist is **value-bucketed** by `floor(log2)`: the first
///   probe of every entry visits exactly the top bucket (the cells ≥
///   the starting threshold), and each halving step appends only the
///   newly-eligible bucket instead of rescanning every non-zero cell;
/// * matchings are memoized across epochs per entry index: an unchanged
///   edge set replays last epoch's matching without rerunning
///   Hopcroft–Karp (see [`EntryMemo`]).
#[derive(Debug, Clone)]
pub struct SolsticeScheduler {
    max_perms: u32,
    /// Port count the internal state is sized for; a change resets the
    /// residual, buckets and memos (the warm-start state is meaningless
    /// across fabric sizes).
    n: usize,
    /// Residual demand, reused across epochs, support-tracked so the
    /// per-epoch reset clears exactly last epoch's cells.
    work: DemandMatrix,
    /// `buckets[k]`: flat cell indices whose residual is in
    /// `[2^k, 2^(k+1))`. Entries go stale in place when `sub` moves a
    /// cell's value down; scans filter on `bucket_of(value) == k` and
    /// compact as they go, and movers are re-pushed into their new
    /// bucket — each cell is re-bucketed at most once per serving.
    buckets: Vec<Vec<u32>>,
    /// Highest bucket that may be non-empty (values only decrease within
    /// an epoch, so this only descends until the next epoch refill).
    top: usize,
    /// The current probe's eligible cells (buckets `k..=top`), kept
    /// sorted row-major so the CSR adjacency is identical to the one a
    /// dense `≥ t` predicate scan would build.
    probe: Vec<u32>,
    /// Per-entry-index matching memos from the previous epoch.
    memos: Vec<EntryMemo>,
    ws: MatchingWorkspace,
    /// Flight-recorder channel, drained by the runtime via
    /// [`Scheduler::take_obs`]. Counters are pure functions of the
    /// demand sequence (deterministic, always maintained); spans carry
    /// wall-clock instants and are captured only when `trace_on`.
    obs: SchedObs,
    trace_on: bool,
}

impl SolsticeScheduler {
    /// Creates the scheduler with a configuration budget per epoch.
    pub fn new(max_perms: u32) -> Self {
        assert!(max_perms >= 1);
        SolsticeScheduler {
            max_perms,
            n: 0,
            work: DemandMatrix::zero_tracked(1),
            buckets: (0..64).map(|_| Vec::new()).collect(),
            top: 0,
            probe: Vec::new(),
            memos: Vec::new(),
            ws: MatchingWorkspace::default(),
            obs: SchedObs::default(),
            trace_on: false,
        }
    }

    /// Drops stale entries (zeroed or moved-down cells) from bucket `b`.
    fn compact_bucket(&mut self, b: usize) {
        let work = self.work.as_slice();
        self.buckets[b].retain(|&idx| {
            let v = work[idx as usize];
            v > 0 && bucket_of(v) == b
        });
    }

    /// The highest non-empty bucket after compaction, or `None` when the
    /// whole residual is zero.
    fn highest_bucket(&mut self) -> Option<usize> {
        loop {
            self.compact_bucket(self.top);
            if !self.buckets[self.top].is_empty() {
                return Some(self.top);
            }
            if self.top == 0 {
                return None;
            }
            self.top -= 1;
        }
    }

    /// Rebuilds the residual and the value buckets from this epoch's
    /// demand, via its tracked support when it has one.
    fn load_epoch(&mut self, demand: &DemandMatrix) {
        self.work.clear_sparse();
        for b in &mut self.buckets {
            b.clear();
        }
        self.top = 0;
        let values = demand.as_slice();
        let place = |work: &mut DemandMatrix,
                     buckets: &mut [Vec<u32>],
                     top: &mut usize,
                     idx: usize,
                     v: u64| {
            work.set_cell(idx, v);
            let b = bucket_of(v);
            buckets[b].push(idx as u32);
            *top = (*top).max(b);
        };
        match demand.support() {
            Some(cells) => {
                // The support is a superset in insertion order; zeros are
                // skipped and ordering is irrelevant here (probes sort).
                for &idx in cells {
                    let v = values[idx as usize];
                    if v > 0 {
                        place(
                            &mut self.work,
                            &mut self.buckets,
                            &mut self.top,
                            idx as usize,
                            v,
                        );
                    }
                }
            }
            None => {
                for (idx, &v) in values.iter().enumerate() {
                    if v > 0 {
                        place(&mut self.work, &mut self.buckets, &mut self.top, idx, v);
                    }
                }
            }
        }
    }

    /// Runs the matcher over the workspace's CSR adjacency, replaying
    /// the memoized matching when entry `e` saw the identical edge set
    /// last epoch.
    fn match_probe(&mut self, n: usize, e: usize) -> Permutation {
        // xlint: allow(wall-clock) — flight-recorder matching-span start, gated on trace_on; wall-clock never reaches the simulation domain
        let t0 = self.trace_on.then(Instant::now);
        let edges = self.ws.adj_targets.len() as u64;
        if let Some(m) = self.memos.get(e) {
            if let Some(perm) = &m.perm {
                if m.offsets == self.ws.adj_offsets && m.targets == self.ws.adj_targets {
                    self.obs.memo_hits += 1;
                    if let Some(t0) = t0 {
                        self.obs.spans.push(SchedSpan {
                            name: "match_memo",
                            start: t0,
                            // xlint: allow(wall-clock) — flight-recorder span end, trace-gated
                            end: Instant::now(),
                            arg: ("edges", edges),
                        });
                    }
                    return perm.clone();
                }
            }
        }
        let perm = hopcroft_karp_csr(n, &mut self.ws);
        self.obs.hk_runs += 1;
        if let Some(t0) = t0 {
            self.obs.spans.push(SchedSpan {
                name: "match_hk",
                start: t0,
                // xlint: allow(wall-clock) — flight-recorder span end, trace-gated
                end: Instant::now(),
                arg: ("edges", edges),
            });
        }
        if self.memos.len() <= e {
            self.memos.resize_with(e + 1, EntryMemo::default);
        }
        let memo = &mut self.memos[e];
        memo.offsets.clear();
        memo.offsets.extend_from_slice(&self.ws.adj_offsets);
        memo.targets.clear();
        memo.targets.extend_from_slice(&self.ws.adj_targets);
        memo.perm = Some(perm.clone());
        perm
    }
}

impl Scheduler for SolsticeScheduler {
    fn name(&self) -> &'static str {
        "solstice"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Solstice {
            perms: self.max_perms,
        }
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        let n = demand.n();
        if self.n != n {
            // Port-count change: every piece of warm-start state (the
            // residual, the buckets, the matching memos) is sized and
            // meaningful only for one fabric — rebuild from scratch.
            self.n = n;
            self.work = DemandMatrix::zero_tracked(n);
            for b in &mut self.buckets {
                b.clear();
            }
            self.memos.clear();
            self.top = 0;
        }
        self.load_epoch(demand);
        // Per-epoch load shape for the counter registry: entries loaded
        // and populated value buckets (peak since the last drain — the
        // runtime drains every epoch).
        let worklist: usize = self.buckets.iter().map(Vec::len).sum();
        let populated = self.buckets.iter().filter(|b| !b.is_empty()).count();
        self.obs.worklist_len = self.obs.worklist_len.max(worklist as u64);
        self.obs.buckets_len = self.obs.buckets_len.max(populated as u64);

        let mut entries: Vec<ScheduleEntry> = Vec::new();
        let budget = (self.max_perms as usize).min(ctx.max_entries);
        let mut remaining = ctx.epoch;

        while entries.len() < budget {
            // The top bucket holds the max residual entry; an empty
            // ladder means the residual is fully decomposed.
            let Some(k_top) = self.highest_bucket() else {
                break;
            };
            // A slot must at least pay for its reconfiguration.
            if remaining <= ctx.reconfig * 2 {
                break;
            }
            // Threshold halving, t = 2^k from the top bucket down:
            // "entries ≥ t" is exactly buckets k..=k_top, so the first
            // probe is the (already compacted) top bucket and each
            // halving appends only the newly-eligible bucket. Because
            // this variant accepts maximal *partial* matchings, a
            // non-empty probe always matches ≥ 1 pair and the first
            // probe decides — the halving arm below preserves the
            // published algorithm's shape (and would go live if matrix
            // stuffing / perfect matchings were ever added), mirroring
            // `reference_schedule` exactly.
            self.probe.clear();
            self.probe.extend_from_slice(&self.buckets[k_top]);
            let mut k = k_top;
            let perm = loop {
                // xlint: allow(wall-clock) — flight-recorder probe-span start, gated on trace_on
                let t0 = self.trace_on.then(Instant::now);
                // Row-major edge order: the matching is identical to the
                // one a dense `≥ t` predicate scan would produce.
                self.probe.sort_unstable();
                self.ws.build_adjacency(
                    n,
                    self.probe
                        .iter()
                        .map(|&idx| (idx as usize / n, idx as usize % n)),
                );
                let m = self.match_probe(n, entries.len());
                self.obs.probes += 1;
                if let Some(t0) = t0 {
                    self.obs.spans.push(SchedSpan {
                        name: "probe",
                        start: t0,
                        // xlint: allow(wall-clock) — flight-recorder span end, trace-gated
                        end: Instant::now(),
                        arg: ("cells", self.probe.len() as u64),
                    });
                }
                if !m.is_empty() || k == 0 {
                    break m;
                }
                k -= 1;
                self.compact_bucket(k);
                self.probe.extend_from_slice(&self.buckets[k]);
            };
            if perm.is_empty() {
                break;
            }
            // Slot sized to fully drain the smallest matched entry.
            let min_matched = perm
                .pairs()
                .map(|(i, j)| self.work.get(i, j))
                .min()
                .expect("non-empty");
            let want = ctx.line_rate.tx_time(min_matched);
            let slot = want
                .max(ctx.reconfig) // don't bother with slots below the dark cost
                .min(remaining.saturating_sub(ctx.reconfig));
            if slot.is_zero() {
                break;
            }
            let served = ctx.slot_bytes(slot);
            for (i, j) in perm.pairs() {
                let old = self.work.get(i, j);
                self.work.sub(i, j, served);
                let new = old.saturating_sub(served);
                // Re-bucket movers; fully-drained cells just go stale in
                // their old bucket and fall out at the next compaction.
                if new > 0 && bucket_of(new) != bucket_of(old) {
                    self.buckets[bucket_of(new)].push((i * n + j) as u32);
                }
            }
            remaining = remaining.saturating_sub(slot + ctx.reconfig);
            entries.push(ScheduleEntry { perm, slot });
        }
        Schedule { entries }
    }

    fn set_trace(&mut self, on: bool) {
        self.trace_on = on;
    }

    fn take_obs(&mut self) -> Option<SchedObs> {
        if self.obs.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut self.obs))
    }
}

/// The straightforward reference Solstice: a dense residual copy, a full
/// worklist rescan per threshold probe and a cold Hopcroft–Karp per
/// matching — the textbook transcription of the decomposition loop, kept
/// free of every optimization the production scheduler layers on. The
/// differential proptest pins [`SolsticeScheduler`] equal to this
/// schedule-for-schedule; any optimization that drifts from it is a bug
/// by definition.
pub fn reference_schedule(demand: &DemandMatrix, ctx: &ScheduleCtx, max_perms: u32) -> Schedule {
    assert!(max_perms >= 1);
    let n = demand.n();
    let mut work = DemandMatrix::zero(n);
    work.copy_from_slice(demand.as_slice());
    let mut entries: Vec<ScheduleEntry> = Vec::new();
    let budget = (max_perms as usize).min(ctx.max_entries);
    let mut remaining = ctx.epoch;

    while entries.len() < budget {
        let max_e = work.as_slice().iter().copied().max().unwrap_or(0);
        if max_e == 0 {
            break;
        }
        if remaining <= ctx.reconfig * 2 {
            break;
        }
        let mut t = 1u64 << (63 - max_e.leading_zeros());
        let perm = loop {
            let m = hopcroft_karp(n, |i, j| work.get(i, j) >= t);
            if !m.is_empty() || t == 1 {
                break m;
            }
            t /= 2;
        };
        if perm.is_empty() {
            break;
        }
        let min_matched = perm
            .pairs()
            .map(|(i, j)| work.get(i, j))
            .min()
            .expect("non-empty");
        let want = ctx.line_rate.tx_time(min_matched);
        let slot = want
            .max(ctx.reconfig)
            .min(remaining.saturating_sub(ctx.reconfig));
        if slot.is_zero() {
            break;
        }
        let served = ctx.slot_bytes(slot);
        for (i, j) in perm.pairs() {
            work.sub(i, j, served);
        }
        remaining = remaining.saturating_sub(slot + ctx.reconfig);
        entries.push(ScheduleEntry { perm, slot });
    }
    Schedule { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate, served_bytes};

    #[test]
    fn big_entries_get_circuits_first() {
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 100_000); // elephant
        d.set(2, 3, 200); // mouse
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        assert!(!sched.entries.is_empty());
        let first = &sched.entries[0].perm;
        assert_eq!(first.output_of(0), Some(1), "elephant pair first");
    }

    #[test]
    fn drains_a_pure_permutation_demand() {
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        for i in 0..4 {
            d.set(i, (i + 1) % 4, 60_000);
        }
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        let served = served_bytes(&sched, &c, 4);
        for (s_, d_, want) in d.iter_nonzero() {
            assert!(served.get(s_, d_) >= want);
        }
        // One configuration suffices for a permutation.
        assert_eq!(sched.entries.len(), 1);
    }

    #[test]
    fn respects_entry_budget() {
        let mut s = SolsticeScheduler::new(2);
        let mut d = DemandMatrix::zero(6);
        // Demand needing many distinct configurations.
        let mut v = 10_000;
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    d.set(i, j, v);
                    v += 1_000;
                }
            }
        }
        let sched = run_and_validate(&mut s, &d, &ctx());
        assert!(sched.entries.len() <= 2);
    }

    #[test]
    fn residual_demand_is_left_for_eps() {
        // More demand than an epoch can carry: the schedule must fit the
        // epoch and leave the rest unserved (the hybrid residual).
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 10_000_000); // 8 ms at 10 Gb/s >> 100 µs epoch
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        let span = sched.span(c.reconfig);
        assert!(span <= c.epoch + c.reconfig);
        let served = served_bytes(&sched, &c, 4).get(0, 1);
        assert!(served < 10_000_000);
        assert!(served > 0);
    }

    #[test]
    fn threshold_halving_reaches_small_entries_when_room_remains() {
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 50_000);
        d.set(1, 0, 31); // tiny, not a power of two
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        let served = served_bytes(&sched, &c, 4);
        assert!(served.get(1, 0) >= 31, "tiny entry eventually served");
    }

    #[test]
    fn empty_demand_empty_schedule() {
        let mut s = SolsticeScheduler::new(4);
        assert!(run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx())
            .entries
            .is_empty());
    }

    #[test]
    fn matches_reference_across_epochs_with_demand_drift() {
        // A hand-rolled multi-epoch sequence (the proptest covers the
        // random space): steady demand (memo replay), then a shift
        // (memo miss), each epoch compared against the stateless
        // reference.
        let c = ctx();
        let mut s = SolsticeScheduler::new(4);
        let mut d = DemandMatrix::zero_tracked(6);
        d.set(0, 3, 90_000);
        d.set(1, 4, 70_000);
        d.set(2, 5, 200);
        for epoch in 0..4 {
            if epoch == 2 {
                // The hotspot jumps: old cells drain, new ones appear.
                d.set(0, 3, 0);
                d.set(3, 0, 120_000);
                d.set(2, 5, 45_000);
            }
            let got = s.schedule(&d, &c);
            let want = reference_schedule(&d, &c, 4);
            assert_eq!(got, want, "epoch {epoch} diverged from reference");
        }
    }

    #[test]
    fn identical_epochs_replay_identical_schedules() {
        // The memo path must be invisible: scheduling the same demand
        // twice yields byte-identical schedules (and matches a fresh
        // scheduler, which cannot have a memo).
        let c = ctx();
        let mut d = DemandMatrix::zero(5);
        d.set(0, 1, 64_000);
        d.set(1, 2, 64_000); // equal values: matching choice matters
        d.set(2, 0, 31_000);
        let mut warm = SolsticeScheduler::new(8);
        let first = warm.schedule(&d, &c);
        let second = warm.schedule(&d, &c);
        assert_eq!(first, second, "memo replay drifted");
        let fresh = SolsticeScheduler::new(8).schedule(&d, &c);
        assert_eq!(first, fresh, "warm state drifted from cold state");
    }

    #[test]
    fn observability_counts_probes_and_memo_replays() {
        let c = ctx();
        let mut s = SolsticeScheduler::new(4);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 64_000);
        d.set(2, 3, 8_000);
        let _ = s.schedule(&d, &c);
        let first = s.take_obs().expect("first epoch reports");
        assert!(first.hk_runs >= 1, "cold epoch must run the matcher");
        assert_eq!(first.memo_hits, 0, "nothing to replay cold");
        assert!(first.probes >= first.hk_runs + first.memo_hits);
        assert_eq!(first.worklist_len, 2);
        assert!(first.spans.is_empty(), "spans need set_trace(true)");
        // Identical epoch: the memo replays, and tracing captures spans.
        s.set_trace(true);
        let _ = s.schedule(&d, &c);
        let second = s.take_obs().expect("second epoch reports");
        assert!(second.memo_hits >= 1, "steady demand must replay");
        assert!(!second.spans.is_empty(), "tracing captures spans");
        assert!(second.spans.iter().any(|sp| sp.name == "probe"));
        assert!(second.spans.iter().any(|sp| sp.name == "match_memo"));
        // Drained means drained.
        assert!(s.take_obs().is_none());
    }

    #[test]
    fn port_count_change_resets_warm_state() {
        // The warm-start satellite: residual, buckets and memos from a
        // 4-port epoch must not leak into an 8-port epoch.
        let c = ctx();
        let mut d4 = DemandMatrix::zero(4);
        d4.set(0, 1, 80_000);
        d4.set(2, 3, 40_000);
        let mut s = SolsticeScheduler::new(8);
        let _ = s.schedule(&d4, &c);
        let mut d8 = DemandMatrix::zero(8);
        d8.set(0, 5, 70_000);
        d8.set(6, 1, 70_000);
        d8.set(3, 2, 900);
        let got = s.schedule(&d8, &c);
        let want = SolsticeScheduler::new(8).schedule(&d8, &c);
        assert_eq!(got, want, "stale warm state survived the port change");
        assert_eq!(got, reference_schedule(&d8, &c, 8));
        // And back down again.
        let back = s.schedule(&d4, &c);
        assert_eq!(back, reference_schedule(&d4, &c, 4));
    }

    #[test]
    fn tracked_and_untracked_demand_schedule_identically() {
        let c = ctx();
        let mut dense = DemandMatrix::zero(6);
        let mut tracked = DemandMatrix::zero_tracked(6);
        for (i, j, v) in [(0, 2, 55_000u64), (4, 1, 8_000), (5, 0, 130_000)] {
            dense.set(i, j, v);
            tracked.set(i, j, v);
        }
        // Stale support entries must not matter either.
        tracked.set(3, 3, 1);
        tracked.set(3, 3, 0);
        let a = SolsticeScheduler::new(4).schedule(&dense, &c);
        let b = SolsticeScheduler::new(4).schedule(&tracked, &c);
        assert_eq!(a, b);
        assert_eq!(a, reference_schedule(&dense, &c, 4));
    }
}
