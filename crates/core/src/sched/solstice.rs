//! Solstice-style greedy hybrid decomposition.
//!
//! Solstice (Liu et al., CoNEXT'15 — the scheduler built for exactly the
//! hybrid ToR this paper's framework targets) greedily extracts circuit
//! configurations that serve *big* demand entries first, using threshold
//! halving: try to match only entries ≥ t, halving t until a matching
//! exists; the slot length is set so the smallest matched entry is fully
//! served; what remains after the configuration budget rides the EPS.
//!
//! Divergence from the published algorithm (documented per DESIGN.md):
//! Solstice first *stuffs* the matrix to make perfect matchings exist; we
//! accept maximal (possibly partial) matchings instead — unmatched ports
//! simply idle during the slot, which preserves the big-flows-first
//! behaviour without the stuffing bookkeeping.

use xds_hw::HwAlgo;

use crate::demand::DemandMatrix;

use super::matching::{hopcroft_karp_csr, MatchingWorkspace};
use super::{Schedule, ScheduleCtx, ScheduleEntry, Scheduler};

/// Solstice-style scheduler.
///
/// The decomposition loop operates on a **sparse worklist** of the
/// demand's non-zero cells (collected in one pass per epoch) plus a dense
/// residual copy for point lookups, with a reused matching workspace —
/// at 256 ports the original dense formulation re-scanned the full `n²`
/// matrix once per threshold probe and allocated adjacency lists per
/// matching, and this path runs every epoch.
#[derive(Debug, Clone)]
pub struct SolsticeScheduler {
    max_perms: u32,
    /// Residual demand, reused across epochs (resized on port change).
    work: Option<DemandMatrix>,
    /// Row-major positions of the epoch's non-zero cells; values are read
    /// from `work` so `sub` updates are seen without list maintenance.
    nonzero: Vec<u32>,
    ws: MatchingWorkspace,
}

impl SolsticeScheduler {
    /// Creates the scheduler with a configuration budget per epoch.
    pub fn new(max_perms: u32) -> Self {
        assert!(max_perms >= 1);
        SolsticeScheduler {
            max_perms,
            work: None,
            nonzero: Vec::new(),
            ws: MatchingWorkspace::default(),
        }
    }
}

impl Scheduler for SolsticeScheduler {
    fn name(&self) -> &'static str {
        "solstice"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Solstice {
            perms: self.max_perms,
        }
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        let n = demand.n();
        // The residual matrix persists across epochs and is reset
        // *sparsely*: only last epoch's non-zero cells can hold residue
        // (`sub` never touches other cells), so zeroing that worklist and
        // writing this epoch's non-zero cells rebuilds the residual
        // without a dense `n²` copy — on large fabrics with sparse
        // demand that copy was half the scheduler's epoch cost.
        let work = match &mut self.work {
            Some(w) if w.n() == n => {
                for &idx in &self.nonzero {
                    w.clear_cell(idx as usize);
                }
                w
            }
            slot => slot.insert(DemandMatrix::zero(n)),
        };
        self.nonzero.clear();
        for (idx, &v) in demand.as_slice().iter().enumerate() {
            if v > 0 {
                self.nonzero.push(idx as u32);
                work.set_cell(idx, v);
            }
        }
        let mut entries: Vec<ScheduleEntry> = Vec::new();
        let budget = (self.max_perms as usize).min(ctx.max_entries);
        let mut remaining = ctx.epoch;

        while entries.len() < budget {
            let max_e = self
                .nonzero
                .iter()
                .map(|&idx| work.as_slice()[idx as usize])
                .max()
                .unwrap_or(0);
            if max_e == 0 {
                break;
            }
            // A slot must at least pay for its reconfiguration.
            if remaining <= ctx.reconfig * 2 {
                break;
            }
            // Threshold halving: largest power of two ≤ max entry, lowered
            // until a matching exists among entries ≥ t.
            let mut t = 1u64 << (63 - max_e.leading_zeros());
            let perm = loop {
                // The worklist is row-major, so the CSR rows match the
                // order the dense predicate scan produced — the matching
                // is identical.
                self.ws.build_adjacency(
                    n,
                    self.nonzero
                        .iter()
                        .map(|&idx| idx as usize)
                        .filter(|&idx| work.as_slice()[idx] >= t)
                        .map(|idx| (idx / n, idx % n)),
                );
                let m = hopcroft_karp_csr(n, &mut self.ws);
                if !m.is_empty() || t == 1 {
                    break m;
                }
                t /= 2;
            };
            if perm.is_empty() {
                break;
            }
            // Slot sized to fully drain the smallest matched entry.
            let min_matched = perm
                .pairs()
                .map(|(i, j)| work.get(i, j))
                .min()
                .expect("non-empty");
            let want = ctx.line_rate.tx_time(min_matched);
            let slot = want
                .max(ctx.reconfig) // don't bother with slots below the dark cost
                .min(remaining.saturating_sub(ctx.reconfig));
            if slot.is_zero() {
                break;
            }
            let served = ctx.slot_bytes(slot);
            for (i, j) in perm.pairs() {
                work.sub(i, j, served);
            }
            remaining = remaining.saturating_sub(slot + ctx.reconfig);
            entries.push(ScheduleEntry { perm, slot });
        }
        Schedule { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate, served_bytes};

    #[test]
    fn big_entries_get_circuits_first() {
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 100_000); // elephant
        d.set(2, 3, 200); // mouse
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        assert!(!sched.entries.is_empty());
        let first = &sched.entries[0].perm;
        assert_eq!(first.output_of(0), Some(1), "elephant pair first");
    }

    #[test]
    fn drains_a_pure_permutation_demand() {
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        for i in 0..4 {
            d.set(i, (i + 1) % 4, 60_000);
        }
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        let served = served_bytes(&sched, &c, 4);
        for (s_, d_, want) in d.iter_nonzero() {
            assert!(served.get(s_, d_) >= want);
        }
        // One configuration suffices for a permutation.
        assert_eq!(sched.entries.len(), 1);
    }

    #[test]
    fn respects_entry_budget() {
        let mut s = SolsticeScheduler::new(2);
        let mut d = DemandMatrix::zero(6);
        // Demand needing many distinct configurations.
        let mut v = 10_000;
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    d.set(i, j, v);
                    v += 1_000;
                }
            }
        }
        let sched = run_and_validate(&mut s, &d, &ctx());
        assert!(sched.entries.len() <= 2);
    }

    #[test]
    fn residual_demand_is_left_for_eps() {
        // More demand than an epoch can carry: the schedule must fit the
        // epoch and leave the rest unserved (the hybrid residual).
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 10_000_000); // 8 ms at 10 Gb/s >> 100 µs epoch
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        let span = sched.span(c.reconfig);
        assert!(span <= c.epoch + c.reconfig);
        let served = served_bytes(&sched, &c, 4).get(0, 1);
        assert!(served < 10_000_000);
        assert!(served > 0);
    }

    #[test]
    fn threshold_halving_reaches_small_entries_when_room_remains() {
        let mut s = SolsticeScheduler::new(8);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 50_000);
        d.set(1, 0, 31); // tiny, not a power of two
        let c = ctx();
        let sched = run_and_validate(&mut s, &d, &c);
        let served = served_bytes(&sched, &c, 4);
        assert!(served.get(1, 0) >= 31, "tiny entry eventually served");
    }

    #[test]
    fn empty_demand_empty_schedule() {
        let mut s = SolsticeScheduler::new(4);
        assert!(run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx())
            .entries
            .is_empty());
    }
}
