//! Greedy longest-queue-first maximal weight matching: sort pairs by
//! demand, take every pair whose ports are still free. A ½-approximation
//! of maximum weight matching, and the decomposition step inside many
//! practical circuit schedulers.

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::{single_entry_schedule, Schedule, ScheduleCtx, Scheduler};

/// Greedy LQF scheduler (stateless).
#[derive(Debug, Clone, Default)]
pub struct GreedyLqfScheduler;

impl GreedyLqfScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        GreedyLqfScheduler
    }

    /// Computes the greedy maximal matching by descending demand.
    /// Ties break on `(src, dst)` so runs are deterministic.
    pub fn matching(demand: &DemandMatrix) -> Permutation {
        let n = demand.n();
        let mut edges: Vec<(u64, usize, usize)> =
            demand.iter_nonzero().map(|(s, d, b)| (b, s, d)).collect();
        edges.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut in_free = vec![true; n];
        let mut out_free = vec![true; n];
        let mut perm = Permutation::empty(n);
        for (_, s, d) in edges {
            if in_free[s] && out_free[d] {
                in_free[s] = false;
                out_free[d] = false;
                perm.set(s, d).expect("freedom checks keep it a matching");
            }
        }
        perm
    }
}

impl Scheduler for GreedyLqfScheduler {
    fn name(&self) -> &'static str {
        "greedy_lqf"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::GreedyLqf
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        single_entry_schedule(Self::matching(demand), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    #[test]
    fn picks_heaviest_compatible_pairs() {
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 1000);
        d.set(0, 2, 900); // loses: input 0 taken
        d.set(1, 2, 800);
        d.set(2, 1, 700); // loses: output 1 taken
        d.set(2, 3, 600);
        let m = GreedyLqfScheduler::matching(&d);
        assert_eq!(m.output_of(0), Some(1));
        assert_eq!(m.output_of(1), Some(2));
        assert_eq!(m.output_of(2), Some(3));
    }

    #[test]
    fn matching_is_maximal() {
        let mut d = DemandMatrix::zero(6);
        let mut v = 1;
        for s in 0..6 {
            for t in 0..6 {
                if s != t {
                    d.set(s, t, v);
                    v += 1;
                }
            }
        }
        let m = GreedyLqfScheduler::matching(&d);
        assert!(m.is_full(), "dense demand must fill the matching");
    }

    #[test]
    fn greedy_is_half_approx_not_optimal() {
        // The classic trap (see hungarian tests): greedy total 10 vs
        // optimal 18 — documents the trade the hardware-friendly
        // algorithm makes.
        let mut d = DemandMatrix::zero(2);
        d.set(0, 0, 10);
        d.set(0, 1, 9);
        d.set(1, 0, 9);
        let m = GreedyLqfScheduler::matching(&d);
        let total: u64 = m.pairs().map(|(i, j)| d.get(i, j)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 100);
        d.set(1, 0, 100);
        d.set(2, 3, 100);
        let a = GreedyLqfScheduler::matching(&d);
        let b = GreedyLqfScheduler::matching(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn schedules_validate() {
        let mut s = GreedyLqfScheduler::new();
        let mut d = DemandMatrix::zero(4);
        d.set(0, 3, 42);
        let sched = run_and_validate(&mut s, &d, &ctx());
        assert_eq!(sched.entries.len(), 1);
        assert!(run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx())
            .entries
            .is_empty());
    }
}
