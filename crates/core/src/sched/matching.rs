//! Bipartite matching primitives shared by the decomposition schedulers.
//!
//! * [`max_cardinality`] — Kuhn's augmenting-path algorithm, O(V·E);
//!   used by BvN (find a permutation on the support) and Solstice
//!   (find a matching among entries ≥ threshold).
//! * [`hopcroft_karp`] — the O(E·√V) maximum-cardinality algorithm;
//!   produces matchings of identical size to Kuhn's (both are maximum)
//!   but scales to the 256-port instances of E7.
//! * [`max_weight_assignment`] — the Hungarian algorithm (Jonker-
//!   Volgenant-style potentials), O(n³); exact maximum-weight perfect
//!   matching for the Helios-class single-assignment schedulers.

use std::collections::VecDeque;

use xds_switch::Permutation;

/// Maximum-cardinality bipartite matching over an adjacency predicate.
///
/// `adj(i, j)` answers whether input `i` may be matched to output `j`.
/// Returns the matching as a [`Permutation`] (possibly partial).
pub fn max_cardinality<F: Fn(usize, usize) -> bool>(n: usize, adj: F) -> Permutation {
    let mut match_out: Vec<Option<usize>> = vec![None; n]; // output -> input
    let mut match_in: Vec<Option<usize>> = vec![None; n]; // input -> output

    fn try_augment<F: Fn(usize, usize) -> bool>(
        i: usize,
        n: usize,
        adj: &F,
        visited: &mut [bool],
        match_out: &mut [Option<usize>],
        match_in: &mut [Option<usize>],
    ) -> bool {
        for j in 0..n {
            if adj(i, j) && !visited[j] {
                visited[j] = true;
                let free = match match_out[j] {
                    None => true,
                    Some(other) => try_augment(other, n, adj, visited, match_out, match_in),
                };
                if free {
                    match_out[j] = Some(i);
                    match_in[i] = Some(j);
                    return true;
                }
            }
        }
        false
    }

    for i in 0..n {
        let mut visited = vec![false; n];
        try_augment(i, n, &adj, &mut visited, &mut match_out, &mut match_in);
    }

    let mut p = Permutation::empty(n);
    for (i, jo) in match_in.iter().enumerate() {
        if let Some(j) = jo {
            p.set(i, *j).expect("matching is conflict-free");
        }
    }
    p
}

/// Reusable buffers for [`hopcroft_karp_csr`]: a scheduler that runs a
/// matching per schedule entry per epoch holds one of these so the inner
/// loop performs no allocation.
#[derive(Debug, Default, Clone)]
pub struct MatchingWorkspace {
    /// CSR row offsets (`n + 1` entries) into `adj_targets`.
    pub adj_offsets: Vec<u32>,
    /// CSR edge targets, rows concatenated in input order.
    pub adj_targets: Vec<u32>,
    match_in: Vec<usize>,
    match_out: Vec<usize>,
    dist: Vec<u32>,
    queue: VecDeque<usize>,
}

impl MatchingWorkspace {
    /// Clears and refills the CSR adjacency from an iterator of edges in
    /// **row-major order** (all edges of input 0, then input 1, …) —
    /// exactly the order the predicate-driven builder visited them, so
    /// the matching is identical.
    pub fn build_adjacency(&mut self, n: usize, edges: impl Iterator<Item = (usize, usize)>) {
        self.adj_offsets.clear();
        self.adj_targets.clear();
        self.adj_offsets.resize(n + 1, 0);
        let mut row = 0usize;
        for (i, j) in edges {
            debug_assert!(i >= row, "edges must arrive in row-major order");
            while row < i {
                row += 1;
                self.adj_offsets[row] = self.adj_targets.len() as u32;
            }
            self.adj_targets.push(j as u32);
        }
        while row < n {
            row += 1;
            self.adj_offsets[row] = self.adj_targets.len() as u32;
        }
    }
}

/// Maximum-cardinality bipartite matching via Hopcroft–Karp, O(E·√V).
///
/// Functionally interchangeable with [`max_cardinality`] (both return a
/// maximum matching; the *set* of edges may differ) but asymptotically
/// faster, which matters for the large-port decompositions of E7.
pub fn hopcroft_karp<F: Fn(usize, usize) -> bool>(n: usize, adj: F) -> Permutation {
    let adj = &adj;
    let mut ws = MatchingWorkspace::default();
    ws.build_adjacency(
        n,
        (0..n).flat_map(|i| (0..n).filter(move |&j| adj(i, j)).map(move |j| (i, j))),
    );
    hopcroft_karp_csr(n, &mut ws)
}

/// [`hopcroft_karp`] over a pre-built CSR adjacency with reused buffers —
/// the allocation-free form the hybrid decomposition schedulers call once
/// per schedule entry per epoch. Fill `ws` via
/// [`MatchingWorkspace::build_adjacency`] first. Produces the exact
/// matching the predicate form produces for the same edge set.
pub fn hopcroft_karp_csr(n: usize, ws: &mut MatchingWorkspace) -> Permutation {
    const NIL: usize = usize::MAX;
    let MatchingWorkspace {
        adj_offsets,
        adj_targets,
        match_in,
        match_out,
        dist,
        queue,
    } = ws;
    let adj_offsets: &[u32] = adj_offsets;
    let adj_targets: &[u32] = adj_targets;
    match_in.clear();
    match_in.resize(n, NIL);
    match_out.clear();
    match_out.resize(n, NIL);
    dist.clear();
    dist.resize(n, u32::MAX);
    queue.clear();
    let row =
        |i: usize| -> &[u32] { &adj_targets[adj_offsets[i] as usize..adj_offsets[i + 1] as usize] };

    loop {
        // BFS phase: layer free inputs.
        queue.clear();
        for i in 0..n {
            if match_in[i] == NIL {
                dist[i] = 0;
                queue.push_back(i);
            } else {
                dist[i] = u32::MAX;
            }
        }
        let mut found_augmenting = false;
        while let Some(i) = queue.pop_front() {
            for &j in row(i) {
                let owner = match_out[j as usize];
                if owner == NIL {
                    found_augmenting = true;
                } else if dist[owner] == u32::MAX {
                    dist[owner] = dist[i] + 1;
                    queue.push_back(owner);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: augment along layered paths.
        fn dfs(
            i: usize,
            adj_offsets: &[u32],
            adj_targets: &[u32],
            dist: &mut [u32],
            match_in: &mut [usize],
            match_out: &mut [usize],
        ) -> bool {
            const NIL: usize = usize::MAX;
            let (lo, hi) = (adj_offsets[i] as usize, adj_offsets[i + 1] as usize);
            for k in lo..hi {
                let j = adj_targets[k] as usize;
                let owner = match_out[j];
                let reachable = owner == NIL
                    || (dist[owner] == dist[i].saturating_add(1)
                        && dfs(owner, adj_offsets, adj_targets, dist, match_in, match_out));
                if reachable {
                    match_in[i] = j;
                    match_out[j] = i;
                    return true;
                }
            }
            dist[i] = u32::MAX;
            false
        }
        for i in 0..n {
            if match_in[i] == NIL && dist[i] == 0 {
                dfs(i, adj_offsets, adj_targets, dist, match_in, match_out);
            }
        }
    }

    let mut p = Permutation::empty(n);
    for (i, &j) in match_in.iter().enumerate() {
        if j != NIL {
            p.set(i, j).expect("matching is conflict-free");
        }
    }
    p
}

/// Exact maximum-weight assignment (Hungarian algorithm with potentials).
///
/// Weights are `u64`; missing edges are weight 0. Returns a *full*
/// permutation achieving the maximum total weight; callers typically strip
/// zero-weight pairs afterwards.
///
/// Implementation: the classic O(n³) shortest-augmenting-path formulation
/// on the cost matrix `C[i][j] = max_w - w[i][j]` (minimization form),
/// using `i128` potentials so u64 weights cannot overflow.
pub fn max_weight_assignment(n: usize, weight: &dyn Fn(usize, usize) -> u64) -> Permutation {
    assert!(n > 0);
    // Find max weight for the min-cost transformation.
    let mut max_w = 0u64;
    for i in 0..n {
        for j in 0..n {
            max_w = max_w.max(weight(i, j));
        }
    }
    let cost = |i: usize, j: usize| -> i128 { (max_w - weight(i, j)) as i128 };

    const INF: i128 = i128::MAX / 4;
    // 1-based arrays per the standard formulation.
    let mut u = vec![0i128; n + 1];
    let mut v = vec![0i128; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut perm = Permutation::empty(n);
    for (j, &pj) in p.iter().enumerate().take(n + 1).skip(1) {
        if pj != 0 {
            perm.set(pj - 1, j - 1).expect("assignment is a matching");
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_cardinality_full_on_complete_graph() {
        let m = max_cardinality(5, |_, _| true);
        assert!(m.is_full());
        m.check_invariants().unwrap();
    }

    #[test]
    fn max_cardinality_empty_on_empty_graph() {
        let m = max_cardinality(5, |_, _| false);
        assert!(m.is_empty());
    }

    #[test]
    fn max_cardinality_finds_augmenting_paths() {
        // Classic case needing augmentation: greedy would match 0-0 and
        // strand input 1 (which can only reach 0).
        // adj: 0 -> {0, 1}, 1 -> {0}.
        let adj = |i: usize, j: usize| matches!((i, j), (0, 0) | (0, 1) | (1, 0));
        let m = max_cardinality(2, adj);
        assert_eq!(m.assigned(), 2);
        assert_eq!(m.output_of(1), Some(0));
        assert_eq!(m.output_of(0), Some(1));
    }

    #[test]
    fn max_cardinality_respects_adjacency() {
        let m = max_cardinality(4, |i, j| (i + j) % 2 == 0);
        for (i, j) in m.pairs() {
            assert_eq!((i + j) % 2, 0);
        }
    }

    #[test]
    fn hopcroft_karp_matches_kuhn_cardinality() {
        use xds_sim::SimRng;
        let mut rng = SimRng::new(123);
        for trial in 0..30 {
            let n = 2 + (trial % 12);
            // Random sparse adjacency.
            let edges: Vec<Vec<bool>> = (0..n)
                .map(|_| (0..n).map(|_| rng.bool(0.3)).collect())
                .collect();
            let kuhn = max_cardinality(n, |i, j| edges[i][j]);
            let hk = hopcroft_karp(n, |i, j| edges[i][j]);
            hk.check_invariants().unwrap();
            assert_eq!(
                kuhn.assigned(),
                hk.assigned(),
                "maximum matchings must agree in size (n={n}, trial={trial})"
            );
            for (i, j) in hk.pairs() {
                assert!(edges[i][j], "HK used a non-edge ({i},{j})");
            }
        }
    }

    #[test]
    fn hopcroft_karp_full_and_empty_graphs() {
        let full = hopcroft_karp(8, |_, _| true);
        assert!(full.is_full());
        let empty = hopcroft_karp(8, |_, _| false);
        assert!(empty.is_empty());
    }

    #[test]
    fn hopcroft_karp_needs_augmentation() {
        // Same trap as the Kuhn test: greedy would strand input 1.
        let adj = |i: usize, j: usize| matches!((i, j), (0, 0) | (0, 1) | (1, 0));
        let m = hopcroft_karp(2, adj);
        assert_eq!(m.assigned(), 2);
    }

    #[test]
    fn hungarian_picks_the_obvious_diagonal() {
        // Strongly diagonal weights.
        let w = |i: usize, j: usize| if i == j { 100 } else { 1 };
        let m = max_weight_assignment(4, &w);
        for i in 0..4 {
            assert_eq!(m.output_of(i), Some(i));
        }
    }

    #[test]
    fn hungarian_beats_greedy_on_the_standard_trap() {
        // Greedy takes (0,0)=10 then is forced into (1,1)=0: total 10.
        // Optimal is (0,1)=9 + (1,0)=9 = 18.
        let weights = [[10u64, 9], [9, 0]];
        let m = max_weight_assignment(2, &|i, j| weights[i][j]);
        let total: u64 = m.pairs().map(|(i, j)| weights[i][j]).sum();
        assert_eq!(total, 18);
    }

    #[test]
    fn hungarian_handles_zero_matrix() {
        let m = max_weight_assignment(3, &|_, _| 0);
        // Any perfect matching is optimal; it must still be a matching.
        assert!(m.is_full());
        m.check_invariants().unwrap();
    }

    #[test]
    fn hungarian_matches_brute_force_on_random_instances() {
        use xds_sim::SimRng;
        let mut rng = SimRng::new(99);
        for _ in 0..50 {
            let n = 4;
            let w: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.below(1000)).collect())
                .collect();
            let m = max_weight_assignment(n, &|i, j| w[i][j]);
            let got: u64 = m.pairs().map(|(i, j)| w[i][j]).sum();
            // Brute force over all 4! permutations.
            let mut best = 0;
            let mut perm = [0usize, 1, 2, 3];
            permute(&mut perm, 0, &mut |p| {
                let total: u64 = p.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
                best = best.max(total);
            });
            assert_eq!(got, best, "weights {w:?}");
        }

        fn permute(arr: &mut [usize; 4], k: usize, f: &mut impl FnMut(&[usize; 4])) {
            if k == arr.len() {
                f(arr);
                return;
            }
            for i in k..arr.len() {
                arr.swap(k, i);
                permute(arr, k + 1, f);
                arr.swap(k, i);
            }
        }
    }

    #[test]
    fn hungarian_large_weights_do_not_overflow() {
        let big = u64::MAX / 2;
        let m = max_weight_assignment(3, &|i, j| if i == j { big } else { big - 1 });
        let total: u128 = m
            .pairs()
            .map(|(i, j)| if i == j { big as u128 } else { 0 })
            .sum();
        assert_eq!(total, 3 * big as u128);
    }
}
