//! EPS-only baseline: never configures a circuit. What a data center
//! without the OCS (or with a scheduler too slow to use it) gets —
//! the lower bound every hybrid configuration is compared against.

use xds_hw::HwAlgo;

use crate::demand::DemandMatrix;

use super::{Schedule, ScheduleCtx, Scheduler};

/// The no-op scheduler.
#[derive(Debug, Clone, Default)]
pub struct EpsOnlyScheduler;

impl EpsOnlyScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        EpsOnlyScheduler
    }
}

impl Scheduler for EpsOnlyScheduler {
    fn name(&self) -> &'static str {
        "eps_only"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Tdma // decision cost: trivially one cycle (it does nothing)
    }

    fn schedule(&mut self, _demand: &DemandMatrix, _ctx: &ScheduleCtx) -> Schedule {
        Schedule::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::ctx;

    #[test]
    fn never_schedules_circuits() {
        let mut s = EpsOnlyScheduler::new();
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, u64::MAX);
        assert!(s.schedule(&d, &ctx()).entries.is_empty());
    }
}
