//! c-Through/Helios-style hotspot scheduler: one optimal circuit
//! configuration per epoch, restricted to pairs whose demand clears an
//! offload threshold; everything else is residual (EPS).
//!
//! This is the paper's "[2, 5]"-class software scheduler brought into the
//! framework: estimate demand, pick the hot pairs, solve one assignment
//! (Edmonds/Hungarian in Helios), hold it for the whole epoch ("day"),
//! reconfigure at the epoch boundary ("night").

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::matching::max_weight_assignment;
use super::{single_entry_schedule, Schedule, ScheduleCtx, Scheduler};

/// Threshold-gated maximum-weight single-assignment scheduler.
#[derive(Debug, Clone)]
pub struct HotspotScheduler {
    /// Pairs below this demand never get a circuit (they wouldn't amortize
    /// the reconfiguration).
    pub threshold_bytes: u64,
}

impl HotspotScheduler {
    /// Creates the scheduler with an offload threshold.
    pub fn new(threshold_bytes: u64) -> Self {
        HotspotScheduler { threshold_bytes }
    }

    /// Threshold chosen so a circuit is only worth it if the pair's demand
    /// exceeds what the EPS could serve during one epoch anyway.
    pub fn auto_threshold(ctx: &ScheduleCtx, eps_rate: xds_sim::BitRate) -> u64 {
        eps_rate.bytes_in(ctx.epoch)
    }

    fn matching(&self, demand: &DemandMatrix) -> Permutation {
        let n = demand.n();
        let thr = self.threshold_bytes;
        let gated = |i: usize, j: usize| {
            let d = demand.get(i, j);
            if d >= thr {
                d
            } else {
                0
            }
        };
        if (0..n).all(|i| (0..n).all(|j| gated(i, j) == 0)) {
            return Permutation::empty(n);
        }
        let full = max_weight_assignment(n, &gated);
        let mut p = Permutation::empty(n);
        for (i, j) in full.pairs() {
            if gated(i, j) > 0 {
                p.set(i, j).expect("subset of a matching");
            }
        }
        p
    }
}

impl Scheduler for HotspotScheduler {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Hungarian
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        single_entry_schedule(self.matching(demand), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    #[test]
    fn only_hot_pairs_get_circuits() {
        let mut s = HotspotScheduler::new(10_000);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 50_000); // hot
        d.set(2, 3, 500); // cold
        let sched = run_and_validate(&mut s, &d, &ctx());
        let p = &sched.entries[0].perm;
        assert_eq!(p.output_of(0), Some(1));
        assert_eq!(p.output_of(2), None, "cold pair left to the EPS");
    }

    #[test]
    fn all_cold_demand_means_no_circuits() {
        let mut s = HotspotScheduler::new(1_000_000);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 999);
        d.set(1, 2, 999);
        assert!(run_and_validate(&mut s, &d, &ctx()).entries.is_empty());
    }

    #[test]
    fn optimal_among_hot_pairs() {
        let mut s = HotspotScheduler::new(100);
        let mut d = DemandMatrix::zero(2);
        // The greedy trap again, all above threshold.
        d.set(0, 0, 1_000);
        d.set(0, 1, 900);
        d.set(1, 0, 900);
        let sched = run_and_validate(&mut s, &d, &ctx());
        let total: u64 = sched.entries[0]
            .perm
            .pairs()
            .map(|(i, j)| d.get(i, j))
            .sum();
        assert_eq!(total, 1_800, "assignment must be optimal");
    }

    #[test]
    fn auto_threshold_is_eps_epoch_capacity() {
        let c = ctx();
        // EPS at 1 Gb/s over a 100 µs epoch carries 12 500 bytes.
        assert_eq!(
            HotspotScheduler::auto_threshold(&c, xds_sim::BitRate::GBPS_1),
            12_500
        );
    }
}
