//! iSLIP (McKeown): iterative round-robin matching with "slip" pointer
//! updates — the canonical hardware crossbar scheduler and the default
//! algorithm of this framework's scheduling logic.
//!
//! Per iteration: unmatched outputs *grant* to the first requesting input
//! at or after their grant pointer; unmatched inputs *accept* the first
//! grant at or after their accept pointer. Pointers advance **only when a
//! grant is accepted in the first iteration** — the property that
//! desynchronizes pointers and yields 100 % throughput under uniform
//! traffic.

use xds_hw::HwAlgo;

use crate::demand::DemandMatrix;

use super::{request_matrix, single_entry_schedule, Schedule, ScheduleCtx, Scheduler};
use xds_switch::Permutation;

/// iSLIP scheduler state: one grant pointer per output, one accept pointer
/// per input.
#[derive(Debug, Clone)]
pub struct IslipScheduler {
    n: usize,
    iterations: u32,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl IslipScheduler {
    /// Creates an iSLIP scheduler for `n` ports with the given iteration
    /// count (McKeown: `log₂ n` iterations suffice in practice).
    pub fn new(n: usize, iterations: u32) -> Self {
        assert!(n > 0 && iterations > 0);
        IslipScheduler {
            n,
            iterations,
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
        }
    }

    /// Computes one matching (exposed for unit tests).
    #[allow(clippy::needless_range_loop)] // RR pointer phases read best with indices
    pub fn matching(&mut self, requests: &[bool]) -> Permutation {
        let n = self.n;
        debug_assert_eq!(requests.len(), n * n);
        let mut in_matched = vec![false; n];
        let mut out_matched = vec![false; n];
        let mut perm = Permutation::empty(n);

        for iter in 0..self.iterations {
            // Grant phase: each unmatched output picks a requesting,
            // unmatched input starting from its pointer.
            let mut grant: Vec<Option<usize>> = vec![None; n];
            for out in 0..n {
                if out_matched[out] {
                    continue;
                }
                for k in 0..n {
                    let inp = (self.grant_ptr[out] + k) % n;
                    if !in_matched[inp] && requests[inp * n + out] {
                        grant[out] = Some(inp);
                        break;
                    }
                }
            }
            // Accept phase: each unmatched input picks among its grants
            // starting from its pointer.
            for inp in 0..n {
                if in_matched[inp] {
                    continue;
                }
                for k in 0..n {
                    let out = (self.accept_ptr[inp] + k) % n;
                    if grant[out] == Some(inp) && !out_matched[out] {
                        in_matched[inp] = true;
                        out_matched[out] = true;
                        perm.set(inp, out).expect("phases keep matching valid");
                        if iter == 0 {
                            self.grant_ptr[out] = (inp + 1) % n;
                            self.accept_ptr[inp] = (out + 1) % n;
                        }
                        break;
                    }
                }
            }
        }
        perm
    }
}

impl Scheduler for IslipScheduler {
    fn name(&self) -> &'static str {
        "islip"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Islip {
            iterations: self.iterations,
        }
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        assert_eq!(demand.n(), self.n, "demand size mismatch");
        let requests = request_matrix(demand);
        let perm = self.matching(&requests);
        single_entry_schedule(perm, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    fn full_requests(n: usize) -> Vec<bool> {
        let mut r = vec![true; n * n];
        for i in 0..n {
            r[i * n + i] = false; // no self traffic
        }
        r
    }

    #[test]
    fn sustained_uniform_backlog_converges_to_full_matchings() {
        // On the first slots the aligned pointers serialize grants (the
        // known cold-start behaviour); once desynchronized, iSLIP serves
        // full matchings — 100 % throughput under uniform backlog.
        let mut s = IslipScheduler::new(8, 3);
        let r = full_requests(8);
        for _ in 0..30 {
            s.matching(&r); // warm-up: desynchronize pointers
        }
        let filled: usize = (0..20).map(|_| s.matching(&r).assigned()).sum();
        assert!(filled >= 150, "steady state should fill: {filled}/160");
    }

    #[test]
    fn more_iterations_fill_faster_from_cold_start() {
        let mut one = IslipScheduler::new(16, 1);
        let mut four = IslipScheduler::new(16, 4);
        let r = full_requests(16);
        let a: usize = (0..10).map(|_| one.matching(&r).assigned()).sum();
        let b: usize = (0..10).map(|_| four.matching(&r).assigned()).sum();
        assert!(b >= a, "more iterations can't do worse: {b} vs {a}");
        assert!(
            b >= 100,
            "4-iteration iSLIP fills most ports even cold: {b}/160"
        );
    }

    #[test]
    fn pointers_desynchronize_under_uniform_load() {
        // The hallmark of iSLIP: after a few rounds of full uniform
        // requests, outputs serve different inputs each round
        // (round-robin), so every input gets service — count service per
        // input over n rounds.
        let n = 4;
        let mut s = IslipScheduler::new(n, 1);
        let r = full_requests(n);
        let mut service = vec![0u32; n];
        for _ in 0..40 {
            for (i, _) in s.matching(&r).pairs() {
                service[i] += 1;
            }
        }
        for (i, &c) in service.iter().enumerate() {
            assert!(c >= 25, "input {i} starved: {c}/40 rounds");
        }
    }

    #[test]
    fn respects_requests() {
        let mut s = IslipScheduler::new(4, 2);
        let mut demand = DemandMatrix::zero(4);
        demand.set(0, 2, 1000);
        demand.set(1, 3, 500);
        let sched = run_and_validate(&mut s, &demand, &ctx());
        assert_eq!(sched.entries.len(), 1);
        let p = &sched.entries[0].perm;
        assert_eq!(p.output_of(0), Some(2));
        assert_eq!(p.output_of(1), Some(3));
        assert_eq!(p.output_of(2), None);
    }

    #[test]
    fn empty_demand_empty_schedule() {
        let mut s = IslipScheduler::new(4, 2);
        let sched = run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx());
        assert!(sched.entries.is_empty());
    }

    #[test]
    fn contention_resolved_one_winner_per_output() {
        let mut s = IslipScheduler::new(4, 3);
        let mut demand = DemandMatrix::zero(4);
        // Everyone wants output 0.
        for i in 1..4 {
            demand.set(i, 0, 100);
        }
        let sched = run_and_validate(&mut s, &demand, &ctx());
        let p = &sched.entries[0].perm;
        assert_eq!(p.assigned(), 1, "output 0 can serve exactly one input");
        assert!(p.input_of(0).is_some());
    }

    #[test]
    fn round_robin_fairness_across_contending_inputs() {
        let n = 4;
        let mut s = IslipScheduler::new(n, 1);
        let mut requests = vec![false; n * n];
        for i in 1..4 {
            requests[i * n] = true; // i -> output 0
        }
        let mut wins = vec![0u32; n];
        for _ in 0..30 {
            let m = s.matching(&requests);
            if let Some(i) = m.input_of(0) {
                wins[i] += 1;
            }
        }
        for (i, &w) in wins.iter().enumerate().skip(1) {
            assert!(w == 10, "input {i} won {w} of 30 (expect exact RR)");
        }
    }

    #[test]
    fn hw_algo_reflects_iterations() {
        let s = IslipScheduler::new(8, 3);
        assert_eq!(s.hw_algo(), HwAlgo::Islip { iterations: 3 });
        assert_eq!(s.name(), "islip");
    }
}
