//! Scheduling logic: the pluggable algorithm slot of Figure 2.
//!
//! "The scheduling logic processes the incoming requests, estimates the
//! demand matrix, and runs the scheduling algorithm, generating
//! corresponding transmission grants." A [`Scheduler`] turns a
//! [`DemandMatrix`] into a [`Schedule`] — one or more OCS configurations
//! with slot durations. The runtime executes the schedule: each entry
//! costs one reconfiguration (dark window) before its slot.
//!
//! Shipped algorithms, spanning the design space the framework is meant to
//! explore:
//!
//! | module | algorithm | origin / role |
//! |---|---|---|
//! | [`tdma`] | static rotation | demand-oblivious baseline |
//! | [`islip`] | iSLIP | the canonical hardware crossbar scheduler |
//! | [`pim`] | parallel iterative matching | randomized ancestor of iSLIP |
//! | [`rrm`] | round-robin matching | the stepping stone iSLIP fixes |
//! | [`wavefront`] | wavefront arbiter | systolic hardware matching |
//! | [`greedy`] | greedy LQF maximal matching | ½-approx of max weight |
//! | [`ilqf`] | iterative longest-queue-first | weighted iSLIP sibling |
//! | [`hungarian`] | Hungarian assignment | exact max-weight (software-class) |
//! | [`bvn`] | Birkhoff–von-Neumann / TMS | multi-slot decomposition |
//! | [`solstice`] | Solstice-style greedy | hybrid-aware decomposition |
//! | [`hotspot`] | c-Through-style threshold | day/night hotspot offload |
//! | [`eps_only`] | no circuits | pure-EPS baseline |

pub mod bvn;
pub mod eps_only;
pub mod greedy;
pub mod hotspot;
pub mod hungarian;
pub mod ilqf;
pub mod islip;
pub mod matching;
pub mod pim;
pub mod rrm;
pub mod solstice;
pub mod tdma;
pub mod wavefront;

pub use bvn::BvnScheduler;
pub use eps_only::EpsOnlyScheduler;
pub use greedy::GreedyLqfScheduler;
pub use hotspot::HotspotScheduler;
pub use hungarian::HungarianScheduler;
pub use ilqf::IlqfScheduler;
pub use islip::IslipScheduler;
pub use pim::PimScheduler;
pub use rrm::RrmScheduler;
pub use solstice::SolsticeScheduler;
pub use tdma::TdmaScheduler;
pub use wavefront::WavefrontScheduler;

use xds_hw::HwAlgo;
use xds_sim::{BitRate, SimDuration, SimTime};
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

/// Everything a scheduler may consider besides demand.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleCtx {
    /// Decision time (start of the epoch).
    pub now: SimTime,
    /// OCS per-circuit line rate.
    pub line_rate: BitRate,
    /// OCS reconfiguration (dark) time — each schedule entry pays it once.
    pub reconfig: SimDuration,
    /// Target epoch length: the schedule's reconfigurations + slots should
    /// fill (not exceed) this.
    pub epoch: SimDuration,
    /// Maximum number of entries (configurations) per epoch.
    pub max_entries: usize,
}

impl ScheduleCtx {
    /// Time available for actual transmission if `k` entries are used.
    pub fn usable_time(&self, k: usize) -> SimDuration {
        self.epoch.saturating_sub(self.reconfig * (k as u64))
    }

    /// Bytes one circuit can carry in a slot of length `slot`.
    pub fn slot_bytes(&self, slot: SimDuration) -> u64 {
        self.line_rate.bytes_in(slot)
    }
}

/// One OCS configuration and how long to hold it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The circuit configuration.
    pub perm: Permutation,
    /// Slot duration (transmission time after the dark window).
    pub slot: SimDuration,
}

/// A schedule: the ordered configurations for one epoch. Traffic not
/// covered is residual (EPS) by construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// The entries, executed in order; each is preceded by one
    /// reconfiguration.
    pub entries: Vec<ScheduleEntry>,
}

impl Schedule {
    /// A schedule with no circuit time (everything rides the EPS).
    pub fn empty() -> Self {
        Schedule::default()
    }

    /// Total wall time the schedule occupies (slots + one reconfiguration
    /// per entry).
    pub fn span(&self, reconfig: SimDuration) -> SimDuration {
        let slots: SimDuration = self
            .entries
            .iter()
            .fold(SimDuration::ZERO, |acc, e| acc + e.slot);
        slots + reconfig * (self.entries.len() as u64)
    }

    /// Checks structural sanity against a context: entry count within
    /// budget, spans within the epoch, permutations well-formed.
    pub fn validate(&self, ctx: &ScheduleCtx, n_ports: usize) -> Result<(), String> {
        if self.entries.len() > ctx.max_entries {
            return Err(format!(
                "{} entries exceed budget {}",
                self.entries.len(),
                ctx.max_entries
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.perm.n() != n_ports {
                return Err(format!(
                    "entry {i} has {} ports, switch has {n_ports}",
                    e.perm.n()
                ));
            }
            e.perm.check_invariants()?;
            if e.slot.is_zero() {
                return Err(format!("entry {i} has a zero-length slot"));
            }
        }
        // Tolerance: one reconfig of overshoot, since schedulers round.
        let span = self.span(ctx.reconfig);
        if span > ctx.epoch + ctx.reconfig {
            return Err(format!("span {span} exceeds epoch {}", ctx.epoch));
        }
        Ok(())
    }
}

/// A hybrid-switch scheduler: demand in, circuit schedule out.
pub trait Scheduler: Send {
    /// Short name for tables.
    fn name(&self) -> &'static str;

    /// The hardware cost model entry for this algorithm (drives decision-
    /// latency when placed in hardware).
    fn hw_algo(&self) -> HwAlgo;

    /// Computes the schedule for one epoch.
    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule;

    /// Enables wall-clock span capture for subsequent
    /// [`schedule`](Self::schedule) calls (the flight recorder is on).
    /// Counters are
    /// always accumulated; only span capture — which costs `Instant`
    /// reads and allocation — is gated. Schedulers without internal
    /// observability ignore this.
    fn set_trace(&mut self, on: bool) {
        let _ = on;
    }

    /// Drains observability accumulated since the last call (per-epoch
    /// counter deltas plus captured spans). The runtime calls this after
    /// every `schedule()`; the default for schedulers with nothing to
    /// report returns `None`, which costs nothing.
    fn take_obs(&mut self) -> Option<crate::trace::SchedObs> {
        None
    }
}

/// Builds the boolean request matrix (who has demand) used by the
/// iterative matchers.
pub(crate) fn request_matrix(demand: &DemandMatrix) -> Vec<bool> {
    let n = demand.n();
    let mut r = vec![false; n * n];
    for (s, d, _) in demand.iter_nonzero() {
        r[s * n + d] = true;
    }
    r
}

/// Wraps a single matching into a one-entry schedule filling the epoch
/// (the pattern shared by all single-configuration schedulers). An empty
/// matching yields an empty schedule — no point going dark for nothing.
pub(crate) fn single_entry_schedule(perm: Permutation, ctx: &ScheduleCtx) -> Schedule {
    if perm.is_empty() {
        return Schedule::empty();
    }
    let slot = ctx.usable_time(1);
    if slot.is_zero() {
        return Schedule::empty();
    }
    Schedule {
        entries: vec![ScheduleEntry { perm, slot }],
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A default context for scheduler unit tests: 10 Gb/s, 1 µs reconfig,
    /// 100 µs epoch, 8 entries.
    pub fn ctx() -> ScheduleCtx {
        ScheduleCtx {
            now: SimTime::ZERO,
            line_rate: BitRate::GBPS_10,
            reconfig: SimDuration::from_micros(1),
            epoch: SimDuration::from_micros(100),
            max_entries: 8,
        }
    }

    /// Runs the scheduler and validates the output.
    pub fn run_and_validate(
        s: &mut dyn Scheduler,
        demand: &DemandMatrix,
        ctx: &ScheduleCtx,
    ) -> Schedule {
        let sched = s.schedule(demand, ctx);
        sched
            .validate(ctx, demand.n())
            .unwrap_or_else(|e| panic!("{} produced invalid schedule: {e}", s.name()));
        sched
    }

    /// Bytes the schedule could serve for each pair, assuming full-rate
    /// circuits.
    pub fn served_bytes(sched: &Schedule, ctx: &ScheduleCtx, n: usize) -> DemandMatrix {
        let mut m = DemandMatrix::zero(n);
        for e in &sched.entries {
            let bytes = ctx.slot_bytes(e.slot);
            for (i, o) in e.perm.pairs() {
                m.add(i, o, bytes);
            }
        }
        m
    }

    #[test]
    fn schedule_span_accounts_reconfigs() {
        let s = Schedule {
            entries: vec![
                ScheduleEntry {
                    perm: Permutation::identity(2),
                    slot: SimDuration::from_micros(10),
                },
                ScheduleEntry {
                    perm: Permutation::rotation(2, 1),
                    slot: SimDuration::from_micros(20),
                },
            ],
        };
        assert_eq!(
            s.span(SimDuration::from_micros(1)),
            SimDuration::from_micros(32)
        );
    }

    #[test]
    fn validate_rejects_oversized_schedules() {
        let c = ctx();
        let mut entries = Vec::new();
        for _ in 0..9 {
            entries.push(ScheduleEntry {
                perm: Permutation::identity(4),
                slot: SimDuration::from_micros(1),
            });
        }
        let s = Schedule { entries };
        assert!(s.validate(&c, 4).is_err(), "9 entries > budget 8");
    }

    #[test]
    fn validate_rejects_wrong_port_count_and_zero_slots() {
        let c = ctx();
        let s = Schedule {
            entries: vec![ScheduleEntry {
                perm: Permutation::identity(2),
                slot: SimDuration::from_micros(1),
            }],
        };
        assert!(s.validate(&c, 4).is_err());
        let z = Schedule {
            entries: vec![ScheduleEntry {
                perm: Permutation::identity(4),
                slot: SimDuration::ZERO,
            }],
        };
        assert!(z.validate(&c, 4).is_err());
    }

    #[test]
    fn usable_time_subtracts_reconfigs() {
        let c = ctx();
        assert_eq!(c.usable_time(1), SimDuration::from_micros(99));
        assert_eq!(c.usable_time(8), SimDuration::from_micros(92));
        // 10G for 99 µs = 123750 bytes.
        assert_eq!(c.slot_bytes(c.usable_time(1)), 123_750);
    }
}
