//! iLQF — iterative Longest Queue First (McKeown): the weighted sibling of
//! iSLIP. Grant and accept arbiters pick the *largest VOQ* among their
//! candidates instead of a round-robin pointer, approximating maximum
//! weight matching with hardware-friendly comparator trees. Favouring long
//! queues improves throughput under non-uniform traffic but — unlike
//! iSLIP — admits starvation of short queues, which E5's latency tables
//! can exhibit.

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::{single_entry_schedule, Schedule, ScheduleCtx, Scheduler};

/// iLQF scheduler (stateless between epochs: weights carry the state).
#[derive(Debug, Clone)]
pub struct IlqfScheduler {
    n: usize,
    iterations: u32,
}

impl IlqfScheduler {
    /// Creates an iLQF scheduler.
    pub fn new(n: usize, iterations: u32) -> Self {
        assert!(n > 0 && iterations > 0);
        IlqfScheduler { n, iterations }
    }

    /// Computes one matching: per iteration, each unmatched output grants
    /// to its heaviest requesting input, each unmatched input accepts its
    /// heaviest granting output. Ties break on lower index (deterministic,
    /// as a fixed-priority comparator tree would).
    #[allow(clippy::needless_range_loop)] // RR pointer phases read best with indices
    pub fn matching(&self, demand: &DemandMatrix) -> Permutation {
        let n = self.n;
        let mut in_matched = vec![false; n];
        let mut out_matched = vec![false; n];
        let mut perm = Permutation::empty(n);

        for _ in 0..self.iterations {
            // Grant phase: heaviest requester wins.
            let mut grant: Vec<Option<usize>> = vec![None; n];
            for out in 0..n {
                if out_matched[out] {
                    continue;
                }
                let mut best: Option<(u64, usize)> = None;
                for inp in 0..n {
                    if in_matched[inp] {
                        continue;
                    }
                    let w = demand.get(inp, out);
                    if w > 0 && best.is_none_or(|(bw, bi)| w > bw || (w == bw && inp < bi)) {
                        best = Some((w, inp));
                    }
                }
                grant[out] = best.map(|(_, i)| i);
            }
            // Accept phase: heaviest granting output wins.
            for inp in 0..n {
                if in_matched[inp] {
                    continue;
                }
                let mut best: Option<(u64, usize)> = None;
                for (out, &g) in grant.iter().enumerate() {
                    if g == Some(inp) && !out_matched[out] {
                        let w = demand.get(inp, out);
                        if best.is_none_or(|(bw, bo)| w > bw || (w == bw && out < bo)) {
                            best = Some((w, out));
                        }
                    }
                }
                if let Some((_, out)) = best {
                    in_matched[inp] = true;
                    out_matched[out] = true;
                    perm.set(inp, out).expect("phases keep matching valid");
                }
            }
        }
        perm
    }
}

impl Scheduler for IlqfScheduler {
    fn name(&self) -> &'static str {
        "ilqf"
    }

    fn hw_algo(&self) -> HwAlgo {
        // Comparator trees have the same log-depth structure as the
        // priority encoders of iSLIP; the cost model is shared.
        HwAlgo::Islip {
            iterations: self.iterations,
        }
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        assert_eq!(demand.n(), self.n, "demand size mismatch");
        single_entry_schedule(self.matching(demand), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    #[test]
    fn heaviest_queue_wins_contention() {
        let s = IlqfScheduler::new(4, 1);
        let mut d = DemandMatrix::zero(4);
        d.set(1, 0, 100);
        d.set(2, 0, 900); // heavier: must win output 0
        d.set(3, 0, 500);
        let m = s.matching(&d);
        assert_eq!(m.input_of(0), Some(2));
    }

    #[test]
    fn iterations_fill_remaining_ports() {
        let s1 = IlqfScheduler::new(4, 1);
        let s3 = IlqfScheduler::new(4, 3);
        let mut d = DemandMatrix::zero(4);
        // Everyone's heaviest demand collides on output 0; lighter edges
        // need further iterations.
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    d.set(i, j, if j == 0 { 1000 } else { 10 + i as u64 });
                }
            }
        }
        let m1 = s1.matching(&d).assigned();
        let m3 = s3.matching(&d).assigned();
        assert!(m3 >= m1);
        assert_eq!(m3, 4, "three iterations must fill a dense 4x4");
    }

    #[test]
    fn deterministic_tie_break() {
        let s = IlqfScheduler::new(4, 2);
        let mut d = DemandMatrix::zero(4);
        d.set(1, 2, 500);
        d.set(3, 2, 500); // tie: lower input index wins
        let m = s.matching(&d);
        assert_eq!(m.input_of(2), Some(1));
    }

    #[test]
    fn schedule_validates_and_prefers_weight_over_islip_fairness() {
        let mut s = IlqfScheduler::new(4, 3);
        let mut d = DemandMatrix::zero(4);
        d.set(0, 1, 1_000_000);
        d.set(2, 3, 1);
        let sched = run_and_validate(&mut s, &d, &ctx());
        let p = &sched.entries[0].perm;
        assert_eq!(p.output_of(0), Some(1));
        assert_eq!(p.output_of(2), Some(3), "maximal: light pair still served");
    }

    #[test]
    fn empty_demand_empty_schedule() {
        let mut s = IlqfScheduler::new(4, 2);
        assert!(run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx())
            .entries
            .is_empty());
    }
}
