//! Static TDMA rotation: epoch *k* uses the cyclic shift *k mod (n−1) + 1*,
//! regardless of demand. The demand-oblivious baseline every demand-aware
//! scheduler must beat (and the fallback when demand estimation is
//! unavailable — e.g. a round-robin "day/night" optical schedule).

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::{Schedule, ScheduleCtx, ScheduleEntry, Scheduler};

/// Rotating TDMA scheduler.
#[derive(Debug, Clone)]
pub struct TdmaScheduler {
    n: usize,
    next_shift: usize,
}

impl TdmaScheduler {
    /// Creates the scheduler.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "TDMA needs at least 2 ports");
        TdmaScheduler { n, next_shift: 1 }
    }
}

impl Scheduler for TdmaScheduler {
    fn name(&self) -> &'static str {
        "tdma"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Tdma
    }

    fn schedule(&mut self, _demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        let shift = self.next_shift;
        self.next_shift = self.next_shift % (self.n - 1) + 1; // cycles 1..n-1
        let slot = ctx.usable_time(1);
        if slot.is_zero() {
            return Schedule::empty();
        }
        Schedule {
            entries: vec![ScheduleEntry {
                perm: Permutation::rotation(self.n, shift),
                slot,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    #[test]
    fn rotates_through_all_shifts() {
        let mut s = TdmaScheduler::new(4);
        let d = DemandMatrix::zero(4);
        let c = ctx();
        // BTreeSet keeps the determinism contract (no random hasher)
        // even in test code; only cardinality is asserted here.
        let mut shifts_seen = std::collections::BTreeSet::new();
        for _ in 0..6 {
            let sched = run_and_validate(&mut s, &d, &c);
            let p = &sched.entries[0].perm;
            let shift = p.output_of(0).unwrap();
            shifts_seen.insert(shift);
            // never the identity (self-traffic) shift
            assert_ne!(shift, 0);
        }
        assert_eq!(shifts_seen.len(), 3, "shifts 1, 2, 3 for n=4");
    }

    #[test]
    fn ignores_demand_entirely() {
        let mut s1 = TdmaScheduler::new(4);
        let mut s2 = TdmaScheduler::new(4);
        let mut hot = DemandMatrix::zero(4);
        hot.set(2, 0, 1_000_000);
        let a = s1.schedule(&DemandMatrix::zero(4), &ctx());
        let b = s2.schedule(&hot, &ctx());
        assert_eq!(a, b, "demand-oblivious by definition");
    }

    #[test]
    fn full_permutation_every_epoch() {
        let mut s = TdmaScheduler::new(8);
        let sched = run_and_validate(&mut s, &DemandMatrix::zero(8), &ctx());
        assert!(sched.entries[0].perm.is_full());
    }
}
