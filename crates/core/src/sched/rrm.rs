//! RRM — Round-Robin Matching: the stepping-stone algorithm iSLIP fixes.
//! Pointers advance after *every* grant/accept round regardless of
//! acceptance, which lets grant pointers synchronize and caps throughput
//! near 63 % under uniform load (the motivating pathology for iSLIP;
//! having it in the suite lets E5 show the fix).

use xds_hw::HwAlgo;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::{request_matrix, single_entry_schedule, Schedule, ScheduleCtx, Scheduler};

/// RRM scheduler state.
#[derive(Debug, Clone)]
pub struct RrmScheduler {
    n: usize,
    iterations: u32,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl RrmScheduler {
    /// Creates an RRM scheduler.
    pub fn new(n: usize, iterations: u32) -> Self {
        assert!(n > 0 && iterations > 0);
        RrmScheduler {
            n,
            iterations,
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
        }
    }

    /// Computes one matching.
    #[allow(clippy::needless_range_loop)] // RR pointer phases read best with indices
    pub fn matching(&mut self, requests: &[bool]) -> Permutation {
        let n = self.n;
        let mut in_matched = vec![false; n];
        let mut out_matched = vec![false; n];
        let mut perm = Permutation::empty(n);

        for _ in 0..self.iterations {
            let mut grant: Vec<Option<usize>> = vec![None; n];
            for out in 0..n {
                if out_matched[out] {
                    continue;
                }
                for k in 0..n {
                    let inp = (self.grant_ptr[out] + k) % n;
                    if !in_matched[inp] && requests[inp * n + out] {
                        grant[out] = Some(inp);
                        // RRM: pointer advances past the granted input
                        // unconditionally — the synchronization bug.
                        self.grant_ptr[out] = (inp + 1) % n;
                        break;
                    }
                }
            }
            for inp in 0..n {
                if in_matched[inp] {
                    continue;
                }
                for k in 0..n {
                    let out = (self.accept_ptr[inp] + k) % n;
                    if grant[out] == Some(inp) && !out_matched[out] {
                        in_matched[inp] = true;
                        out_matched[out] = true;
                        perm.set(inp, out).expect("phases keep matching valid");
                        self.accept_ptr[inp] = (out + 1) % n;
                        break;
                    }
                }
            }
        }
        perm
    }
}

impl Scheduler for RrmScheduler {
    fn name(&self) -> &'static str {
        "rrm"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Rrm {
            iterations: self.iterations,
        }
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        assert_eq!(demand.n(), self.n, "demand size mismatch");
        let requests = request_matrix(demand);
        let perm = self.matching(&requests);
        single_entry_schedule(perm, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    fn full_requests(n: usize) -> Vec<bool> {
        let mut r = vec![true; n * n];
        for i in 0..n {
            r[i * n + i] = false;
        }
        r
    }

    #[test]
    fn produces_valid_matchings() {
        let mut s = RrmScheduler::new(8, 2);
        for _ in 0..10 {
            let m = s.matching(&full_requests(8));
            m.check_invariants().unwrap();
            assert!(m.assigned() >= 1);
        }
    }

    #[test]
    fn respects_requests() {
        let mut s = RrmScheduler::new(4, 2);
        let mut demand = DemandMatrix::zero(4);
        demand.set(3, 0, 10);
        let sched = run_and_validate(&mut s, &demand, &ctx());
        assert_eq!(sched.entries[0].perm.output_of(3), Some(0));
    }

    #[test]
    fn grant_pointers_move_even_without_acceptance() {
        // Construct persistent contention: inputs 1, 2, 3 all request only
        // output 0. RRM's grant pointer for output 0 still advances every
        // round, so service rotates across inputs.
        let n = 4;
        let mut s = RrmScheduler::new(n, 1);
        let mut requests = vec![false; n * n];
        for i in 1..4 {
            requests[i * n] = true;
        }
        let winners: Vec<Option<usize>> =
            (0..6).map(|_| s.matching(&requests).input_of(0)).collect();
        // BTreeSet, per the determinism contract: no randomly seeded
        // hash collections in core, test code included.
        let distinct: std::collections::BTreeSet<_> = winners.iter().flatten().collect();
        assert!(distinct.len() >= 2, "service should rotate: {winners:?}");
    }
}
