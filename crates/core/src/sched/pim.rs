//! PIM — Parallel Iterative Matching (Anderson et al.): like iSLIP but
//! grant and accept choices are *uniformly random* among candidates.
//! Converges in O(log n) iterations in expectation; the randomness costs
//! hardware (per-arbiter LFSRs) and it loses iSLIP's desynchronization
//! guarantee.

use xds_hw::HwAlgo;
use xds_sim::SimRng;
use xds_switch::Permutation;

use crate::demand::DemandMatrix;

use super::{request_matrix, single_entry_schedule, Schedule, ScheduleCtx, Scheduler};

/// PIM scheduler (stateless between epochs except for its RNG stream).
#[derive(Debug, Clone)]
pub struct PimScheduler {
    n: usize,
    iterations: u32,
    rng: SimRng,
}

impl PimScheduler {
    /// Creates a PIM scheduler with its own deterministic RNG stream.
    pub fn new(n: usize, iterations: u32, rng: SimRng) -> Self {
        assert!(n > 0 && iterations > 0);
        PimScheduler { n, iterations, rng }
    }

    /// Computes one matching.
    #[allow(clippy::needless_range_loop)] // RR pointer phases read best with indices
    pub fn matching(&mut self, requests: &[bool]) -> Permutation {
        let n = self.n;
        let mut in_matched = vec![false; n];
        let mut out_matched = vec![false; n];
        let mut perm = Permutation::empty(n);
        let mut candidates: Vec<usize> = Vec::with_capacity(n);

        for _ in 0..self.iterations {
            // Random grant.
            let mut grant: Vec<Option<usize>> = vec![None; n];
            for out in 0..n {
                if out_matched[out] {
                    continue;
                }
                candidates.clear();
                candidates.extend((0..n).filter(|&i| !in_matched[i] && requests[i * n + out]));
                if let Some(&inp) = self.rng.choose(&candidates) {
                    grant[out] = Some(inp);
                }
            }
            // Random accept.
            for inp in 0..n {
                if in_matched[inp] {
                    continue;
                }
                candidates.clear();
                candidates.extend((0..n).filter(|&o| grant[o] == Some(inp) && !out_matched[o]));
                if let Some(&out) = self.rng.choose(&candidates) {
                    in_matched[inp] = true;
                    out_matched[out] = true;
                    perm.set(inp, out).expect("phases keep matching valid");
                }
            }
        }
        perm
    }
}

impl Scheduler for PimScheduler {
    fn name(&self) -> &'static str {
        "pim"
    }

    fn hw_algo(&self) -> HwAlgo {
        HwAlgo::Pim {
            iterations: self.iterations,
        }
    }

    fn schedule(&mut self, demand: &DemandMatrix, ctx: &ScheduleCtx) -> Schedule {
        assert_eq!(demand.n(), self.n, "demand size mismatch");
        let requests = request_matrix(demand);
        let perm = self.matching(&requests);
        single_entry_schedule(perm, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::{ctx, run_and_validate};

    fn full_requests(n: usize) -> Vec<bool> {
        let mut r = vec![true; n * n];
        for i in 0..n {
            r[i * n + i] = false;
        }
        r
    }

    #[test]
    fn log_n_iterations_nearly_fill() {
        let mut s = PimScheduler::new(16, 4, SimRng::new(1));
        let total: usize = (0..20)
            .map(|_| s.matching(&full_requests(16)).assigned())
            .sum();
        assert!(
            total >= 280,
            "PIM with log n iters should average ≥14/16: {total}/320"
        );
    }

    #[test]
    fn single_iteration_leaves_holes() {
        // With 1 iteration and heavy contention, PIM famously matches only
        // ~75 % of ports — verify it is visibly below a 4-iteration run.
        let mut one = PimScheduler::new(32, 1, SimRng::new(2));
        let mut four = PimScheduler::new(32, 5, SimRng::new(2));
        let r = full_requests(32);
        let a: usize = (0..30).map(|_| one.matching(&r).assigned()).sum();
        let b: usize = (0..30).map(|_| four.matching(&r).assigned()).sum();
        assert!(a < b, "1-iter {a} should trail 5-iter {b}");
    }

    #[test]
    fn respects_requests_and_validates() {
        let mut s = PimScheduler::new(4, 3, SimRng::new(3));
        let mut demand = DemandMatrix::zero(4);
        demand.set(2, 1, 700);
        let sched = run_and_validate(&mut s, &demand, &ctx());
        assert_eq!(sched.entries[0].perm.output_of(2), Some(1));
        assert_eq!(sched.entries[0].perm.assigned(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || PimScheduler::new(8, 2, SimRng::new(42));
        let r = full_requests(8);
        let a: Vec<_> = {
            let mut s = mk();
            (0..10).map(|_| s.matching(&r)).collect()
        };
        let b: Vec<_> = {
            let mut s = mk();
            (0..10).map(|_| s.matching(&r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn empty_demand_is_empty_schedule() {
        let mut s = PimScheduler::new(4, 2, SimRng::new(4));
        assert!(run_and_validate(&mut s, &DemandMatrix::zero(4), &ctx())
            .entries
            .is_empty());
    }
}
