//! Switching logic: the OCS + EPS pair of Figure 2.
//!
//! "Before providing a grant to the processing logic, the scheduler sends
//! the grant matrix to the switching logic to configure the circuits in
//! the OCS to match the grant matrix." The runtime drives exactly that
//! order: configure first, grant (and move packets) only once the circuits
//! report active.

use xds_sim::{BitRate, SimDuration, SimTime};
use xds_switch::{Eps, Ocs, Permutation};

/// The data plane: one OCS and one EPS sharing the port set.
#[derive(Debug)]
pub struct SwitchingLogic {
    /// The optical circuit switch.
    pub ocs: Ocs,
    /// The electrical packet switch (residual path).
    pub eps: Eps,
}

impl SwitchingLogic {
    /// Builds the data plane.
    pub fn new(n_ports: usize, reconfig: SimDuration, eps_rate: BitRate, eps_buffer: u64) -> Self {
        SwitchingLogic {
            ocs: Ocs::new(n_ports, reconfig),
            eps: Eps::new(n_ports, eps_rate, eps_buffer),
        }
    }

    /// Applies a grant matrix to the OCS; returns when circuits are live.
    /// The permutation is borrowed — the schedule keeps ownership, the
    /// OCS copies into its preallocated pending buffer.
    pub fn configure(&mut self, perm: &Permutation, now: SimTime) -> SimTime {
        self.ocs.configure(perm, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_order_matches_figure_2() {
        // The grant matrix reaches the switching logic, circuits go dark,
        // then become live — only then may processing logic transmit.
        let mut sw = SwitchingLogic::new(4, SimDuration::from_micros(1), BitRate::GBPS_1, 100_000);
        let live_at = sw.configure(&Permutation::identity(4), SimTime::ZERO);
        assert_eq!(live_at, SimTime::from_micros(1));
        assert!(sw.ocs.is_dark(SimTime::from_nanos(500)));
        assert!(sw
            .ocs
            .transmit(0, 0, 100, SimTime::from_nanos(500))
            .is_err());
        assert!(sw.ocs.transmit(0, 0, 100, live_at).is_ok());
        // The EPS is available throughout — residual traffic never waits
        // for the OCS.
        assert!(sw.eps.enqueue(2, 1500, SimTime::from_nanos(100)).is_ok());
    }
}
