//! Interactive constant-bit-rate applications: the "VOIP, multiuser
//! gaming" traffic of the paper's §2 latency/jitter claim.

use xds_net::PortNo;
use xds_sim::{SimDuration, SimRng, SimTime};

/// A constant-bit-rate application flow (e.g. one VOIP call leg).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbrApp {
    /// Application instance id (also used as its flow id).
    pub id: u64,
    /// Sender.
    pub src: PortNo,
    /// Receiver.
    pub dst: PortNo,
    /// Packet size in bytes.
    pub pkt_bytes: u32,
    /// Nominal packet interval.
    pub interval: SimDuration,
    /// When the stream starts.
    pub start: SimTime,
    /// Uniform sender-side jitter applied to each interval, ± this bound
    /// (models OS timer slop; zero for a hardware-paced source).
    pub send_jitter: SimDuration,
}

impl CbrApp {
    /// A G.711-style VOIP leg: 200-byte packets (160 B payload + RTP/UDP/
    /// IP/Ethernet headers) every 20 ms.
    pub fn voip(id: u64, src: PortNo, dst: PortNo, start: SimTime) -> CbrApp {
        CbrApp {
            id,
            src,
            dst,
            pkt_bytes: 200,
            interval: SimDuration::from_millis(20),
            start,
            send_jitter: SimDuration::from_micros(50),
        }
    }

    /// A fast-paced game update stream: 120-byte packets every 33 ms
    /// (~30 Hz tick rate).
    pub fn gaming(id: u64, src: PortNo, dst: PortNo, start: SimTime) -> CbrApp {
        CbrApp {
            id,
            src,
            dst,
            pkt_bytes: 120,
            interval: SimDuration::from_millis(33),
            start,
            send_jitter: SimDuration::from_micros(200),
        }
    }

    /// The next send instant after `prev` (applying sender jitter).
    pub fn next_send(&self, prev: SimTime, rng: &mut SimRng) -> SimTime {
        let base = prev + self.interval;
        if self.send_jitter.is_zero() {
            return base;
        }
        let j = self.send_jitter.as_nanos();
        let delta = rng.range_u64(0, 2 * j + 1); // [0, 2j]
                                                 // base - j + delta ∈ [base - j, base + j]
        (base + SimDuration::from_nanos(delta)) - SimDuration::from_nanos(j)
    }

    /// The stream's bit rate.
    pub fn bitrate_bps(&self) -> f64 {
        self.pkt_bytes as f64 * 8.0 / self.interval.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voip_preset_is_g711_like() {
        let app = CbrApp::voip(1, PortNo(0), PortNo(1), SimTime::ZERO);
        // 200 B / 20 ms = 80 kb/s.
        assert!((app.bitrate_bps() - 80_000.0).abs() < 1.0);
    }

    #[test]
    fn next_send_advances_by_interval_with_bounded_jitter() {
        let app = CbrApp::voip(1, PortNo(0), PortNo(1), SimTime::ZERO);
        let mut rng = SimRng::new(9);
        let mut prev = app.start;
        for _ in 0..1000 {
            let next = app.next_send(prev, &mut rng);
            let gap = next.saturating_since(prev);
            let lo = app.interval - app.send_jitter;
            let hi = app.interval + app.send_jitter;
            assert!(gap >= lo && gap <= hi, "gap {gap} outside [{lo}, {hi}]");
            prev = next;
        }
    }

    #[test]
    fn zero_jitter_is_perfectly_periodic() {
        let mut app = CbrApp::voip(1, PortNo(0), PortNo(1), SimTime::ZERO);
        app.send_jitter = SimDuration::ZERO;
        let mut rng = SimRng::new(10);
        let t1 = app.next_send(SimTime::ZERO, &mut rng);
        assert_eq!(t1, SimTime::ZERO + app.interval);
    }

    #[test]
    fn gaming_preset_is_lighter_than_voip() {
        let g = CbrApp::gaming(2, PortNo(0), PortNo(1), SimTime::ZERO);
        let v = CbrApp::voip(1, PortNo(0), PortNo(1), SimTime::ZERO);
        assert!(g.bitrate_bps() < v.bitrate_bps());
    }
}
