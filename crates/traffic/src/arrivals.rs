//! Arrival processes: when do new flows begin?
//!
//! Poisson arrivals model aggregate data-center flow arrivals well at the
//! timescales of interest; the ON/OFF process generates the "long bursts"
//! the paper routes to the OCS (trains of flows during ON periods, silence
//! during OFF).

use xds_sim::{SimDuration, SimRng};

/// A stateful inter-arrival generator.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrivals with the given mean.
    Poisson {
        /// Mean inter-arrival time.
        mean_gap: SimDuration,
    },
    /// Two-state ON/OFF (Markov-modulated) process: during ON, arrivals are
    /// Poisson with `mean_gap_on`; OFF periods produce no arrivals.
    OnOff {
        /// Mean gap between arrivals while ON.
        mean_gap_on: SimDuration,
        /// Mean ON period duration.
        mean_on: SimDuration,
        /// Mean OFF period duration.
        mean_off: SimDuration,
        /// Time left in the current ON period (internal state).
        on_remaining: SimDuration,
    },
    /// Two-state MMPP with *both* states active: Poisson at `mean_gap_a`
    /// while in state A, `mean_gap_b` in state B, with exponentially
    /// distributed sojourns. Generalizes [`ArrivalProcess::OnOff`]
    /// (state B with an infinite gap).
    Mmpp2 {
        /// Mean inter-arrival gap in state A.
        mean_gap_a: SimDuration,
        /// Mean inter-arrival gap in state B.
        mean_gap_b: SimDuration,
        /// Mean sojourn in state A.
        mean_sojourn_a: SimDuration,
        /// Mean sojourn in state B.
        mean_sojourn_b: SimDuration,
        /// Internal state: currently in state A?
        in_a: bool,
        /// Internal state: time remaining in the current sojourn.
        sojourn_remaining: SimDuration,
    },
}

impl ArrivalProcess {
    /// Poisson with a given arrival *rate* (flows per second).
    pub fn poisson_rate(flows_per_sec: f64) -> Self {
        assert!(
            flows_per_sec.is_finite() && flows_per_sec > 0.0,
            "arrival rate must be positive"
        );
        ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_secs_f64(1.0 / flows_per_sec),
        }
    }

    /// ON/OFF process with the given mean gap during ON and duty-cycle
    /// periods. The *effective* rate is
    /// `(mean_on / (mean_on + mean_off)) / mean_gap_on`.
    pub fn on_off(mean_gap_on: SimDuration, mean_on: SimDuration, mean_off: SimDuration) -> Self {
        assert!(!mean_gap_on.is_zero() && !mean_on.is_zero() && !mean_off.is_zero());
        ArrivalProcess::OnOff {
            mean_gap_on,
            mean_on,
            mean_off,
            on_remaining: SimDuration::ZERO,
        }
    }

    /// MMPP-2 with both states active.
    pub fn mmpp2(
        mean_gap_a: SimDuration,
        mean_gap_b: SimDuration,
        mean_sojourn_a: SimDuration,
        mean_sojourn_b: SimDuration,
    ) -> Self {
        assert!(
            !mean_gap_a.is_zero()
                && !mean_gap_b.is_zero()
                && !mean_sojourn_a.is_zero()
                && !mean_sojourn_b.is_zero()
        );
        ArrivalProcess::Mmpp2 {
            mean_gap_a,
            mean_gap_b,
            mean_sojourn_a,
            mean_sojourn_b,
            in_a: true,
            sojourn_remaining: SimDuration::ZERO,
        }
    }

    /// Draws the gap until the next arrival.
    pub fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        match self {
            ArrivalProcess::Poisson { mean_gap } => {
                SimDuration::from_secs_f64(rng.exp(mean_gap.as_secs_f64()))
            }
            ArrivalProcess::OnOff {
                mean_gap_on,
                mean_on,
                mean_off,
                on_remaining,
            } => {
                let mut gap = SimDuration::ZERO;
                loop {
                    if on_remaining.is_zero() {
                        // Enter an OFF period, then a fresh ON period.
                        gap += SimDuration::from_secs_f64(rng.exp(mean_off.as_secs_f64()));
                        *on_remaining = SimDuration::from_secs_f64(rng.exp(mean_on.as_secs_f64()));
                    }
                    let next = SimDuration::from_secs_f64(rng.exp(mean_gap_on.as_secs_f64()));
                    if next <= *on_remaining {
                        *on_remaining = on_remaining.saturating_sub(next);
                        return gap + next;
                    }
                    // The ON period ends before the next arrival: burn it.
                    gap += *on_remaining;
                    *on_remaining = SimDuration::ZERO;
                }
            }
            ArrivalProcess::Mmpp2 {
                mean_gap_a,
                mean_gap_b,
                mean_sojourn_a,
                mean_sojourn_b,
                in_a,
                sojourn_remaining,
            } => {
                let mut gap = SimDuration::ZERO;
                loop {
                    if sojourn_remaining.is_zero() {
                        let mean = if *in_a {
                            *mean_sojourn_a
                        } else {
                            *mean_sojourn_b
                        };
                        *sojourn_remaining =
                            SimDuration::from_secs_f64(rng.exp(mean.as_secs_f64()));
                    }
                    let gap_mean = if *in_a { *mean_gap_a } else { *mean_gap_b };
                    let next = SimDuration::from_secs_f64(rng.exp(gap_mean.as_secs_f64()));
                    if next <= *sojourn_remaining {
                        *sojourn_remaining = sojourn_remaining.saturating_sub(next);
                        return gap + next;
                    }
                    // Sojourn ends first: advance time and switch state.
                    gap += *sojourn_remaining;
                    *sojourn_remaining = SimDuration::ZERO;
                    *in_a = !*in_a;
                }
            }
        }
    }

    /// Long-run average arrival rate in flows/second.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean_gap } => 1.0 / mean_gap.as_secs_f64(),
            ArrivalProcess::OnOff {
                mean_gap_on,
                mean_on,
                mean_off,
                ..
            } => {
                let duty = mean_on.as_secs_f64() / (mean_on.as_secs_f64() + mean_off.as_secs_f64());
                duty / mean_gap_on.as_secs_f64()
            }
            ArrivalProcess::Mmpp2 {
                mean_gap_a,
                mean_gap_b,
                mean_sojourn_a,
                mean_sojourn_b,
                ..
            } => {
                let ta = mean_sojourn_a.as_secs_f64();
                let tb = mean_sojourn_b.as_secs_f64();
                let frac_a = ta / (ta + tb);
                frac_a / mean_gap_a.as_secs_f64() + (1.0 - frac_a) / mean_gap_b.as_secs_f64()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches_over_many_samples() {
        let mut p = ArrivalProcess::poisson_rate(10_000.0);
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let rate = n as f64 / total;
        assert!((rate - 10_000.0).abs() / 10_000.0 < 0.02, "rate {rate}");
        assert!((p.mean_rate() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn on_off_produces_bursts_and_gaps() {
        let mut p = ArrivalProcess::on_off(
            SimDuration::from_micros(10),
            SimDuration::from_millis(1),
            SimDuration::from_millis(4),
        );
        let mut rng = SimRng::new(6);
        let gaps: Vec<SimDuration> = (0..20_000).map(|_| p.next_gap(&mut rng)).collect();
        // Bursty: many tiny gaps (intra-burst) and some large (inter-burst).
        let tiny = gaps.iter().filter(|g| g.as_nanos() < 50_000).count();
        let huge = gaps.iter().filter(|g| g.as_nanos() > 1_000_000).count();
        assert!(tiny > 10_000, "expected many intra-burst gaps, got {tiny}");
        assert!(huge > 100, "expected inter-burst gaps, got {huge}");
    }

    #[test]
    fn on_off_long_run_rate() {
        // duty = 1ms/(1ms+4ms) = 0.2; rate = 0.2 / 10µs = 20k/s.
        let mut p = ArrivalProcess::on_off(
            SimDuration::from_micros(10),
            SimDuration::from_millis(1),
            SimDuration::from_millis(4),
        );
        assert!((p.mean_rate() - 20_000.0).abs() < 1.0);
        let mut rng = SimRng::new(7);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let rate = n as f64 / total;
        assert!(
            (rate - 20_000.0).abs() / 20_000.0 < 0.05,
            "long-run rate {rate}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        ArrivalProcess::poisson_rate(0.0);
    }

    #[test]
    fn mmpp2_long_run_rate_matches_mixture() {
        // State A: gap 10 µs (100k/s) for 1 ms; state B: gap 100 µs
        // (10k/s) for 3 ms. Long-run rate = 0.25·100k + 0.75·10k = 32.5k/s.
        let mut p = ArrivalProcess::mmpp2(
            SimDuration::from_micros(10),
            SimDuration::from_micros(100),
            SimDuration::from_millis(1),
            SimDuration::from_millis(3),
        );
        assert!((p.mean_rate() - 32_500.0).abs() < 1.0);
        let mut rng = SimRng::new(31);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let rate = n as f64 / total;
        assert!(
            (rate - 32_500.0).abs() / 32_500.0 < 0.05,
            "long-run rate {rate}"
        );
    }

    #[test]
    fn mmpp2_produces_two_regimes() {
        let mut p = ArrivalProcess::mmpp2(
            SimDuration::from_micros(1),
            SimDuration::from_millis(1),
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
        );
        let mut rng = SimRng::new(33);
        let gaps: Vec<u64> = (0..50_000)
            .map(|_| p.next_gap(&mut rng).as_nanos())
            .collect();
        let fast = gaps.iter().filter(|&&g| g < 10_000).count();
        let slow = gaps.iter().filter(|&&g| g > 200_000).count();
        assert!(fast > 10_000, "fast-state gaps expected: {fast}");
        assert!(slow > 50, "slow-state gaps expected: {slow}");
    }
}
