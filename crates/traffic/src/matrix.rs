//! Traffic matrices: who talks to whom, and how much.
//!
//! A matrix entry `m[s][d]` is the fraction of offered load from source
//! port `s` to destination `d` (diagonal forced to zero — a host does not
//! transit the switch to reach itself). The patterns are the standard ones
//! hybrid-switch schedulers are evaluated on:
//!
//! * `uniform` — all-to-all, the friendliest case for packet switching;
//! * `permutation` — one hot destination per source, the best case for
//!   circuit switching;
//! * `hotspot` — a few rack pairs carry most of the load over a uniform
//!   background (the c-Through/Helios motivating case);
//! * `zipf` — skewed per-pair popularity;
//! * `incast` — many sources converge on one destination (the worst case
//!   for any scheduler: the destination port is the bottleneck).

use std::sync::OnceLock;

use xds_sim::SimRng;

/// An `n × n` matrix of load fractions summing to 1 with a zero diagonal.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    frac: Vec<f64>,
    /// Cumulative distribution for pair sampling, built lazily on first
    /// use: it is an `n²` derivation of `frac` that only flow sampling
    /// needs, and consumers that never sample (the estimate tier, matrix
    /// analysis) would otherwise pay a full extra pass per matrix.
    cdf: OnceLock<Vec<f64>>,
}

impl PartialEq for TrafficMatrix {
    fn eq(&self, other: &Self) -> bool {
        // The cdf is a pure derivation of `frac`; comparing it would only
        // re-compare the same information.
        self.n == other.n && self.frac == other.frac
    }
}

impl TrafficMatrix {
    /// Builds from raw weights (any non-negative values; normalized
    /// internally). Diagonal entries are zeroed.
    pub fn from_weights(n: usize, weights: Vec<f64>) -> Result<Self, String> {
        if n < 2 {
            return Err("traffic matrix needs at least 2 ports".into());
        }
        if weights.len() != n * n {
            return Err(format!(
                "expected {} weights for n={n}, got {}",
                n * n,
                weights.len()
            ));
        }
        let mut frac = weights;
        for s in 0..n {
            frac[s * n + s] = 0.0;
        }
        let mut total = 0.0;
        for &w in &frac {
            if !w.is_finite() || w < 0.0 {
                return Err(format!("weight {w} is not a finite non-negative number"));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err("matrix has no off-diagonal load".into());
        }
        for w in &mut frac {
            *w /= total;
        }
        Ok(TrafficMatrix {
            n,
            frac,
            cdf: OnceLock::new(),
        })
    }

    /// Uniform all-to-all.
    pub fn uniform(n: usize) -> Self {
        Self::from_weights(n, vec![1.0; n * n]).expect("uniform matrix is valid")
    }

    /// A (cyclic-shift) permutation: source `s` sends only to `(s+k) % n`.
    pub fn permutation(n: usize, k: usize) -> Self {
        assert!(
            !k.is_multiple_of(n),
            "shift 0 would put all load on the diagonal"
        );
        let mut w = vec![0.0; n * n];
        for s in 0..n {
            w[s * n + (s + k) % n] = 1.0;
        }
        Self::from_weights(n, w).expect("permutation matrix is valid")
    }

    /// `num_hot` hot pairs carrying `hot_fraction` of the load over a
    /// uniform background. Hot pairs are `(i, (i + 1 + offset) % n)` for
    /// `i < num_hot` — deterministic so experiments can rotate them.
    pub fn hotspot(n: usize, num_hot: usize, hot_fraction: f64, offset: usize) -> Self {
        assert!(num_hot > 0 && num_hot <= n, "need 1..=n hot pairs");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot fraction must be in [0,1]"
        );
        let mut w = vec![if hot_fraction < 1.0 { 1.0 } else { 0.0 }; n * n];
        // Background weight total (excluding diagonal): n*(n-1) entries of
        // weight 1, including the hot cells' own background share. Solve
        //   num_hot*(1 + x) / (bg_total + num_hot*x) = hot_fraction
        // for the extra weight x per hot cell.
        let bg_total: f64 = (n * (n - 1)) as f64;
        let hot_weight = if hot_fraction < 1.0 {
            let f = hot_fraction;
            let k = num_hot as f64;
            ((f * bg_total - k) / (k * (1.0 - f))).max(0.0)
        } else {
            1.0
        };
        for i in 0..num_hot {
            let dst = (i + 1 + offset) % n;
            if dst != i {
                w[i * n + dst] += hot_weight;
            } else {
                w[i * n + (dst + 1) % n] += hot_weight;
            }
        }
        Self::from_weights(n, w).expect("hotspot matrix is valid")
    }

    /// Zipf-skewed pair popularity with exponent `s`, pair order shuffled
    /// by `rng`.
    pub fn zipf(n: usize, s: f64, rng: &mut SimRng) -> Self {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| (0..n).filter(move |&b| b != a).map(move |b| (a, b)))
            .collect();
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        rng.shuffle(&mut order);
        let mut w = vec![0.0; n * n];
        for (rank, &pi) in order.iter().enumerate() {
            let (a, b) = pairs[pi];
            w[a * n + b] = 1.0 / ((rank + 1) as f64).powf(s);
        }
        Self::from_weights(n, w).expect("zipf matrix is valid")
    }

    /// `m` sources (ports `0..m`, excluding the target) all sending to one
    /// `target` port, no background.
    pub fn incast(n: usize, m: usize, target: usize) -> Self {
        assert!(target < n, "target out of range");
        assert!(m >= 1 && m < n, "need 1..n-1 senders");
        let mut w = vec![0.0; n * n];
        let mut senders = 0;
        for s in 0..n {
            if s == target {
                continue;
            }
            if senders == m {
                break;
            }
            w[s * n + target] = 1.0;
            senders += 1;
        }
        Self::from_weights(n, w).expect("incast matrix is valid")
    }

    /// The `n−1` stages of an all-to-all shuffle (map-reduce style): stage
    /// *k* is the cyclic permutation `src → src+k+1`. Drive them with
    /// [`xds-core`'s matrix rotation] to emulate a staged shuffle whose
    /// communication pattern changes every period — a classic OCS stress
    /// test (each stage is circuit-friendly; the *transitions* cost
    /// reconfigurations).
    pub fn shuffle_stages(n: usize) -> Vec<TrafficMatrix> {
        (1..n).map(|k| TrafficMatrix::permutation(n, k)).collect()
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The load fraction from `s` to `d`.
    pub fn fraction(&self, s: usize, d: usize) -> f64 {
        self.frac[s * self.n + d]
    }

    /// Iterates the matrix row by row (source-major `n`-length slices).
    /// Sequential consumers should prefer this over per-element
    /// [`Self::fraction`] calls — one bounds check per row, hardware
    /// prefetch across the whole walk.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.frac.chunks_exact(self.n)
    }

    /// Samples a `(src, dst)` pair proportionally to the matrix.
    pub fn sample_pair(&self, rng: &mut SimRng) -> (usize, usize) {
        let cdf = self.cdf.get_or_init(|| {
            let mut acc = 0.0;
            self.frac
                .iter()
                .map(|&w| {
                    acc += w;
                    acc
                })
                .collect()
        });
        let u = rng.f64();
        let idx = match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) => i,
            Err(i) => i.min(cdf.len() - 1),
        };
        (idx / self.n, idx % self.n)
    }

    /// Row sums (per-source offered fraction).
    pub fn row_sums(&self) -> Vec<f64> {
        self.row_col_sums().0
    }

    /// Column sums (per-destination offered fraction).
    pub fn col_sums(&self) -> Vec<f64> {
        self.row_col_sums().1
    }

    /// Row and column sums in one row-major pass. A column-major sweep
    /// strides `8n` bytes per element — every access a cache miss at
    /// kilofabric sizes — so both sums accumulate over the same
    /// sequential walk. Per-destination addition order (ascending source)
    /// is unchanged, so the sums are bit-identical to the naive loops.
    pub fn row_col_sums(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.n;
        let mut rows = vec![0.0; n];
        let mut cols = vec![0.0; n];
        for (row, row_sum) in self.frac.chunks_exact(n).zip(rows.iter_mut()) {
            let mut sum = 0.0;
            for (d, &f) in row.iter().enumerate() {
                sum += f;
                cols[d] += f;
            }
            *row_sum = sum;
        }
        (rows, cols)
    }

    /// The largest row or column sum, as a multiple of the uniform share
    /// `1/n`. A value of 1.0 means perfectly balanced; the offered load on
    /// the busiest port is `load × imbalance`. Experiments use this to keep
    /// swept loads admissible.
    pub fn imbalance(&self) -> f64 {
        let (rows, cols) = self.row_col_sums();
        let max_row = rows.into_iter().fold(0.0, f64::max);
        let max_col = cols.into_iter().fold(0.0, f64::max);
        max_row.max(max_col) * self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(m: &TrafficMatrix) {
        let total: f64 = (0..m.n())
            .flat_map(|s| (0..m.n()).map(move |d| m.fraction(s, d)))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
        for i in 0..m.n() {
            assert_eq!(m.fraction(i, i), 0.0, "diagonal must be zero");
        }
    }

    #[test]
    fn uniform_is_balanced() {
        let m = TrafficMatrix::uniform(8);
        assert_valid(&m);
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
        // Every off-diagonal pair equal.
        let f = m.fraction(0, 1);
        assert!((m.fraction(3, 7) - f).abs() < 1e-12);
    }

    #[test]
    fn permutation_concentrates_rows() {
        let m = TrafficMatrix::permutation(8, 3);
        assert_valid(&m);
        for s in 0..8 {
            assert!((m.fraction(s, (s + 3) % 8) - 1.0 / 8.0).abs() < 1e-9);
        }
        assert!(
            (m.imbalance() - 1.0).abs() < 1e-9,
            "permutations are balanced"
        );
    }

    #[test]
    fn hotspot_carries_requested_fraction() {
        let m = TrafficMatrix::hotspot(16, 4, 0.7, 0);
        assert_valid(&m);
        let hot: f64 = (0..4).map(|i| m.fraction(i, i + 1)).sum();
        assert!((hot - 0.7).abs() < 1e-9, "hot fraction {hot}");
        assert!(m.imbalance() > 1.5, "hotspots are imbalanced");
    }

    #[test]
    fn hotspot_rotation_moves_the_hot_pairs() {
        let a = TrafficMatrix::hotspot(8, 2, 0.8, 0);
        let b = TrafficMatrix::hotspot(8, 2, 0.8, 3);
        assert!(a.fraction(0, 1) > 0.1);
        assert!(b.fraction(0, 1) < 0.1);
        assert!(b.fraction(0, 4) > 0.1);
    }

    #[test]
    fn full_hotspot_fraction_one() {
        let m = TrafficMatrix::hotspot(4, 2, 1.0, 0);
        assert_valid(&m);
        let hot: f64 = (0..2).map(|i| m.fraction(i, i + 1)).sum();
        assert!((hot - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incast_targets_one_port() {
        let m = TrafficMatrix::incast(8, 5, 3);
        assert_valid(&m);
        let col = m.col_sums();
        assert!((col[3] - 1.0).abs() < 1e-9);
        assert!(
            (m.imbalance() - 8.0).abs() < 1e-9,
            "incast is maximally imbalanced"
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = SimRng::new(11);
        let m = TrafficMatrix::zipf(8, 1.5, &mut rng);
        assert_valid(&m);
        let mut fracs: Vec<f64> = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| m.fraction(s, d))
            .collect();
        fracs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(fracs[0] > 10.0 * fracs[20], "zipf head should dominate");
    }

    #[test]
    fn sampling_tracks_fractions() {
        let m = TrafficMatrix::hotspot(4, 1, 0.9, 0);
        let mut rng = SimRng::new(12);
        let mut hot_hits = 0;
        let n = 100_000;
        for _ in 0..n {
            let (s, d) = m.sample_pair(&mut rng);
            assert_ne!(s, d, "never sample the diagonal");
            if (s, d) == (0, 1) {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "hot pair sampled {frac}");
    }

    #[test]
    fn shuffle_stages_cover_every_pair_exactly_once() {
        let n = 6;
        let stages = TrafficMatrix::shuffle_stages(n);
        assert_eq!(stages.len(), n - 1);
        let mut hits = vec![0u32; n * n];
        for st in &stages {
            assert_valid(st);
            for s in 0..n {
                for d in 0..n {
                    if st.fraction(s, d) > 0.0 {
                        hits[s * n + d] += 1;
                    }
                }
            }
        }
        for s in 0..n {
            for d in 0..n {
                let expect = if s == d { 0 } else { 1 };
                assert_eq!(hits[s * n + d], expect, "pair ({s},{d})");
            }
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(TrafficMatrix::from_weights(1, vec![1.0]).is_err());
        assert!(TrafficMatrix::from_weights(2, vec![1.0; 3]).is_err());
        // Only diagonal weight → no load.
        assert!(TrafficMatrix::from_weights(2, vec![1.0, 0.0, 0.0, 1.0]).is_err());
        assert!(TrafficMatrix::from_weights(2, vec![0.0, f64::NAN, 0.0, 0.0]).is_err());
        assert!(TrafficMatrix::from_weights(2, vec![0.0, -1.0, 1.0, 0.0]).is_err());
    }
}
