//! MTU segmentation: a flow of `bytes` becomes `ceil(bytes / mtu)` packets,
//! all MTU-sized except a possibly-short tail.

/// Returns the packet sizes for a flow (non-allocating iterator).
pub fn packet_sizes(flow_bytes: u64, mtu: u32) -> impl Iterator<Item = u32> {
    assert!(mtu > 0, "MTU must be positive");
    let full = flow_bytes / mtu as u64;
    let tail = (flow_bytes % mtu as u64) as u32;
    (0..full)
        .map(move |_| mtu)
        .chain((tail > 0).then_some(tail))
}

/// Number of packets a flow becomes.
pub fn packet_count(flow_bytes: u64, mtu: u32) -> u64 {
    assert!(mtu > 0, "MTU must be positive");
    flow_bytes.div_ceil(mtu as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_has_no_tail() {
        let sizes: Vec<u32> = packet_sizes(4500, 1500).collect();
        assert_eq!(sizes, vec![1500, 1500, 1500]);
        assert_eq!(packet_count(4500, 1500), 3);
    }

    #[test]
    fn remainder_becomes_short_tail() {
        let sizes: Vec<u32> = packet_sizes(3100, 1500).collect();
        assert_eq!(sizes, vec![1500, 1500, 100]);
        assert_eq!(packet_count(3100, 1500), 3);
    }

    #[test]
    fn tiny_flow_is_one_packet() {
        let sizes: Vec<u32> = packet_sizes(1, 1500).collect();
        assert_eq!(sizes, vec![1]);
    }

    #[test]
    fn zero_bytes_is_zero_packets() {
        assert_eq!(packet_sizes(0, 1500).count(), 0);
        assert_eq!(packet_count(0, 1500), 0);
    }

    #[test]
    fn sizes_sum_to_flow_bytes() {
        for bytes in [1u64, 1499, 1500, 1501, 9_000, 1_000_000, 12_345_678] {
            let total: u64 = packet_sizes(bytes, 1500).map(u64::from).sum();
            assert_eq!(total, bytes);
        }
    }
}
