//! The flow generator: arrival process × traffic matrix × size
//! distribution, calibrated to an offered load.

use xds_net::{PortNo, TrafficClass};
use xds_sim::{BitRate, SimRng, SimTime};

use crate::arrivals::ArrivalProcess;
use crate::matrix::TrafficMatrix;
use crate::size_dist::FlowSizeDist;

/// One flow to be injected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Unique flow id.
    pub id: u64,
    /// Source port/host.
    pub src: PortNo,
    /// Destination port/host.
    pub dst: PortNo,
    /// Flow size in bytes.
    pub bytes: u64,
    /// When the flow arrives at its source host.
    pub start: SimTime,
    /// Traffic class (derived from size against the bulk threshold).
    pub class: TrafficClass,
}

/// Generates an endless, time-ordered stream of flows.
#[derive(Debug, Clone)]
pub struct FlowGenerator {
    matrix: TrafficMatrix,
    sizes: FlowSizeDist,
    arrivals: ArrivalProcess,
    rng: SimRng,
    next_id: u64,
    clock: SimTime,
    /// Flows at or above this size are classed [`TrafficClass::Bulk`]
    /// (OCS candidates); smaller ones are [`TrafficClass::Short`].
    pub bulk_threshold: u64,
}

impl FlowGenerator {
    /// Default boundary between "short bursts" (EPS) and "long bursts"
    /// (OCS candidates): 100 KB, the conventional mice/elephant split.
    pub const DEFAULT_BULK_THRESHOLD: u64 = 100_000;

    /// Creates a generator producing `load` × aggregate capacity of
    /// offered bytes: with `n` ports at `line_rate` each, the aggregate
    /// byte arrival rate is `load · n · line_rate/8`, converted to a flow
    /// arrival rate via the size distribution's mean.
    pub fn with_load(
        matrix: TrafficMatrix,
        sizes: FlowSizeDist,
        load: f64,
        line_rate: BitRate,
        rng: SimRng,
    ) -> Self {
        assert!(load > 0.0 && load.is_finite(), "load must be positive");
        let agg_bytes_per_sec = load * matrix.n() as f64 * line_rate.bytes_per_sec() as f64;
        let flows_per_sec = agg_bytes_per_sec / sizes.mean_bytes();
        Self::with_arrivals(
            matrix,
            sizes,
            ArrivalProcess::poisson_rate(flows_per_sec),
            rng,
        )
    }

    /// Creates a generator with an explicit arrival process.
    pub fn with_arrivals(
        matrix: TrafficMatrix,
        sizes: FlowSizeDist,
        arrivals: ArrivalProcess,
        rng: SimRng,
    ) -> Self {
        FlowGenerator {
            matrix,
            sizes,
            arrivals,
            rng,
            next_id: 0,
            clock: SimTime::ZERO,
            bulk_threshold: Self::DEFAULT_BULK_THRESHOLD,
        }
    }

    /// Sets the bulk threshold (builder style).
    pub fn with_bulk_threshold(mut self, bytes: u64) -> Self {
        self.bulk_threshold = bytes;
        self
    }

    /// Replaces the traffic matrix mid-run (hotspot rotation in E6).
    pub fn set_matrix(&mut self, matrix: TrafficMatrix) {
        assert_eq!(matrix.n(), self.matrix.n(), "port count must not change");
        self.matrix = matrix;
    }

    /// The traffic matrix currently in use.
    pub fn matrix(&self) -> &TrafficMatrix {
        &self.matrix
    }

    /// Generates the next flow; `start` times are non-decreasing.
    pub fn next_flow(&mut self) -> FlowSpec {
        let gap = self.arrivals.next_gap(&mut self.rng);
        self.clock += gap;
        let (src, dst) = self.matrix.sample_pair(&mut self.rng);
        let bytes = self.sizes.sample_bytes(&mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        FlowSpec {
            id,
            src: PortNo::from(src),
            dst: PortNo::from(dst),
            bytes,
            start: self.clock,
            class: if bytes >= self.bulk_threshold {
                TrafficClass::Bulk
            } else {
                TrafficClass::Short
            },
        }
    }

    /// Materializes all flows starting before `horizon` (inclusive of none
    /// after), for harnesses that want a static workload.
    pub fn flows_until(&mut self, horizon: SimTime) -> Vec<FlowSpec> {
        let mut out = Vec::new();
        loop {
            let f = self.next_flow();
            if f.start > horizon {
                break;
            }
            out.push(f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_sim::SimDuration;

    fn generator(load: f64) -> FlowGenerator {
        FlowGenerator::with_load(
            TrafficMatrix::uniform(8),
            FlowSizeDist::Fixed(10_000),
            load,
            BitRate::GBPS_10,
            SimRng::new(1),
        )
    }

    #[test]
    fn offered_load_matches_request() {
        let mut g = generator(0.5);
        let horizon = SimTime::from_millis(20);
        let flows = g.flows_until(horizon);
        let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered_gbps = bytes as f64 * 8.0 / horizon.as_secs_f64() / 1e9;
        // 8 ports × 10G × 0.5 = 40 Gb/s aggregate.
        assert!(
            (offered_gbps - 40.0).abs() / 40.0 < 0.05,
            "offered {offered_gbps} Gb/s"
        );
    }

    #[test]
    fn starts_are_monotonic_and_ids_unique() {
        let mut g = generator(0.8);
        let mut last = SimTime::ZERO;
        // BTreeSet: membership only, but deterministic-core code (tests
        // included) avoids randomly seeded hash collections wholesale.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let f = g.next_flow();
            assert!(f.start >= last);
            last = f.start;
            assert!(seen.insert(f.id), "duplicate flow id {}", f.id);
            assert_ne!(f.src, f.dst, "self-flows are meaningless");
        }
    }

    #[test]
    fn class_follows_threshold() {
        let mut g = FlowGenerator::with_load(
            TrafficMatrix::uniform(4),
            FlowSizeDist::WebSearch,
            0.3,
            BitRate::GBPS_10,
            SimRng::new(3),
        )
        .with_bulk_threshold(50_000);
        for _ in 0..1000 {
            let f = g.next_flow();
            if f.bytes >= 50_000 {
                assert_eq!(f.class, TrafficClass::Bulk);
            } else {
                assert_eq!(f.class, TrafficClass::Short);
            }
        }
    }

    #[test]
    fn matrix_swap_changes_destinations() {
        let mut g = FlowGenerator::with_load(
            TrafficMatrix::permutation(4, 1),
            FlowSizeDist::Fixed(1000),
            0.5,
            BitRate::GBPS_10,
            SimRng::new(4),
        );
        for _ in 0..100 {
            let f = g.next_flow();
            assert_eq!(f.dst.index(), (f.src.index() + 1) % 4);
        }
        g.set_matrix(TrafficMatrix::permutation(4, 2));
        for _ in 0..100 {
            let f = g.next_flow();
            assert_eq!(f.dst.index(), (f.src.index() + 2) % 4);
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let a: Vec<FlowSpec> = {
            let mut g = generator(0.5);
            (0..100).map(|_| g.next_flow()).collect()
        };
        let b: Vec<FlowSpec> = {
            let mut g = generator(0.5);
            (0..100).map(|_| g.next_flow()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn flows_until_respects_horizon() {
        let mut g = generator(0.5);
        let flows = g.flows_until(SimTime::from_micros(500));
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.start <= SimTime::from_micros(500)));
        // Next flow from the generator continues after the horizon.
        let next = g.next_flow();
        assert!(
            next.start + SimDuration::ZERO > SimTime::from_micros(500)
                || next.start <= SimTime::from_micros(500)
        );
    }
}
