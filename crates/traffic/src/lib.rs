//! # xds-traffic — data-center workload generation
//!
//! The paper motivates hybrid switching with data-center traffic structure:
//! "the OCS is used to serve long bursts of traffic and the EPS is used to
//! serve the remaining traffic and short bursts" (§1), and §2's latency
//! argument is about "widely used applications (i.e., VOIP, multiuser
//! gaming etc.)". This crate generates exactly those traffic classes:
//!
//! * [`size_dist`] — heavy-tailed flow-size distributions, including
//!   empirical CDFs shaped after the published web-search (DCTCP) and
//!   data-mining (VL2) workloads;
//! * [`arrivals`] — Poisson and bursty ON/OFF arrival processes;
//! * [`matrix`] — traffic matrices: uniform, permutation, hotspot, Zipf,
//!   incast;
//! * [`flow`] — the flow generator combining the three, calibrated to an
//!   offered load relative to aggregate line rate;
//! * [`packetize`] — MTU segmentation;
//! * [`apps`] — constant-bit-rate interactive applications (VOIP, gaming).
//!
//! All generators are deterministic functions of a [`xds_sim::SimRng`].

#![warn(missing_docs)]

pub mod apps;
pub mod arrivals;
pub mod flow;
pub mod matrix;
pub mod packetize;
pub mod size_dist;

pub use apps::CbrApp;
pub use arrivals::ArrivalProcess;
pub use flow::{FlowGenerator, FlowSpec};
pub use matrix::TrafficMatrix;
pub use packetize::packet_sizes;
pub use size_dist::FlowSizeDist;
