//! Flow-size distributions.
//!
//! The two named empirical CDFs follow the shapes reported in the standard
//! data-center measurement studies used by every hybrid-switch evaluation:
//!
//! * **web-search** (after the DCTCP workload): mostly small request/
//!   response flows with a moderate tail into tens of MB;
//! * **data-mining** (after the VL2 workload): extremely heavy-tailed —
//!   half the flows are under ~1 KB yet most *bytes* live in multi-MB to
//!   GB background flows.
//!
//! These are intentionally *shapes*, not exact reprints: DESIGN.md records
//! this substitution (synthetic equivalents preserving the mice/elephant
//! byte split that drives EPS/OCS partitioning).

use xds_sim::{Dist, EmpiricalCdf, Sample, SimRng};

/// A flow-size sampler (bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum FlowSizeDist {
    /// Web-search-like (DCTCP shape).
    WebSearch,
    /// Data-mining-like (VL2 shape).
    DataMining,
    /// All flows the same size.
    Fixed(u64),
    /// Any custom distribution over bytes.
    Custom(Dist),
}

impl FlowSizeDist {
    fn cdf(&self) -> Dist {
        match self {
            FlowSizeDist::WebSearch => Dist::Empirical(
                EmpiricalCdf::new(vec![
                    (6_000.0, 0.15),
                    (13_000.0, 0.30),
                    (19_000.0, 0.50),
                    (33_000.0, 0.60),
                    (133_000.0, 0.70),
                    (667_000.0, 0.80),
                    (1_300_000.0, 0.90),
                    (6_700_000.0, 0.95),
                    (20_000_000.0, 0.98),
                    (30_000_000.0, 1.00),
                ])
                .expect("static CDF is well-formed"),
            ),
            FlowSizeDist::DataMining => Dist::Empirical(
                EmpiricalCdf::new(vec![
                    (100.0, 0.10),
                    (300.0, 0.30),
                    (1_000.0, 0.50),
                    (10_000.0, 0.60),
                    (100_000.0, 0.70),
                    (1_000_000.0, 0.80),
                    (10_000_000.0, 0.90),
                    (100_000_000.0, 0.97),
                    (1_000_000_000.0, 1.00),
                ])
                .expect("static CDF is well-formed"),
            ),
            FlowSizeDist::Fixed(b) => Dist::Constant(*b as f64),
            FlowSizeDist::Custom(d) => d.clone(),
        }
    }

    /// Draws one flow size in bytes (minimum 1).
    pub fn sample_bytes(&self, rng: &mut SimRng) -> u64 {
        (self.cdf().sample(rng).round() as u64).max(1)
    }

    /// Mean flow size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.cdf()
            .mean()
            .expect("all supported size distributions have finite means")
    }

    /// Label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            FlowSizeDist::WebSearch => "websearch",
            FlowSizeDist::DataMining => "datamining",
            FlowSizeDist::Fixed(_) => "fixed",
            FlowSizeDist::Custom(_) => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &FlowSizeDist, n: usize) -> f64 {
        let mut rng = SimRng::new(42);
        (0..n).map(|_| d.sample_bytes(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn websearch_is_mouse_dominated_but_byte_heavy() {
        let mut rng = SimRng::new(1);
        let d = FlowSizeDist::WebSearch;
        let n = 50_000;
        let sizes: Vec<u64> = (0..n).map(|_| d.sample_bytes(&mut rng)).collect();
        let mice = sizes.iter().filter(|&&s| s < 100_000).count() as f64 / n as f64;
        // ~2/3 of web-search flows are under 100 KB…
        assert!(mice > 0.55 && mice < 0.80, "mice fraction {mice}");
        // …but large flows dominate the bytes.
        let total: u64 = sizes.iter().sum();
        let big: u64 = sizes.iter().filter(|&&s| s >= 1_000_000).sum();
        assert!(
            big as f64 / total as f64 > 0.5,
            "elephant byte share {}",
            big as f64 / total as f64
        );
    }

    #[test]
    fn datamining_is_heavier_tailed_than_websearch() {
        let ws = sample_mean(&FlowSizeDist::WebSearch, 100_000);
        let dm = sample_mean(&FlowSizeDist::DataMining, 100_000);
        assert!(
            dm > 2.0 * ws,
            "datamining mean {dm} should dwarf websearch mean {ws}"
        );
        // Sampled means track analytic means.
        assert!((ws - FlowSizeDist::WebSearch.mean_bytes()).abs() / ws < 0.1);
        assert!((dm - FlowSizeDist::DataMining.mean_bytes()).abs() / dm < 0.15);
    }

    #[test]
    fn fixed_sizes_are_exact() {
        let d = FlowSizeDist::Fixed(1_000_000);
        let mut rng = SimRng::new(2);
        for _ in 0..10 {
            assert_eq!(d.sample_bytes(&mut rng), 1_000_000);
        }
        assert_eq!(d.mean_bytes(), 1_000_000.0);
    }

    #[test]
    fn custom_distribution_is_respected() {
        let d = FlowSizeDist::Custom(Dist::Uniform {
            lo: 100.0,
            hi: 200.0,
        });
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let s = d.sample_bytes(&mut rng);
            assert!((100..=200).contains(&s));
        }
    }

    #[test]
    fn sizes_are_never_zero() {
        let d = FlowSizeDist::Custom(Dist::Constant(0.2));
        let mut rng = SimRng::new(4);
        assert_eq!(d.sample_bytes(&mut rng), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FlowSizeDist::WebSearch.label(), "websearch");
        assert_eq!(FlowSizeDist::DataMining.label(), "datamining");
    }
}
