//! Plain-text, Markdown and CSV table rendering.
//!
//! Every bench binary regenerates its figure/table as text; using one
//! renderer keeps the output format uniform across experiments and makes
//! EXPERIMENTS.md diffs trivial.

/// A simple column-oriented table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count — a
    /// malformed experiment table is a bug, not a runtime condition.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Title accessor.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Monospace-aligned rendering for terminals.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", h, width = w[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", c, width = w[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// GitHub-flavoured Markdown rendering.
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// CSV rendering (no quoting: cells are numeric/identifier-like by
    /// construction; commas in cells are replaced with `;`).
    pub fn render_csv(&self) -> String {
        use std::fmt::Write as _;
        let clean = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| clean(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| clean(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for tables.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Formats a byte count with binary-ish units matching the paper's "KB/GB"
/// narrative (decimal multiples, as in the storage the paper discusses).
pub fn fmt_bytes(bytes: u64) -> String {
    const K: u64 = 1_000;
    const M: u64 = 1_000_000;
    const G: u64 = 1_000_000_000;
    if bytes >= G {
        format!("{:.2}GB", bytes as f64 / G as f64)
    } else if bytes >= M {
        format!("{:.2}MB", bytes as f64 / M as f64)
    } else if bytes >= K {
        format!("{:.2}KB", bytes as f64 / K as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "bb", "ccc"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["10".into(), "20".into(), "30".into()]);
        t
    }

    #[test]
    fn text_render_aligns_columns() {
        let s = sample().render_text();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows, plus title
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("a   bb  ccc"));
    }

    #[test]
    fn markdown_render_has_separator() {
        let s = sample().render_markdown();
        assert!(s.contains("| a | bb | ccc |"));
        assert!(s.contains("|---|---|---|"));
        assert!(s.contains("| 10 | 20 | 30 |"));
    }

    #[test]
    fn csv_render_and_comma_escaping() {
        let mut t = Table::new("x", &["k", "v"]);
        t.row(vec!["a,b".into(), "1".into()]);
        let s = t.render_csv();
        assert_eq!(s.lines().next().unwrap(), "k,v");
        assert!(s.contains("a;b,1"));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5678), "1234.6");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(0.001234), "0.00123");
    }

    #[test]
    fn byte_formatting_matches_paper_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(96_000), "96.00KB");
        assert_eq!(fmt_bytes(80_000_000), "80.00MB");
        assert_eq!(fmt_bytes(1_600_000_000), "1.60GB");
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new("empty", &["h"]);
        assert!(t.is_empty());
        assert!(t.render_text().contains("empty"));
        assert!(t.render_markdown().contains("| h |"));
    }
}
