//! A deterministic multiply-xor hasher for hot-path integer-keyed maps.
//!
//! `std`'s default SipHash costs tens of nanoseconds per `u64` lookup —
//! measurable when the FCT tracker is probed once per delivered packet at
//! millions of packets per run. This is the fibonacci-multiply mix used
//! by `FxHash`-style hashers: a single multiply and rotate per word,
//! deterministic across runs and platforms (no random seed), which the
//! byte-identical-output guarantees of the sweep machinery rely on.
//! Not DoS-resistant — only use for keys the simulation itself generates
//! (flow ids, packet ids), never for external input.

use std::hash::{BuildHasherDefault, Hasher};

/// The per-instance hasher. Use via [`FastHashBuilder`].
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// Zero-sized deterministic builder: every map built from it hashes
/// identically on every run.
pub type FastHashBuilder = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
// xlint: allow(random-state) — this alias pins the hasher to the deterministic FastHashBuilder; it is how the workspace avoids std's randomly seeded default
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastHashBuilder>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h = |k: u64| {
            let mut h = FastHasher::default();
            h.write_u64(k);
            h.finish()
        };
        let hashes: Vec<u64> = (0..1000).map(h).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            hashes.len(),
            "sequential keys must not collide"
        );
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for k in 0..100u64 {
            m.insert(k, (k * 2) as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42), Some(&84));
        assert_eq!(m.remove(&42), Some(84));
        assert_eq!(m.get(&42), None);
    }
}
