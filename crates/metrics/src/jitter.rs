//! Jitter estimators for interactive (VOIP / gaming) traffic.
//!
//! The paper's §2 argues that slow (software/host-buffered) scheduling
//! "can increase the overall traffic latency and jitter of widely used
//! applications (i.e., VOIP, multiuser gaming etc.)". Experiment E4
//! quantifies that with the estimator VOIP actually uses: the RFC 3550
//! interarrival jitter, plus a plain inter-arrival standard deviation for
//! cross-checking.

use xds_sim::SimTime;

/// RFC 3550 §6.4.1 interarrival jitter: a smoothed estimate of the
/// *variation in transit time* between consecutive packets,
/// `J += (|D| - J) / 16`.
#[derive(Debug, Clone, Default)]
pub struct Rfc3550Jitter {
    jitter_ns: f64,
    last_transit_ns: Option<i128>,
    samples: u64,
    max_abs_d_ns: u64,
}

impl Rfc3550Jitter {
    /// Creates an estimator with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one packet observation (its send and receive timestamps).
    pub fn on_packet(&mut self, sent: SimTime, received: SimTime) {
        let transit = received.as_nanos() as i128 - sent.as_nanos() as i128;
        if let Some(prev) = self.last_transit_ns {
            let d = (transit - prev).unsigned_abs() as u64;
            self.max_abs_d_ns = self.max_abs_d_ns.max(d);
            self.jitter_ns += (d as f64 - self.jitter_ns) / 16.0;
            self.samples += 1;
        }
        self.last_transit_ns = Some(transit);
    }

    /// Current smoothed jitter estimate in nanoseconds.
    pub fn jitter_ns(&self) -> f64 {
        self.jitter_ns
    }

    /// Largest single transit-time delta observed, in nanoseconds.
    pub fn max_delta_ns(&self) -> u64 {
        self.max_abs_d_ns
    }

    /// Number of deltas incorporated (packets − 1).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Mean / standard deviation of packet inter-arrival gaps at the receiver —
/// the raw signal behind audible VOIP degradation.
#[derive(Debug, Clone, Default)]
pub struct InterArrival {
    last: Option<SimTime>,
    n: u64,
    mean_ns: f64,
    m2: f64,
    max_gap_ns: u64,
}

impl InterArrival {
    /// Creates an estimator with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one arrival timestamp (must be fed in arrival order).
    pub fn on_arrival(&mut self, at: SimTime) {
        if let Some(prev) = self.last {
            let gap = at.saturating_since(prev).as_nanos();
            self.max_gap_ns = self.max_gap_ns.max(gap);
            // Welford's online algorithm.
            self.n += 1;
            let delta = gap as f64 - self.mean_ns;
            self.mean_ns += delta / self.n as f64;
            self.m2 += delta * (gap as f64 - self.mean_ns);
        }
        self.last = Some(at);
    }

    /// Number of gaps observed.
    pub fn gaps(&self) -> u64 {
        self.n
    }

    /// Mean gap in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.mean_ns
    }

    /// Standard deviation of gaps in nanoseconds (0 with < 2 gaps).
    pub fn stddev_ns(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Largest gap in nanoseconds.
    pub fn max_gap_ns(&self) -> u64 {
        self.max_gap_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_sim::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn perfectly_paced_stream_has_zero_jitter() {
        let mut j = Rfc3550Jitter::new();
        // Constant transit of 50 ns, packets every 20 µs.
        for i in 0..100u64 {
            j.on_packet(t(i * 20_000), t(i * 20_000 + 50));
        }
        assert_eq!(j.jitter_ns(), 0.0);
        assert_eq!(j.max_delta_ns(), 0);
        assert_eq!(j.samples(), 99);
    }

    #[test]
    fn transit_variation_raises_jitter() {
        let mut j = Rfc3550Jitter::new();
        // Transit alternates 50 ns / 1050 ns → |D| = 1000 each step.
        for i in 0..200u64 {
            let transit = if i % 2 == 0 { 50 } else { 1050 };
            j.on_packet(t(i * 20_000), t(i * 20_000 + transit));
        }
        // The EWMA converges to |D| = 1000.
        assert!(
            (j.jitter_ns() - 1000.0).abs() < 50.0,
            "jitter {}",
            j.jitter_ns()
        );
        assert_eq!(j.max_delta_ns(), 1000);
    }

    #[test]
    fn jitter_converges_per_rfc_formula() {
        let mut j = Rfc3550Jitter::new();
        j.on_packet(t(0), t(10));
        j.on_packet(t(100), t(130)); // transit 30, D = 20 → J = 20/16 = 1.25
        assert!((j.jitter_ns() - 1.25).abs() < 1e-9);
        j.on_packet(t(200), t(230)); // transit 30, D = 0 → J = 1.25 - 1.25/16
        assert!((j.jitter_ns() - (1.25 - 1.25 / 16.0)).abs() < 1e-9);
    }

    #[test]
    fn interarrival_stats() {
        let mut ia = InterArrival::new();
        let base = t(0);
        // Gaps: 10, 20, 30 → mean 20, sample stddev 10.
        ia.on_arrival(base);
        ia.on_arrival(base + SimDuration::from_nanos(10));
        ia.on_arrival(base + SimDuration::from_nanos(30));
        ia.on_arrival(base + SimDuration::from_nanos(60));
        assert_eq!(ia.gaps(), 3);
        assert!((ia.mean_ns() - 20.0).abs() < 1e-9);
        assert!((ia.stddev_ns() - 10.0).abs() < 1e-9);
        assert_eq!(ia.max_gap_ns(), 30);
    }

    #[test]
    fn interarrival_single_packet_is_degenerate() {
        let mut ia = InterArrival::new();
        ia.on_arrival(t(5));
        assert_eq!(ia.gaps(), 0);
        assert_eq!(ia.stddev_ns(), 0.0);
    }
}
