//! Percentile-composition helpers for the fast-estimate fidelity tier.
//!
//! The estimate tier (`xds-estimate`) never observes individual packets;
//! it derives *distribution parameters* per mini-problem (a mean wait, a
//! base latency, a packet count) and needs to fold those into the same
//! [`LatencyHistogram`]s the exact simulator fills one packet at a time.
//! These helpers do that composition deterministically: an exponential
//! waiting-time ladder is written into the histogram at fixed quantile
//! knots, weighted by each knot's probability mass, so merged per-link
//! estimates read back through `quantile()` like a measured population.
//!
//! The same module carries the error arithmetic the `sweep
//! validate-estimates` harness uses to compare the two tiers, so the
//! definition of "relative error" lives in exactly one place.

use crate::hist::LatencyHistogram;

/// The quantile knots a synthesized waiting-time distribution is written
/// at, with the probability mass each knot carries (the gap down to the
/// previous knot). Chosen to bracket the percentiles the report reads
/// back (p50/p90/p99/p999) so composition error stays within the
/// histogram's own bucket error.
pub const QUANTILE_KNOTS: [(f64, f64); 7] = [
    (0.25, 0.25),
    (0.50, 0.25),
    (0.75, 0.25),
    (0.90, 0.15),
    (0.97, 0.07),
    (0.995, 0.025),
    (0.9995, 0.005),
];

/// The `q`-quantile of an exponential waiting time with the given mean:
/// `W(q) = -mean · ln(1 - q)` (M/M/1 waiting-time shape; the estimate
/// tier's stand-in for per-packet queueing variability).
pub fn exp_wait_quantile(mean_wait_ns: f64, q: f64) -> f64 {
    let positive = mean_wait_ns.is_finite() && mean_wait_ns > 0.0;
    if !positive || !(0.0..1.0).contains(&q) {
        return 0.0;
    }
    -mean_wait_ns * (1.0 - q).ln()
}

/// Writes `count` synthetic samples of `base_ns + Exp(mean_wait_ns)`
/// into `hist` at the fixed [`QUANTILE_KNOTS`]: each knot records the
/// knot's latency value with its probability mass of the population.
/// Deterministic — no RNG — so composed histograms are byte-stable.
pub fn record_wait_population(
    hist: &mut LatencyHistogram,
    base_ns: u64,
    mean_wait_ns: f64,
    count: u64,
) {
    if count == 0 {
        return;
    }
    let mut recorded = 0u64;
    for (i, &(q, mass)) in QUANTILE_KNOTS.iter().enumerate() {
        let value = base_ns + exp_wait_quantile(mean_wait_ns, q).round() as u64;
        // Integer-split the population across knots; the last knot takes
        // the rounding remainder so the total count is exact.
        let n = if i + 1 == QUANTILE_KNOTS.len() {
            count - recorded
        } else {
            ((count as f64) * mass).round() as u64
        };
        let n = n.min(count - recorded);
        recorded += n;
        hist.record_n(value.max(1), n);
    }
}

/// The `q`-percentile (0 ≤ q ≤ 1) of a small sample, by sorting a copy —
/// the validation harness's per-scenario error summarizer. Returns 0.0
/// on an empty sample.
pub fn percentile_of(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    v[idx]
}

/// Symmetric relative error of an estimate against an exact value:
/// `|est - exact| / max(|exact|, |est|, 1.0)`. Symmetry bounds the
/// result at 1.0-ish even when the exact value is zero (a flow-sampling
/// accident the mean-field estimate cannot predict), and the 1.0 floor
/// keeps near-zero pairs from exploding. Always finite for finite
/// inputs — the validation artifact's error envelope must never carry
/// a NaN.
pub fn relative_error(estimate: f64, exact: f64) -> f64 {
    if !estimate.is_finite() || !exact.is_finite() {
        return f64::MAX;
    }
    (estimate - exact).abs() / exact.abs().max(estimate.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knot_masses_sum_to_one() {
        let total: f64 = QUANTILE_KNOTS.iter().map(|&(_, m)| m).sum();
        assert!((total - 1.0).abs() < 1e-12, "masses sum to {total}");
    }

    #[test]
    fn exp_quantiles_are_monotone_and_scale_with_mean() {
        let m = 1000.0;
        assert!(exp_wait_quantile(m, 0.5) < exp_wait_quantile(m, 0.99));
        let double = exp_wait_quantile(2.0 * m, 0.9);
        assert!((double - 2.0 * exp_wait_quantile(m, 0.9)).abs() < 1e-9);
        assert_eq!(exp_wait_quantile(0.0, 0.9), 0.0);
        assert_eq!(exp_wait_quantile(m, 1.0), 0.0, "q=1 is out of domain");
    }

    #[test]
    fn recorded_population_preserves_count_and_orders_percentiles() {
        let mut h = LatencyHistogram::new();
        record_wait_population(&mut h, 5_000, 2_000.0, 10_001);
        assert_eq!(h.count(), 10_001, "integer split must be exact");
        assert!(h.p50() >= 5_000, "base latency is a floor");
        assert!(h.p99() > h.p50(), "tail must spread above the median");
        // Zero count is a no-op.
        let mut empty = LatencyHistogram::new();
        record_wait_population(&mut empty, 5_000, 2_000.0, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn composition_is_deterministic() {
        let build = || {
            let mut h = LatencyHistogram::new();
            for link in 0..32u64 {
                record_wait_population(&mut h, 1_200 + link, 500.0 * link as f64, 997);
            }
            (h.count(), h.p50(), h.p99(), h.mean())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn percentiles_and_errors_are_finite_and_sane() {
        let v = [0.5, 0.1, 0.9, 0.3];
        assert_eq!(percentile_of(&v, 0.0), 0.1);
        assert_eq!(percentile_of(&v, 1.0), 0.9);
        assert_eq!(percentile_of(&[], 0.5), 0.0);
        assert!((relative_error(110.0, 100.0) - 10.0 / 110.0).abs() < 1e-12);
        // Small exact values hit the floor instead of exploding.
        assert!((relative_error(0.2, 0.1) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
        // Symmetry: a zero exact value cannot blow the envelope up.
        assert!(relative_error(4.2e6, 0.0) <= 1.0);
    }
}
