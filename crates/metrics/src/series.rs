//! Bounded time series with automatic decimation.
//!
//! Occupancy-over-time traces (VOQ depth, host buffer level) can contain one
//! point per packet; the series halves its sampling rate whenever it would
//! exceed its point budget, keeping memory bounded while preserving the
//! envelope of the signal.

use xds_sim::SimTime;

/// An append-only `(time, value)` series with a point budget.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    max_points: usize,
    /// Keep every `stride`-th pushed sample.
    stride: u64,
    pushed: u64,
    peak: f64,
}

impl TimeSeries {
    /// Creates a series that retains at most `max_points` points
    /// (minimum 2).
    pub fn new(max_points: usize) -> Self {
        TimeSeries {
            points: Vec::new(),
            max_points: max_points.max(2),
            stride: 1,
            pushed: 0,
            peak: f64::NEG_INFINITY,
        }
    }

    /// Appends a sample; may be dropped by decimation, but peaks are always
    /// tracked exactly.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.peak = self.peak.max(value);
        if self.pushed.is_multiple_of(self.stride) {
            if self.points.len() == self.max_points {
                // Halve resolution: keep every other retained point.
                let mut keep = Vec::with_capacity(self.max_points / 2 + 1);
                for (i, p) in self.points.drain(..).enumerate() {
                    if i % 2 == 0 {
                        keep.push(p);
                    }
                }
                self.points = keep;
                self.stride *= 2;
            }
            self.points.push((at, value));
        }
        self.pushed += 1;
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Total samples offered (including decimated-away ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Exact maximum over *all* pushed samples (not just retained ones).
    pub fn peak(&self) -> f64 {
        if self.pushed == 0 {
            0.0
        } else {
            self.peak
        }
    }

    /// Last retained value.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }
}

/// One row of epoch-resolution scheduler telemetry: the per-epoch view of
/// the quantities the paper's evaluation plots over time (demand-estimation
/// error, circuit duty cycle, queued backlog). Emitted by the runtime's
/// time-series epoch probe, one row per scheduler epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRow {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Simulated time of the epoch boundary.
    pub at: SimTime,
    /// Relative L1 demand-estimation error sampled this epoch (`None`
    /// when the ground-truth occupancy was empty — no error to measure).
    pub demand_err_rel: Option<f64>,
    /// OCS duty cycle over the interval since the previous row: the
    /// fraction of that interval the circuits were *not* dark, clamped to
    /// `[0, 1]`. `None` on the first row (no interval yet).
    pub duty_cycle: Option<f64>,
    /// Ground-truth VOQ backlog (bytes queued across all pairs) at the
    /// epoch boundary.
    pub backlog_bytes: u64,
    /// Scheduler decision latency charged to this epoch (ns).
    pub decision_ns: u64,
    /// Schedule entries (OCS configurations) the decision produced.
    pub entries: u32,
}

/// An epoch-resolution telemetry series: one [`EpochRow`] per scheduler
/// epoch, in epoch order. Rows are O(epochs), not O(packets), so the
/// series stays small even on kilofabric runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochSeries {
    rows: Vec<EpochRow>,
}

impl EpochSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row (rows must arrive in epoch order).
    pub fn push(&mut self, row: EpochRow) {
        debug_assert!(
            self.rows.last().is_none_or(|r| r.epoch < row.epoch),
            "epoch rows must be appended in order"
        );
        self.rows.push(row);
    }

    /// The rows, oldest first.
    pub fn rows(&self) -> &[EpochRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the series holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn retains_everything_under_budget() {
        let mut ts = TimeSeries::new(100);
        for i in 0..50u64 {
            ts.push(t(i), i as f64);
        }
        assert_eq!(ts.points().len(), 50);
        assert_eq!(ts.pushed(), 50);
    }

    #[test]
    fn decimates_over_budget_but_stays_bounded() {
        let mut ts = TimeSeries::new(64);
        for i in 0..100_000u64 {
            ts.push(t(i), i as f64);
        }
        assert!(ts.points().len() <= 64);
        assert_eq!(ts.pushed(), 100_000);
        // Points remain in time order.
        for w in ts.points().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn peak_is_exact_despite_decimation() {
        let mut ts = TimeSeries::new(4);
        for i in 0..1000u64 {
            // Spike at i=500 that decimation could easily drop.
            let v = if i == 500 { 9999.0 } else { 1.0 };
            ts.push(t(i), v);
        }
        assert_eq!(ts.peak(), 9999.0);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(10);
        assert_eq!(ts.peak(), 0.0);
        assert!(ts.last().is_none());
        assert!(ts.points().is_empty());
    }

    #[test]
    fn epoch_series_keeps_rows_in_order() {
        let mut s = EpochSeries::new();
        assert!(s.is_empty());
        for i in 0..5u64 {
            s.push(EpochRow {
                epoch: i,
                at: t(i * 1000),
                demand_err_rel: (i > 0).then_some(0.25),
                duty_cycle: (i > 0).then_some(0.9),
                backlog_bytes: i * 10,
                decision_ns: 100,
                entries: 4,
            });
        }
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.rows()[0].demand_err_rel, None);
        assert_eq!(s.rows()[4].backlog_bytes, 40);
        for w in s.rows().windows(2) {
            assert!(w[0].epoch < w[1].epoch);
        }
    }
}
