//! # xds-metrics — telemetry for scheduler experiments
//!
//! Every experiment in the paper reproduction reports the same families of
//! measurements, implemented once here:
//!
//! * [`LatencyHistogram`] — log-linear (HDR-style) histogram with bounded
//!   relative error, for per-packet latency and flow-completion-time
//!   percentiles;
//! * [`Rfc3550Jitter`] — the interarrival-jitter estimator from RFC 3550,
//!   the metric the paper's VOIP claim (§2) is about;
//! * [`FctTracker`] — flow-completion-time tracking with mice / medium /
//!   elephant size classes;
//! * [`Throughput`] / [`Utilization`] — byte counters and busy-time ratios;
//! * [`CounterSet`] — the deterministic internal-counters registry the
//!   runtime's flight recorder reports through;
//! * [`TimeSeries`] — decimating series for occupancy-over-time plots;
//! * [`Table`] — the text/Markdown/CSV renderer used by every bench binary
//!   so the regenerated "figures" are directly comparable.

#![warn(missing_docs)]

pub mod compose;
pub mod counters;
pub mod fasthash;
pub mod fct;
pub mod hist;
pub mod jitter;
pub mod report;
pub mod series;

pub use compose::{
    exp_wait_quantile, percentile_of, record_wait_population, relative_error, QUANTILE_KNOTS,
};
pub use counters::{CounterKind, CounterSet, Throughput, Utilization};
pub use fasthash::{FastHashBuilder, FastHashMap, FastHasher};
pub use fct::{FctStats, FctTracker, SizeClass};
pub use hist::LatencyHistogram;
pub use jitter::{InterArrival, Rfc3550Jitter};
pub use report::{fmt_bytes, fmt_f64, Table};
pub use series::{EpochRow, EpochSeries, TimeSeries};
