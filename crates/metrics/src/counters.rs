//! Throughput and utilization accounting.

use xds_sim::{SimDuration, SimTime};

/// Byte counter with first/last timestamps; reports achieved rate.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    packets: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl Throughput {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at `at`.
    pub fn record(&mut self, bytes: u64, at: SimTime) {
        self.bytes += bytes;
        self.packets += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Achieved rate in Gb/s over an explicit window (used when the
    /// measurement window is the experiment duration, not first→last
    /// packet).
    pub fn gbps_over(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / window.as_secs_f64() / 1e9
    }

    /// Achieved rate in Gb/s between the first and last recorded packet.
    pub fn gbps_observed(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => self.gbps_over(b - a),
            _ => 0.0,
        }
    }
}

/// Busy-time accumulator: fraction of a window a resource (OCS circuit, EPS
/// port, scheduler pipeline) spent doing useful work.
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    busy: SimDuration,
}

impl Utilization {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a busy interval.
    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy += d;
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Busy fraction of `window`, clamped to `[0, 1]`… values above 1
    /// indicate double-counted intervals and are clamped so reports stay
    /// sane, but a debug assertion flags the bug.
    pub fn fraction_of(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        let f = self.busy.as_secs_f64() / window.as_secs_f64();
        debug_assert!(
            f <= 1.0 + 1e-6,
            "utilization {f} above 1: double-counted busy time?"
        );
        f.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rates() {
        let mut tp = Throughput::new();
        // 1250 bytes in 1 µs = 10 Gb/s.
        tp.record(1000, SimTime::from_nanos(0));
        tp.record(250, SimTime::from_micros(1));
        assert_eq!(tp.bytes(), 1250);
        assert_eq!(tp.packets(), 2);
        let g = tp.gbps_observed();
        assert!((g - 10.0).abs() < 1e-9, "gbps {g}");
        let g2 = tp.gbps_over(SimDuration::from_micros(2));
        assert!((g2 - 5.0).abs() < 1e-9, "gbps {g2}");
    }

    #[test]
    fn empty_throughput_is_zero() {
        let tp = Throughput::new();
        assert_eq!(tp.gbps_observed(), 0.0);
        assert_eq!(tp.gbps_over(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn single_packet_has_no_observed_window() {
        let mut tp = Throughput::new();
        tp.record(1500, SimTime::from_nanos(10));
        assert_eq!(tp.gbps_observed(), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        u.add_busy(SimDuration::from_micros(250));
        u.add_busy(SimDuration::from_micros(250));
        let f = u.fraction_of(SimDuration::from_millis(1));
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(u.fraction_of(SimDuration::ZERO), 0.0);
    }
}
