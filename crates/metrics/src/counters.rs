//! Throughput and utilization accounting, plus the deterministic
//! internal-counters registry ([`CounterSet`]).

use xds_sim::{SimDuration, SimTime};

/// The flight-recorder counter registry: one `u64` per internal
/// mechanism the runtime wants to account for. Every counter is a pure
/// function of the simulated event sequence — no wall-clock, no
/// allocator state — so for a fixed spec the whole set is byte-identical
/// across runs, hosts and sweep thread counts, and exact values can be
/// pinned in tests.
///
/// The canonical name/value enumeration is [`CounterSet::items`]; it is
/// the single source of truth for every serializer (sweep JSON/CSV
/// columns, summary output), the same role `RunReport::metric_columns`
/// plays for the headline metrics. Scheduler-specific counters
/// (`sched_*`) stay zero for schedulers that do not implement the
/// observability hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSet {
    /// Solstice matching-memo replays (epoch-identical CSR edge sets).
    pub sched_memo_hits: u64,
    /// Hopcroft–Karp executions (matching-memo misses).
    pub sched_hk_runs: u64,
    /// Threshold probes: adjacency builds attempted while halving the
    /// admission threshold.
    pub sched_probes: u64,
    /// Largest per-epoch worklist (demand entries considered).
    pub sched_worklist_peak: u64,
    /// Largest per-epoch count of populated value buckets.
    pub sched_bucket_peak: u64,
    /// Ladder-queue dense buckets spread into deeper rungs.
    pub queue_spreads: u64,
    /// Ladder-queue bottom-run spills into a fresh rung (the burst
    /// valve).
    pub queue_spills: u64,
    /// Ladder-queue sparse replenishes that bypassed bucketing.
    pub queue_direct_sorts: u64,
    /// Packets allocated from the shared pool.
    pub pool_allocs: u64,
    /// Packets returned to the shared pool.
    pub pool_frees: u64,
    /// High-water mark of live pooled packets.
    pub pool_live_peak: u64,
    /// Slab chunk allocations (pool capacity growth events).
    pub pool_chunk_growths: u64,
    /// Grant bursts executed (one per served port pair per slot).
    pub grant_bursts: u64,
    /// Largest single grant burst, in packets.
    pub grant_pkts_max: u64,
    /// Delivery batches flushed to sinks (at most one per slot).
    pub delivery_batches: u64,
}

impl CounterSet {
    /// Number of counters in the registry.
    pub const LEN: usize = 15;

    /// The canonical `(name, value)` enumeration, in stable order. Column
    /// emitters and docs must derive from this list so names cannot
    /// drift between serializers.
    pub fn items(&self) -> [(&'static str, u64); Self::LEN] {
        [
            ("sched_memo_hits", self.sched_memo_hits),
            ("sched_hk_runs", self.sched_hk_runs),
            ("sched_probes", self.sched_probes),
            ("sched_worklist_peak", self.sched_worklist_peak),
            ("sched_bucket_peak", self.sched_bucket_peak),
            ("queue_spreads", self.queue_spreads),
            ("queue_spills", self.queue_spills),
            ("queue_direct_sorts", self.queue_direct_sorts),
            ("pool_allocs", self.pool_allocs),
            ("pool_frees", self.pool_frees),
            ("pool_live_peak", self.pool_live_peak),
            ("pool_chunk_growths", self.pool_chunk_growths),
            ("grant_bursts", self.grant_bursts),
            ("grant_pkts_max", self.grant_pkts_max),
            ("delivery_batches", self.delivery_batches),
        ]
    }

    /// The counter names alone, in the same stable order as
    /// [`items`](Self::items) (for CSV headers).
    pub fn names() -> [&'static str; Self::LEN] {
        Self::default().items().map(|(n, _)| n)
    }

    /// Looks a counter up by its canonical name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.items()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Byte counter with first/last timestamps; reports achieved rate.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    packets: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl Throughput {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at `at`.
    pub fn record(&mut self, bytes: u64, at: SimTime) {
        self.bytes += bytes;
        self.packets += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Achieved rate in Gb/s over an explicit window (used when the
    /// measurement window is the experiment duration, not first→last
    /// packet).
    pub fn gbps_over(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / window.as_secs_f64() / 1e9
    }

    /// Achieved rate in Gb/s between the first and last recorded packet.
    pub fn gbps_observed(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => self.gbps_over(b - a),
            _ => 0.0,
        }
    }
}

/// Busy-time accumulator: fraction of a window a resource (OCS circuit, EPS
/// port, scheduler pipeline) spent doing useful work.
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    busy: SimDuration,
}

impl Utilization {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a busy interval.
    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy += d;
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Busy fraction of `window`, clamped to `[0, 1]`… values above 1
    /// indicate double-counted intervals and are clamped so reports stay
    /// sane, but a debug assertion flags the bug.
    pub fn fraction_of(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        let f = self.busy.as_secs_f64() / window.as_secs_f64();
        debug_assert!(
            f <= 1.0 + 1e-6,
            "utilization {f} above 1: double-counted busy time?"
        );
        f.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_set_enumeration_is_complete_and_stable() {
        let mut c = CounterSet::default();
        assert!(c.items().iter().all(|&(_, v)| v == 0));
        c.sched_memo_hits = 3;
        c.delivery_batches = 9;
        assert_eq!(c.get("sched_memo_hits"), Some(3));
        assert_eq!(c.get("delivery_batches"), Some(9));
        assert_eq!(c.get("not_a_counter"), None);
        let names = CounterSet::names();
        assert_eq!(names.len(), CounterSet::LEN);
        // Names are unique and stable-ordered (first/last pinned).
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), CounterSet::LEN);
        assert_eq!(names[0], "sched_memo_hits");
        assert_eq!(names[CounterSet::LEN - 1], "delivery_batches");
    }

    #[test]
    fn throughput_rates() {
        let mut tp = Throughput::new();
        // 1250 bytes in 1 µs = 10 Gb/s.
        tp.record(1000, SimTime::from_nanos(0));
        tp.record(250, SimTime::from_micros(1));
        assert_eq!(tp.bytes(), 1250);
        assert_eq!(tp.packets(), 2);
        let g = tp.gbps_observed();
        assert!((g - 10.0).abs() < 1e-9, "gbps {g}");
        let g2 = tp.gbps_over(SimDuration::from_micros(2));
        assert!((g2 - 5.0).abs() < 1e-9, "gbps {g2}");
    }

    #[test]
    fn empty_throughput_is_zero() {
        let tp = Throughput::new();
        assert_eq!(tp.gbps_observed(), 0.0);
        assert_eq!(tp.gbps_over(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn single_packet_has_no_observed_window() {
        let mut tp = Throughput::new();
        tp.record(1500, SimTime::from_nanos(10));
        assert_eq!(tp.gbps_observed(), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        u.add_busy(SimDuration::from_micros(250));
        u.add_busy(SimDuration::from_micros(250));
        let f = u.fraction_of(SimDuration::from_millis(1));
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(u.fraction_of(SimDuration::ZERO), 0.0);
    }
}
