//! Throughput and utilization accounting, plus the deterministic
//! internal-counters registry ([`CounterSet`]).

use xds_sim::{SimDuration, SimTime};

/// How a counter combines when two registries covering disjoint parts
/// of one run (per-shard banks, per-pool ledgers) are folded together.
///
/// Merging everything as a sum is wrong for high-water marks: summing
/// `pool_live_peak` across shards would report a combined peak no single
/// pool ever reached. Each counter therefore declares its kind, and
/// [`CounterSet::merge`] dispatches on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// A tally: events across disjoint sources add.
    Sum,
    /// A high-water mark: the combined value is the largest observed.
    Max,
}

/// The flight-recorder counter registry: one `u64` per internal
/// mechanism the runtime wants to account for. Every counter is a pure
/// function of the simulated event sequence — no wall-clock, no
/// allocator state — so for a fixed spec the whole set is byte-identical
/// across runs, hosts and sweep thread counts, and exact values can be
/// pinned in tests.
///
/// The canonical name/value enumeration is [`CounterSet::items`]; it is
/// the single source of truth for every serializer (sweep JSON/CSV
/// columns, summary output), the same role `RunReport::metric_columns`
/// plays for the headline metrics. Scheduler-specific counters
/// (`sched_*`) stay zero for schedulers that do not implement the
/// observability hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSet {
    /// Solstice matching-memo replays (epoch-identical CSR edge sets).
    pub sched_memo_hits: u64,
    /// Hopcroft–Karp executions (matching-memo misses).
    pub sched_hk_runs: u64,
    /// Threshold probes: adjacency builds attempted while halving the
    /// admission threshold.
    pub sched_probes: u64,
    /// Largest per-epoch worklist (demand entries considered).
    pub sched_worklist_peak: u64,
    /// Largest per-epoch count of populated value buckets.
    pub sched_bucket_peak: u64,
    /// Ladder-queue dense buckets spread into deeper rungs.
    pub queue_spreads: u64,
    /// Ladder-queue bottom-run spills into a fresh rung (the burst
    /// valve).
    pub queue_spills: u64,
    /// Ladder-queue sparse replenishes that bypassed bucketing.
    pub queue_direct_sorts: u64,
    /// Packets allocated from the shared pool.
    pub pool_allocs: u64,
    /// Packets returned to the shared pool.
    pub pool_frees: u64,
    /// High-water mark of live pooled packets.
    pub pool_live_peak: u64,
    /// Slab chunk allocations (pool capacity growth events).
    pub pool_chunk_growths: u64,
    /// Grant bursts executed (one per served port pair per slot).
    pub grant_bursts: u64,
    /// Largest single grant burst, in packets.
    pub grant_pkts_max: u64,
    /// Delivery batches flushed to sinks (at most one per slot).
    pub delivery_batches: u64,
    /// Fault events injected by the fault plan (link failures, misfires,
    /// stalls) — zero whenever no plan is armed.
    pub fault_events_injected: u64,
    /// High-water mark of accumulated degraded-mode time, in simulated
    /// nanoseconds (time with at least one OCS port dark to faults).
    pub fault_degraded_ns_max: u64,
    /// Bytes diverted from a granted OCS burst onto the EPS slow path
    /// because the circuit was faulted or stale.
    pub fault_failover_bytes: u64,
    /// Packets dropped because a VOQ was full.
    pub drop_voq_full: u64,
    /// Packets dropped because the EPS queue was full.
    pub drop_eps_full: u64,
    /// Packets dropped because they arrived at a dark or misconfigured
    /// OCS input (sync violation).
    pub drop_sync_violation: u64,
    /// Packets dropped because a fault-injected link was dark.
    pub drop_link_dark: u64,
}

impl CounterSet {
    /// Number of counters in the registry.
    pub const LEN: usize = 22;

    /// The canonical `(name, value)` enumeration, in stable order. Column
    /// emitters and docs must derive from this list so names cannot
    /// drift between serializers.
    pub fn items(&self) -> [(&'static str, u64); Self::LEN] {
        [
            ("sched_memo_hits", self.sched_memo_hits),
            ("sched_hk_runs", self.sched_hk_runs),
            ("sched_probes", self.sched_probes),
            ("sched_worklist_peak", self.sched_worklist_peak),
            ("sched_bucket_peak", self.sched_bucket_peak),
            ("queue_spreads", self.queue_spreads),
            ("queue_spills", self.queue_spills),
            ("queue_direct_sorts", self.queue_direct_sorts),
            ("pool_allocs", self.pool_allocs),
            ("pool_frees", self.pool_frees),
            ("pool_live_peak", self.pool_live_peak),
            ("pool_chunk_growths", self.pool_chunk_growths),
            ("grant_bursts", self.grant_bursts),
            ("grant_pkts_max", self.grant_pkts_max),
            ("delivery_batches", self.delivery_batches),
            ("fault_events_injected", self.fault_events_injected),
            ("fault_degraded_ns_max", self.fault_degraded_ns_max),
            ("fault_failover_bytes", self.fault_failover_bytes),
            ("drop_voq_full", self.drop_voq_full),
            ("drop_eps_full", self.drop_eps_full),
            ("drop_sync_violation", self.drop_sync_violation),
            ("drop_link_dark", self.drop_link_dark),
        ]
    }

    /// The counter names alone, in the same stable order as
    /// [`items`](Self::items) (for CSV headers).
    pub fn names() -> [&'static str; Self::LEN] {
        Self::default().items().map(|(n, _)| n)
    }

    /// Looks a counter up by its canonical name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.items()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Each counter's merge kind, aligned with [`items`](Self::items):
    /// the `*_peak` counters and `grant_pkts_max` are high-water marks,
    /// everything else is a tally.
    pub fn kinds() -> [(&'static str, CounterKind); Self::LEN] {
        use CounterKind::{Max, Sum};
        [
            ("sched_memo_hits", Sum),
            ("sched_hk_runs", Sum),
            ("sched_probes", Sum),
            ("sched_worklist_peak", Max),
            ("sched_bucket_peak", Max),
            ("queue_spreads", Sum),
            ("queue_spills", Sum),
            ("queue_direct_sorts", Sum),
            ("pool_allocs", Sum),
            ("pool_frees", Sum),
            ("pool_live_peak", Max),
            ("pool_chunk_growths", Sum),
            ("grant_bursts", Sum),
            ("grant_pkts_max", Max),
            ("delivery_batches", Sum),
            ("fault_events_injected", Sum),
            ("fault_degraded_ns_max", Max),
            ("fault_failover_bytes", Sum),
            ("drop_voq_full", Sum),
            ("drop_eps_full", Sum),
            ("drop_sync_violation", Sum),
            ("drop_link_dark", Sum),
        ]
    }

    /// A counter's merge kind by canonical name.
    pub fn kind_of(name: &str) -> Option<CounterKind> {
        Self::kinds()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, k)| k)
    }

    /// Folds another registry into this one with per-counter semantics:
    /// tallies add, high-water marks take the max (see
    /// [`kinds`](Self::kinds)). The default set is the merge identity.
    pub fn merge(&mut self, other: &CounterSet) {
        self.sched_memo_hits += other.sched_memo_hits;
        self.sched_hk_runs += other.sched_hk_runs;
        self.sched_probes += other.sched_probes;
        self.sched_worklist_peak = self.sched_worklist_peak.max(other.sched_worklist_peak);
        self.sched_bucket_peak = self.sched_bucket_peak.max(other.sched_bucket_peak);
        self.queue_spreads += other.queue_spreads;
        self.queue_spills += other.queue_spills;
        self.queue_direct_sorts += other.queue_direct_sorts;
        self.pool_allocs += other.pool_allocs;
        self.pool_frees += other.pool_frees;
        self.pool_live_peak = self.pool_live_peak.max(other.pool_live_peak);
        self.pool_chunk_growths += other.pool_chunk_growths;
        self.grant_bursts += other.grant_bursts;
        self.grant_pkts_max = self.grant_pkts_max.max(other.grant_pkts_max);
        self.delivery_batches += other.delivery_batches;
        self.fault_events_injected += other.fault_events_injected;
        self.fault_degraded_ns_max = self.fault_degraded_ns_max.max(other.fault_degraded_ns_max);
        self.fault_failover_bytes += other.fault_failover_bytes;
        self.drop_voq_full += other.drop_voq_full;
        self.drop_eps_full += other.drop_eps_full;
        self.drop_sync_violation += other.drop_sync_violation;
        self.drop_link_dark += other.drop_link_dark;
    }
}

/// Byte counter with first/last timestamps; reports achieved rate.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    bytes: u64,
    packets: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl Throughput {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at `at`.
    pub fn record(&mut self, bytes: u64, at: SimTime) {
        self.bytes += bytes;
        self.packets += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Achieved rate in Gb/s over an explicit window (used when the
    /// measurement window is the experiment duration, not first→last
    /// packet).
    pub fn gbps_over(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / window.as_secs_f64() / 1e9
    }

    /// Achieved rate in Gb/s between the first and last recorded packet.
    pub fn gbps_observed(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => self.gbps_over(b - a),
            _ => 0.0,
        }
    }
}

/// Busy-time accumulator: fraction of a window a resource (OCS circuit, EPS
/// port, scheduler pipeline) spent doing useful work.
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    busy: SimDuration,
}

impl Utilization {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a busy interval.
    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy += d;
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Busy fraction of `window`, clamped to `[0, 1]`… values above 1
    /// indicate double-counted intervals and are clamped so reports stay
    /// sane, but a debug assertion flags the bug.
    pub fn fraction_of(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        let f = self.busy.as_secs_f64() / window.as_secs_f64();
        debug_assert!(
            f <= 1.0 + 1e-6,
            "utilization {f} above 1: double-counted busy time?"
        );
        f.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_set_enumeration_is_complete_and_stable() {
        let mut c = CounterSet::default();
        assert!(c.items().iter().all(|&(_, v)| v == 0));
        c.sched_memo_hits = 3;
        c.delivery_batches = 9;
        assert_eq!(c.get("sched_memo_hits"), Some(3));
        assert_eq!(c.get("delivery_batches"), Some(9));
        assert_eq!(c.get("not_a_counter"), None);
        let names = CounterSet::names();
        assert_eq!(names.len(), CounterSet::LEN);
        // Names are unique and stable-ordered (first/last pinned).
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), CounterSet::LEN);
        assert_eq!(names[0], "sched_memo_hits");
        assert_eq!(names[CounterSet::LEN - 1], "drop_link_dark");
    }

    #[test]
    fn kinds_cover_every_counter_in_items_order() {
        let names = CounterSet::names();
        let kinds = CounterSet::kinds();
        assert_eq!(kinds.len(), CounterSet::LEN);
        for (i, (n, _)) in kinds.iter().enumerate() {
            assert_eq!(*n, names[i], "kind table drifted from items order");
        }
        // Exactly the documented high-water marks merge by max.
        let maxes: Vec<_> = kinds
            .iter()
            .filter(|(_, k)| *k == CounterKind::Max)
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            maxes,
            [
                "sched_worklist_peak",
                "sched_bucket_peak",
                "pool_live_peak",
                "grant_pkts_max",
                "fault_degraded_ns_max"
            ]
        );
        assert_eq!(CounterSet::kind_of("pool_allocs"), Some(CounterKind::Sum));
        assert_eq!(
            CounterSet::kind_of("grant_pkts_max"),
            Some(CounterKind::Max)
        );
        assert_eq!(CounterSet::kind_of("not_a_counter"), None);
    }

    #[test]
    fn merge_sums_tallies_and_maxes_peaks() {
        let mut a = CounterSet {
            sched_memo_hits: 3,
            sched_worklist_peak: 10,
            pool_allocs: 100,
            pool_live_peak: 40,
            grant_pkts_max: 7,
            ..CounterSet::default()
        };
        let b = CounterSet {
            sched_memo_hits: 4,
            sched_worklist_peak: 6,
            pool_allocs: 50,
            pool_live_peak: 90,
            grant_pkts_max: 7,
            delivery_batches: 2,
            ..CounterSet::default()
        };
        a.merge(&b);
        assert_eq!(a.sched_memo_hits, 7, "tallies add");
        assert_eq!(a.pool_allocs, 150, "tallies add");
        assert_eq!(a.delivery_batches, 2);
        assert_eq!(a.sched_worklist_peak, 10, "peaks take the max");
        assert_eq!(a.pool_live_peak, 90, "peaks take the max");
        assert_eq!(a.grant_pkts_max, 7, "equal peaks stay put");
    }

    #[test]
    fn merge_identity_and_field_coverage() {
        // Merging the default set changes nothing (identity)…
        let mut probe = CounterSet::default();
        for (i, _) in (0..CounterSet::LEN).enumerate() {
            // Give every field a distinct non-zero value via items order.
            let v = (i as u64 + 1) * 3;
            probe = set_by_index(probe, i, v);
        }
        let before = probe;
        probe.merge(&CounterSet::default());
        assert_eq!(probe, before, "default is the merge identity");
        // …and merging a set into the default reproduces it exactly —
        // together these pin that `merge` touches every field (a field
        // skipped by the hand-written merge would stay zero here).
        let mut zero = CounterSet::default();
        zero.merge(&before);
        assert_eq!(zero, before, "merge into default must copy all fields");
    }

    /// Sets the `i`-th counter (items order) to `v` — test helper that
    /// keeps `merge_identity_and_field_coverage` exhaustive without
    /// naming all fields twice.
    fn set_by_index(mut c: CounterSet, i: usize, v: u64) -> CounterSet {
        match i {
            0 => c.sched_memo_hits = v,
            1 => c.sched_hk_runs = v,
            2 => c.sched_probes = v,
            3 => c.sched_worklist_peak = v,
            4 => c.sched_bucket_peak = v,
            5 => c.queue_spreads = v,
            6 => c.queue_spills = v,
            7 => c.queue_direct_sorts = v,
            8 => c.pool_allocs = v,
            9 => c.pool_frees = v,
            10 => c.pool_live_peak = v,
            11 => c.pool_chunk_growths = v,
            12 => c.grant_bursts = v,
            13 => c.grant_pkts_max = v,
            14 => c.delivery_batches = v,
            15 => c.fault_events_injected = v,
            16 => c.fault_degraded_ns_max = v,
            17 => c.fault_failover_bytes = v,
            18 => c.drop_voq_full = v,
            19 => c.drop_eps_full = v,
            20 => c.drop_sync_violation = v,
            21 => c.drop_link_dark = v,
            _ => unreachable!(),
        }
        c
    }

    #[test]
    fn throughput_rates() {
        let mut tp = Throughput::new();
        // 1250 bytes in 1 µs = 10 Gb/s.
        tp.record(1000, SimTime::from_nanos(0));
        tp.record(250, SimTime::from_micros(1));
        assert_eq!(tp.bytes(), 1250);
        assert_eq!(tp.packets(), 2);
        let g = tp.gbps_observed();
        assert!((g - 10.0).abs() < 1e-9, "gbps {g}");
        let g2 = tp.gbps_over(SimDuration::from_micros(2));
        assert!((g2 - 5.0).abs() < 1e-9, "gbps {g2}");
    }

    #[test]
    fn empty_throughput_is_zero() {
        let tp = Throughput::new();
        assert_eq!(tp.gbps_observed(), 0.0);
        assert_eq!(tp.gbps_over(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn single_packet_has_no_observed_window() {
        let mut tp = Throughput::new();
        tp.record(1500, SimTime::from_nanos(10));
        assert_eq!(tp.gbps_observed(), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        u.add_busy(SimDuration::from_micros(250));
        u.add_busy(SimDuration::from_micros(250));
        let f = u.fraction_of(SimDuration::from_millis(1));
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(u.fraction_of(SimDuration::ZERO), 0.0);
    }
}
