//! Log-linear histogram with bounded relative error.
//!
//! Values (nanoseconds, bytes, …) are bucketed by order of magnitude
//! (leading bit) and then linearly within each order into `SUB_BUCKETS`
//! sub-buckets, the same scheme HdrHistogram uses. Recording is O(1), memory
//! is fixed, and any reported quantile is within `2/SUB_BUCKETS` (≈ 3.1 %)
//! of the true value — ample for latency distributions spanning nanoseconds
//! to seconds.

/// Sub-buckets per tier. Tiers above the first only populate their upper
/// half (the lower half aliases the previous tier), so the relative
/// quantile error bound is `2 / SUB_BUCKETS`.
const SUB_BUCKETS: usize = 64;
/// Relative error bound of any reported quantile.
pub const QUANTILE_REL_ERROR: f64 = 2.0 / SUB_BUCKETS as f64;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Tiers cover leading-bit positions `SUB_BITS..64`.
const TIERS: usize = (64 - SUB_BITS as usize) + 1;

/// Fixed-size log-linear histogram over `u64` values.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; TIERS * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            // Tier 0 is exact: values 0..SUB_BUCKETS.
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let tier = (msb - SUB_BITS + 1) as usize;
        let shift = msb - SUB_BITS + 1;
        let sub = ((value >> shift) - (SUB_BUCKETS as u64 / 2)) as usize + SUB_BUCKETS / 2;
        debug_assert!(sub < SUB_BUCKETS);
        tier * SUB_BUCKETS + sub
    }

    /// The largest value mapped to the same bucket as `value` (the value the
    /// histogram will report back for it).
    fn bucket_upper(index: usize) -> u64 {
        let tier = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        if tier == 0 {
            return sub as u64;
        }
        // Values in tier t span [2^(SUB_BITS-1+t), 2^(SUB_BITS+t)) and the
        // sub-bucket of width 2^t holding value v ends at ((sub+1)<<t)-1.
        // 128-bit math: the top tier's last bucket ends at u64::MAX.
        let shift = tier as u32;
        let upper = (((sub as u128) + 1) << shift) - 1;
        upper.min(u64::MAX as u128) as u64
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`, within the histogram's relative error
    /// bound. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Convenience: the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Convenience: the 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        // Every small value occupies its own bucket: quantiles are exact.
        assert_eq!(h.quantile(0.5), SUB_BUCKETS as u64 / 2 - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        // Geometric sweep over 9 decades.
        let mut v = 1u64;
        let mut values = Vec::new();
        while v < 1_000_000_000 {
            h.record(v);
            values.push(v);
            v = (v as f64 * 1.37) as u64 + 1;
        }
        values.sort_unstable();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1] as f64;
            let approx = h.quantile(q) as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= QUANTILE_REL_ERROR + 1e-9,
                "q={q}: {approx} vs {exact} rel={rel}"
            );
        }
    }

    #[test]
    fn mean_and_extremes_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 250_015.0).abs() < 1e-9);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(12345, 1000);
        for _ in 0..1000 {
            b.record(12345);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
        a.record_n(1, 0);
        assert_eq!(a.count(), 1000);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn quantile_extreme_args_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        assert_eq!(h.quantile(-1.0), 42);
        assert_eq!(h.quantile(2.0), 42);
    }

    #[test]
    fn handles_u64_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_upper_is_monotonic_over_reachable_buckets() {
        // Walk values upward; the reported bucket upper bound must never
        // decrease (unreachable lower-half slots of higher tiers are never
        // produced by bucket_index, so they don't matter).
        let mut last = 0u64;
        let mut v = 0u64;
        while v < u64::MAX / 3 {
            let u = LatencyHistogram::bucket_upper(LatencyHistogram::bucket_index(v));
            assert!(
                u >= last,
                "bucket_upper not monotonic at value {v}: {u} < {last}"
            );
            last = u;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn value_maps_to_bucket_containing_it() {
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            100,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 40) + 12345,
        ] {
            let idx = LatencyHistogram::bucket_index(v);
            let upper = LatencyHistogram::bucket_upper(idx);
            assert!(upper >= v, "value {v} above its bucket upper {upper}");
            let rel = (upper - v) as f64 / (v.max(1)) as f64;
            assert!(rel <= QUANTILE_REL_ERROR + 1e-9, "value {v} error {rel}");
        }
    }
}
