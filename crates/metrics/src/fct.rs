//! Flow-completion-time tracking.
//!
//! Hybrid-switch evaluations (Helios, c-Through, and the scheduler face-off
//! in E5/E9) report FCT broken down by flow size, because the whole point of
//! the hybrid design is that *elephants* ride the OCS while *mice* stay on
//! the EPS. The tracker tallies completion times per size class using the
//! customary data-center boundaries.

use std::collections::BTreeMap;

use xds_sim::SimTime;

use crate::fasthash::FastHashMap;
use crate::hist::LatencyHistogram;

/// Conventional data-center flow size classes. Ordered smallest to
/// largest (the [`SizeClass::ALL`] order), so ordered maps keyed by
/// class iterate in size order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeClass {
    /// Flows below 100 KB — latency-sensitive "mice".
    Mice,
    /// Flows of 100 KB – 10 MB.
    Medium,
    /// Flows of 10 MB and above — throughput-driven "elephants".
    Elephant,
}

impl SizeClass {
    /// Classifies a flow by its size in bytes.
    pub fn of(bytes: u64) -> SizeClass {
        if bytes < 100_000 {
            SizeClass::Mice
        } else if bytes < 10_000_000 {
            SizeClass::Medium
        } else {
            SizeClass::Elephant
        }
    }

    /// All classes, in ascending size order.
    pub const ALL: [SizeClass; 3] = [SizeClass::Mice, SizeClass::Medium, SizeClass::Elephant];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            SizeClass::Mice => "mice(<100KB)",
            SizeClass::Medium => "medium(<10MB)",
            SizeClass::Elephant => "elephant(>=10MB)",
        }
    }
}

#[derive(Debug, Clone)]
struct OpenFlow {
    size_bytes: u64,
    delivered: u64,
    started: SimTime,
}

/// Summary statistics for one size class.
#[derive(Debug, Clone)]
pub struct FctStats {
    /// Completed flows in this class.
    pub count: u64,
    /// Mean FCT in nanoseconds.
    pub mean_ns: f64,
    /// Median FCT in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile FCT in nanoseconds.
    pub p99_ns: u64,
    /// Worst FCT in nanoseconds.
    pub max_ns: u64,
}

/// Tracks open flows and records completion times per size class.
///
/// The open-flow map is probed once per **delivered packet**, so it uses
/// the deterministic fast hasher rather than SipHash; map iteration order
/// is never observed (all outputs derive from the per-class histograms
/// and scalar counters), so results stay byte-identical. Flow state
/// lives in a slab indexed by the map, with a one-entry memo of the last
/// credited flow: deliveries arrive in per-flow runs (a flow's packets
/// enqueue contiguously and drain contiguously from a VOQ), so most
/// credits skip the hash probe entirely.
#[derive(Debug, Default)]
pub struct FctTracker {
    open: FastHashMap<u64, u32>,
    slots: Vec<OpenFlow>,
    free_slots: Vec<u32>,
    /// `(flow id, slot)` of the most recently credited open flow.
    last: Option<(u64, u32)>,
    /// Per-class completion histograms. A `BTreeMap`, not a hash map:
    /// [`FctTracker::overall`] folds `values()` into one merged
    /// histogram, so iteration order is observable — it must be the
    /// fixed class order, never a hasher's. (Three keys; probed once
    /// per *completion*, not per packet, so tree lookups cost nothing.)
    done: BTreeMap<SizeClass, LatencyHistogram>,
    completed: u64,
    delivered_bytes: u64,
}

impl FctTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a flow when its first byte enters the network.
    ///
    /// Re-registering an id that is still open is a caller bug and panics.
    pub fn flow_started(&mut self, flow_id: u64, size_bytes: u64, at: SimTime) {
        let flow = OpenFlow {
            size_bytes,
            delivered: 0,
            started: at,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = flow;
                s
            }
            None => {
                self.slots.push(flow);
                (self.slots.len() - 1) as u32
            }
        };
        let prev = self.open.insert(flow_id, slot);
        assert!(prev.is_none(), "flow {flow_id} registered twice");
        // A completed flow's id may be reused: the memo must never serve
        // a stale slot for it.
        self.last = Some((flow_id, slot));
    }

    /// Credits delivered bytes to a flow; when the flow's full size has
    /// arrived, its FCT is recorded and the flow closed. Unknown ids are
    /// ignored (e.g. background flows the caller chose not to track).
    pub fn bytes_delivered(&mut self, flow_id: u64, bytes: u64, at: SimTime) {
        self.delivered_bytes += bytes;
        let slot = match self.last {
            Some((id, s)) if id == flow_id => s,
            _ => {
                let Some(&s) = self.open.get(&flow_id) else {
                    return;
                };
                self.last = Some((flow_id, s));
                s
            }
        };
        let flow = &mut self.slots[slot as usize];
        flow.delivered += bytes;
        if flow.delivered >= flow.size_bytes {
            let fct = at.saturating_since(flow.started);
            self.done
                .entry(SizeClass::of(flow.size_bytes))
                .or_default()
                .record(fct.as_nanos());
            self.completed += 1;
            self.open.remove(&flow_id).expect("present");
            self.free_slots.push(slot);
            self.last = None;
        }
    }

    /// Completed-flow count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Flows still in flight.
    pub fn open_flows(&self) -> usize {
        self.open.len()
    }

    /// Total bytes credited via [`FctTracker::bytes_delivered`].
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Stats for one size class, if any flow of that class completed.
    pub fn stats(&self, class: SizeClass) -> Option<FctStats> {
        let h = self.done.get(&class)?;
        if h.is_empty() {
            return None;
        }
        Some(FctStats {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.p50(),
            p99_ns: h.p99(),
            max_ns: h.max(),
        })
    }

    /// Stats over all completed flows regardless of class.
    pub fn overall(&self) -> Option<FctStats> {
        let mut merged = LatencyHistogram::new();
        for h in self.done.values() {
            merged.merge(h);
        }
        if merged.is_empty() {
            return None;
        }
        Some(FctStats {
            count: merged.count(),
            mean_ns: merged.mean(),
            p50_ns: merged.p50(),
            p99_ns: merged.p99(),
            max_ns: merged.max(),
        })
    }

    /// Mean slowdown proxy: mean FCT of mice relative to elephants'
    /// per-byte service (diagnostic only; `None` unless both classes have
    /// completions).
    pub fn mice_to_elephant_ratio(&self) -> Option<f64> {
        let mice = self.stats(SizeClass::Mice)?;
        let ele = self.stats(SizeClass::Elephant)?;
        Some(mice.mean_ns / ele.mean_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn size_classes_have_standard_boundaries() {
        assert_eq!(SizeClass::of(0), SizeClass::Mice);
        assert_eq!(SizeClass::of(99_999), SizeClass::Mice);
        assert_eq!(SizeClass::of(100_000), SizeClass::Medium);
        assert_eq!(SizeClass::of(9_999_999), SizeClass::Medium);
        assert_eq!(SizeClass::of(10_000_000), SizeClass::Elephant);
    }

    #[test]
    fn fct_measured_from_start_to_last_byte() {
        let mut fct = FctTracker::new();
        fct.flow_started(1, 3000, t(100));
        fct.bytes_delivered(1, 1500, t(500));
        assert_eq!(fct.completed(), 0);
        assert_eq!(fct.open_flows(), 1);
        fct.bytes_delivered(1, 1500, t(1100));
        assert_eq!(fct.completed(), 1);
        assert_eq!(fct.open_flows(), 0);
        let s = fct.stats(SizeClass::Mice).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn unknown_flow_bytes_still_count_towards_totals() {
        let mut fct = FctTracker::new();
        fct.bytes_delivered(42, 999, t(1));
        assert_eq!(fct.delivered_bytes(), 999);
        assert_eq!(fct.completed(), 0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut fct = FctTracker::new();
        fct.flow_started(1, 10, t(0));
        fct.flow_started(1, 10, t(1));
    }

    #[test]
    fn per_class_stats_are_separated() {
        let mut fct = FctTracker::new();
        fct.flow_started(1, 1_000, t(0)); // mouse
        fct.flow_started(2, 50_000_000, t(0)); // elephant
        fct.bytes_delivered(1, 1_000, t(10_000));
        fct.bytes_delivered(2, 50_000_000, t(40_000_000));
        assert_eq!(fct.stats(SizeClass::Mice).unwrap().count, 1);
        assert_eq!(fct.stats(SizeClass::Elephant).unwrap().count, 1);
        assert!(fct.stats(SizeClass::Medium).is_none());
        assert_eq!(fct.overall().unwrap().count, 2);
        let ratio = fct.mice_to_elephant_ratio().unwrap();
        assert!((ratio - 10_000.0 / 40_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn flow_id_can_be_reused_after_completion() {
        let mut fct = FctTracker::new();
        fct.flow_started(1, 100, t(0));
        fct.bytes_delivered(1, 100, t(50));
        fct.flow_started(1, 100, t(60));
        fct.bytes_delivered(1, 100, t(90));
        assert_eq!(fct.completed(), 2);
    }
}
