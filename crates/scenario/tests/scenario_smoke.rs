//! Integration smoke of the scenario subsystem: every named scenario runs
//! through the parallel executor at small `n`, produces a report, and a
//! fixed-seed sweep serializes byte-identically regardless of thread
//! count or repetition.

use xds_scenario::{library, ScenarioSpec, SweepExecutor, SweepGrid};
use xds_sim::SimDuration;

/// The whole catalogue, shrunk to a fast test size.
fn small_catalogue() -> Vec<ScenarioSpec> {
    library::all_names()
        .into_iter()
        .map(|name| {
            // Heavy-tailed catalogues arrive slowly (huge mean flow size →
            // low flow rate); give them room for at least one arrival.
            let ms = if name == "datamining" { 50 } else { 2 };
            library::scenario(name)
                .expect("catalogue names resolve")
                .with_ports(4)
                .with_duration(SimDuration::from_millis(ms))
        })
        .collect()
}

#[test]
fn every_named_scenario_smokes_through_the_executor() {
    let specs = small_catalogue();
    assert!(specs.len() >= 8, "catalogue must stay ≥ 8 entries");
    let results = SweepExecutor::new().run(specs);
    for p in &results.points {
        let r = p
            .report
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", p.spec.name));
        assert!(r.offered_bytes > 0, "{} offered nothing", p.spec.name);
        assert!(r.delivered_bytes() > 0, "{} delivered nothing", p.spec.name);
        assert!(r.decisions > 0, "{} never scheduled", p.spec.name);
    }
    // Interactive scenarios actually exercised the interactive path.
    let voip = results
        .points
        .iter()
        .find(|p| p.spec.name == "voip-mix")
        .expect("voip-mix in catalogue");
    assert!(
        voip.report.as_ref().unwrap().latency_interactive.count() > 0,
        "voip-mix must deliver interactive packets"
    );
}

#[test]
fn fixed_seed_sweep_is_byte_identical_across_thread_counts() {
    let specs = small_catalogue();
    let one = SweepExecutor::with_threads(1).run(specs.clone());
    let four = SweepExecutor::with_threads(4).run(specs.clone());
    let seven = SweepExecutor::with_threads(7).run(specs);
    let (j1, j4, j7) = (one.to_json(), four.to_json(), seven.to_json());
    assert_eq!(j1, j4, "1-thread vs 4-thread JSON must match byte-for-byte");
    assert_eq!(j4, j7, "4-thread vs 7-thread JSON must match byte-for-byte");
    assert_eq!(one.to_csv(), four.to_csv(), "CSV must match too");
    // And re-running the same sweep reproduces the same bytes.
    let again = SweepExecutor::with_threads(4).run(small_catalogue());
    assert_eq!(j4, again.to_json(), "same seed ⇒ same bytes across runs");
}

#[test]
fn grid_over_a_named_scenario_runs_every_point() {
    let base = library::scenario("uniform")
        .unwrap()
        .with_ports(4)
        .with_duration(SimDuration::from_millis(1));
    let grid = SweepGrid::new(base)
        .loads(vec![0.2, 0.6])
        .seeds(vec![1, 2, 3]);
    let specs = grid.specs();
    assert_eq!(specs.len(), 6);
    let results = SweepExecutor::with_threads(3).run(specs);
    assert_eq!(results.points.len(), 6);
    for p in &results.points {
        assert!(p.report.is_ok(), "{} failed", p.spec.name);
    }
    // Replicas with different seeds are genuinely different runs…
    let r1 = results.report(0).unwrap();
    let r2 = results.report(1).unwrap();
    assert_ne!(r1.events, r2.events, "different seeds, different runs");
    // …and the JSON names distinguish every point.
    let json = results.to_json();
    assert_eq!(json.matches("\"scenario\":").count(), 6);
}
