//! Property tests of the fidelity axis: whatever the scenario shape,
//! an estimate-tier row carries exactly the same column set, in the
//! same order, as the exact-tier row of the same spec — JSON keys and
//! CSV cells alike. Downstream tooling (plots, joins, the validation
//! harness) depends on the two tiers being drop-in interchangeable at
//! the row level.

use proptest::prelude::*;
use xds_scenario::{AppMix, Fidelity, ScenarioSpec, SchedulerKind, SweepExecutor, TrafficPattern};
use xds_sim::SimDuration;
use xds_traffic::FlowSizeDist;

/// The object keys of one JSON row, in emission order.
fn json_keys(row: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = row;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        let key = &tail[..end];
        let after = &tail[end + 1..];
        if after.starts_with(':') {
            keys.push(key.to_string());
        }
        // Skip past the value up to the next field separator; good
        // enough because generated values never embed `", "`.
        match after.find(", \"") {
            Some(next) => rest = &after[next + 2..],
            None => break,
        }
    }
    keys
}

fn pattern(idx: usize) -> TrafficPattern {
    match idx % 5 {
        0 => TrafficPattern::Uniform,
        1 => TrafficPattern::Permutation { shift: 1 },
        2 => TrafficPattern::Hotspot {
            pairs: 2,
            fraction: 0.7,
            offset: 0,
        },
        3 => TrafficPattern::Incast {
            senders: 3,
            target: 0,
        },
        _ => TrafficPattern::ShuffleStages {
            period: SimDuration::from_micros(200),
        },
    }
}

fn size_dist(idx: usize) -> FlowSizeDist {
    match idx % 3 {
        0 => FlowSizeDist::Fixed(150_000),
        1 => FlowSizeDist::WebSearch,
        _ => FlowSizeDist::DataMining,
    }
}

fn scheduler(idx: usize) -> SchedulerKind {
    match idx % 4 {
        0 => SchedulerKind::EpsOnly,
        1 => SchedulerKind::Tdma,
        2 => SchedulerKind::Islip { iterations: 3 },
        _ => SchedulerKind::Solstice { perms: 4 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Estimate-tier rows are column-for-column compatible with
    /// exact-tier rows of the same spec.
    #[test]
    fn estimate_rows_mirror_exact_row_schema(
        pattern_idx in 0usize..5,
        sizes_idx in 0usize..3,
        sched_idx in 0usize..4,
        load_pct in 20u64..90,
        seed in 1u64..500,
        voip in any::<bool>(),
    ) {
        let base = ScenarioSpec::new("prop")
            .with_ports(4)
            .with_pattern(pattern(pattern_idx))
            .with_sizes(size_dist(sizes_idx))
            .with_scheduler(scheduler(sched_idx))
            .with_load(load_pct as f64 / 100.0)
            .with_seed(seed)
            .with_apps(if voip {
                AppMix::Voip { legs: 2, interval: SimDuration::from_micros(100) }
            } else {
                AppMix::None
            })
            .with_duration(SimDuration::from_micros(500));
        let exact = SweepExecutor::with_threads(1)
            .run(vec![base.clone().with_fidelity(Fidelity::Exact)]);
        let est = SweepExecutor::with_threads(1)
            .run(vec![base.with_fidelity(Fidelity::Estimate)]);
        prop_assert!(exact.points[0].report.is_ok(), "exact tier must run");
        prop_assert!(est.points[0].report.is_ok(), "estimate tier must run");

        // JSON rows: identical key sequence, not just the same set.
        let row = |json: &str| json.lines().nth(1).unwrap_or_default().to_string();
        let ek = json_keys(&row(&exact.to_json()));
        let sk = json_keys(&row(&est.to_json()));
        prop_assert!(!ek.is_empty());
        prop_assert_eq!(&ek, &sk, "JSON column order must match across tiers");
        prop_assert!(ek.contains(&"fidelity".to_string()));

        // CSV rows: same header, same (rectangular) cell count.
        let ec = exact.to_csv();
        let sc = est.to_csv();
        let eh = ec.lines().next().unwrap_or_default();
        prop_assert_eq!(eh, sc.lines().next().unwrap_or_default());
        let width = eh.split(',').count();
        for line in ec.lines().skip(1).chain(sc.lines().skip(1)) {
            prop_assert_eq!(line.split(',').count(), width, "ragged row: {}", line);
        }
    }
}
