//! Scheduler-invariant battery: for **every** scheduler in the registry,
//! over random demand matrices, the produced schedule must satisfy the
//! structural contracts the runtime relies on:
//!
//! * every `ScheduleEntry.perm` is a valid (partial) permutation — no
//!   input or output port matched twice (`check_invariants`);
//! * `Schedule::span(reconfig)` never exceeds the epoch budget (within
//!   the one-reconfig rounding tolerance `validate` documents);
//! * the entry count respects `max_entries`, and no slot is zero-length.
//!
//! This is the safety net under the hot-path runtime overhaul: the
//! runtime now borrows schedules out of a slab and executes them without
//! cloning, so a malformed schedule would corrupt the OCS configuration
//! sequence rather than just waste time.

use proptest::prelude::*;
use xds_core::demand::DemandMatrix;
use xds_core::sched::{ScheduleCtx, Scheduler};
use xds_scenario::SchedulerKind;
use xds_sim::{BitRate, SimDuration, SimTime};

/// The full registry: the sweep roster plus the parameterized variants
/// the roster's defaults don't cover.
fn registry() -> Vec<SchedulerKind> {
    let mut kinds = SchedulerKind::roster();
    kinds.push(SchedulerKind::Ilqf { iterations: 2 });
    kinds.push(SchedulerKind::Hotspot {
        threshold_bytes: 10_000,
    });
    kinds.push(SchedulerKind::Islip { iterations: 1 });
    kinds.push(SchedulerKind::Bvn { perms: 2 });
    kinds.push(SchedulerKind::Solstice { perms: 8 });
    kinds
}

fn ctx(reconfig_ns: u64, epoch_us: u64, max_entries: usize) -> ScheduleCtx {
    ScheduleCtx {
        now: SimTime::ZERO,
        line_rate: BitRate::GBPS_10,
        reconfig: SimDuration::from_nanos(reconfig_ns),
        epoch: SimDuration::from_micros(epoch_us),
        max_entries,
    }
}

fn check_all(demand_bytes: &[u64], n: usize, c: &ScheduleCtx) {
    let demand = DemandMatrix::from_vec(n, demand_bytes.to_vec());
    for kind in registry() {
        let mut s: Box<dyn Scheduler> = kind.build(n);
        // Two consecutive epochs: iterative schedulers carry round-robin
        // pointers, so the second call exercises non-initial state.
        for _ in 0..2 {
            let sched = s.schedule(&demand, c);
            sched.validate(c, n).unwrap_or_else(|e| {
                panic!(
                    "{} produced an invalid schedule on {demand_bytes:?}: {e}",
                    s.name()
                )
            });
            for (i, e) in sched.entries.iter().enumerate() {
                e.perm.check_invariants().unwrap_or_else(|err| {
                    panic!("{} entry {i}: invalid permutation: {err}", s.name())
                });
            }
            assert!(
                sched.span(c.reconfig) <= c.epoch + c.reconfig,
                "{} schedule span {} exceeds epoch budget {} (+1 reconfig tolerance)",
                s.name(),
                sched.span(c.reconfig),
                c.epoch
            );
            assert!(sched.entries.len() <= c.max_entries);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense random demand: every cell uniform in [0, 1 MB).
    #[test]
    fn all_schedulers_valid_on_dense_random_demand(
        n in 2usize..9,
        seed in 0u64..1000,
    ) {
        let mut rng = xds_sim::SimRng::new(seed);
        let bytes: Vec<u64> = (0..n * n).map(|_| rng.below(1_000_000)).collect();
        check_all(&bytes, n, &ctx(1_000, 100, 8));
    }

    /// Sparse spiky demand: few huge entries over zeros — the regime the
    /// decomposition schedulers (BvN, Solstice, Hotspot) branch on.
    #[test]
    fn all_schedulers_valid_on_sparse_spiky_demand(
        n in 2usize..9,
        seed in 0u64..1000,
        spikes in 1usize..6,
    ) {
        let mut rng = xds_sim::SimRng::new(seed);
        let mut bytes = vec![0u64; n * n];
        for _ in 0..spikes {
            let cell = rng.below((n * n) as u64) as usize;
            bytes[cell] = 10_000_000 + rng.below(1_000_000_000);
        }
        check_all(&bytes, n, &ctx(1_000, 100, 8));
    }

    /// Tight budgets: epoch barely above the reconfiguration time and a
    /// one-entry cap — the corner where span overshoots are most likely.
    #[test]
    fn all_schedulers_respect_tight_budgets(
        n in 2usize..7,
        seed in 0u64..1000,
        max_entries in 1usize..3,
    ) {
        let mut rng = xds_sim::SimRng::new(seed);
        let bytes: Vec<u64> = (0..n * n).map(|_| rng.below(100_000)).collect();
        // 10 µs epoch against a 2 µs reconfig: at most 4 slots fit even
        // before the entry cap bites.
        check_all(&bytes, n, &ctx(2_000, 10, max_entries));
    }

    /// All-zero demand must always produce an empty (or at least valid)
    /// schedule — no scheduler may go dark for nothing and overrun.
    #[test]
    fn all_schedulers_valid_on_zero_demand(n in 2usize..9) {
        let bytes = vec![0u64; n * n];
        check_all(&bytes, n, &ctx(1_000, 100, 8));
    }
}
