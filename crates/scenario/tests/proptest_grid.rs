//! Property tests of the sweep grid: enumeration is the *exact* cross
//! product of the axes — every combination exactly once, no duplicates,
//! no strays — for arbitrary axis shapes.

use proptest::prelude::*;
use xds_scenario::{ScenarioSpec, SchedulerKind, SweepGrid};
use xds_sim::SimDuration;

/// Distinct loads: 0.01, 0.02, … so combinations are identifiable.
fn loads(k: usize) -> Vec<f64> {
    (1..=k).map(|i| i as f64 / 100.0).collect()
}

fn ports(k: usize) -> Vec<usize> {
    (0..k).map(|i| 4 + 2 * i).collect()
}

fn seeds(k: usize) -> Vec<u64> {
    (0..k as u64).map(|i| 100 + i).collect()
}

fn reconfigs(k: usize) -> Vec<SimDuration> {
    (0..k as u64)
        .map(|i| SimDuration::from_micros(i + 1))
        .collect()
}

fn schedulers(k: usize) -> Vec<SchedulerKind> {
    SchedulerKind::roster().into_iter().take(k).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// |grid| = ∏ axis sizes, and every (load, port, reconfig, scheduler,
    /// seed) combination appears exactly once.
    #[test]
    fn enumeration_is_the_exact_cross_product(
        nl in 1usize..4,
        np in 1usize..3,
        nr in 1usize..3,
        ns in 1usize..5,
        nseed in 1usize..4,
    ) {
        let ls = loads(nl);
        let ps = ports(np);
        let rs = reconfigs(nr);
        let ss = schedulers(ns);
        let sds = seeds(nseed);
        let grid = SweepGrid::new(ScenarioSpec::new("p"))
            .loads(ls.clone())
            .ports(ps.clone())
            .reconfigs(rs.clone())
            .schedulers(ss.clone())
            .seeds(sds.clone());
        let expect = nl * np * nr * ns * nseed;
        prop_assert_eq!(grid.len(), expect);
        let specs = grid.specs();
        prop_assert_eq!(specs.len(), expect);

        // Exactly once per combination.
        for &l in &ls {
            for &p in &ps {
                for &r in &rs {
                    for s in &ss {
                        for &seed in &sds {
                            let hits = specs.iter().filter(|sp| {
                                sp.load == l
                                    && sp.n_ports == p
                                    && sp.reconfig == r
                                    && &sp.scheduler == s
                                    && sp.seed == seed
                            }).count();
                            prop_assert_eq!(
                                hits, 1,
                                "combo load={} n={} rc={} sched={} seed={}",
                                l, p, r, s.label(), seed
                            );
                        }
                    }
                }
            }
        }

        // No duplicate points overall (covers fields the combo check
        // might miss).
        for i in 0..specs.len() {
            for j in i + 1..specs.len() {
                prop_assert_ne!(&specs[i], &specs[j], "duplicate at {} and {}", i, j);
            }
        }
    }

    /// Point names are unique whenever any axis is swept, so result rows
    /// stay distinguishable.
    #[test]
    fn swept_grids_have_unique_point_names(
        nl in 2usize..5,
        nseed in 2usize..4,
    ) {
        let grid = SweepGrid::new(ScenarioSpec::new("p"))
            .loads(loads(nl))
            .seeds(seeds(nseed));
        let names: Vec<String> = grid.specs().into_iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), names.len(), "names collide: {:?}", names);
    }

    /// Singleton axes apply their value to every point without affecting
    /// the point count.
    #[test]
    fn singleton_axes_apply_uniformly(nl in 1usize..5, port in 4usize..10) {
        let grid = SweepGrid::new(ScenarioSpec::new("p"))
            .loads(loads(nl))
            .ports(vec![port]);
        let specs = grid.specs();
        prop_assert_eq!(specs.len(), nl);
        prop_assert!(specs.iter().all(|s| s.n_ports == port));
    }
}
