//! Sweep grids: a base [`ScenarioSpec`] plus axes, enumerated as the exact
//! cross product of experiment points.
//!
//! Axes left empty keep the base value (a singleton dimension). Points are
//! enumerated in odometer order — last axis fastest — and each point's
//! name is the base name tagged with the values of every swept
//! (non-singleton) axis, so result rows are self-describing. Per-point
//! seeds come either from the explicit [`SweepGrid::seeds`] axis or from
//! the base seed, mixed per-point by the executor's deterministic stream
//! derivation.

use xds_core::fault::FaultPlan;
use xds_sim::SimDuration;
use xds_traffic::FlowSizeDist;

use crate::spec::{
    EstimatorKind, Fidelity, PlacementKind, ScenarioSpec, SchedulerKind, TrafficPattern,
};

/// A declarative sweep: base point × axes.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    base: ScenarioSpec,
    loads: Vec<f64>,
    ports: Vec<usize>,
    reconfigs: Vec<SimDuration>,
    epochs: Vec<SimDuration>,
    max_entries: Vec<usize>,
    guards: Vec<SimDuration>,
    schedulers: Vec<SchedulerKind>,
    estimators: Vec<EstimatorKind>,
    placements: Vec<PlacementKind>,
    patterns: Vec<TrafficPattern>,
    sizes: Vec<FlowSizeDist>,
    bulk_thresholds: Vec<u64>,
    seeds: Vec<u64>,
    shards: Vec<usize>,
    faults: Vec<FaultPlan>,
    fidelities: Vec<Fidelity>,
}

impl SweepGrid {
    /// A grid with no axes: one point, the base itself.
    pub fn new(base: ScenarioSpec) -> Self {
        SweepGrid {
            base,
            loads: Vec::new(),
            ports: Vec::new(),
            reconfigs: Vec::new(),
            epochs: Vec::new(),
            max_entries: Vec::new(),
            guards: Vec::new(),
            schedulers: Vec::new(),
            estimators: Vec::new(),
            placements: Vec::new(),
            patterns: Vec::new(),
            sizes: Vec::new(),
            bulk_thresholds: Vec::new(),
            seeds: Vec::new(),
            shards: Vec::new(),
            faults: Vec::new(),
            fidelities: Vec::new(),
        }
    }

    /// Sweeps offered load.
    pub fn loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = loads;
        self
    }

    /// Sweeps port count.
    pub fn ports(mut self, ports: Vec<usize>) -> Self {
        self.ports = ports;
        self
    }

    /// Sweeps OCS reconfiguration time.
    pub fn reconfigs(mut self, reconfigs: Vec<SimDuration>) -> Self {
        self.reconfigs = reconfigs;
        self
    }

    /// Sweeps the scheduler epoch.
    pub fn epochs(mut self, epochs: Vec<SimDuration>) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sweeps the per-epoch configuration budget.
    pub fn max_entries(mut self, budgets: Vec<usize>) -> Self {
        self.max_entries = budgets;
        self
    }

    /// Sweeps the guard band.
    pub fn guards(mut self, guards: Vec<SimDuration>) -> Self {
        self.guards = guards;
        self
    }

    /// Sweeps the scheduling algorithm.
    pub fn schedulers(mut self, schedulers: Vec<SchedulerKind>) -> Self {
        self.schedulers = schedulers;
        self
    }

    /// Sweeps the demand estimator.
    pub fn estimators(mut self, estimators: Vec<EstimatorKind>) -> Self {
        self.estimators = estimators;
        self
    }

    /// Sweeps the scheduler placement.
    pub fn placements(mut self, placements: Vec<PlacementKind>) -> Self {
        self.placements = placements;
        self
    }

    /// Sweeps the traffic pattern.
    pub fn patterns(mut self, patterns: Vec<TrafficPattern>) -> Self {
        self.patterns = patterns;
        self
    }

    /// Sweeps the flow-size distribution.
    pub fn size_dists(mut self, sizes: Vec<FlowSizeDist>) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sweeps the EPS/OCS bulk threshold.
    pub fn bulk_thresholds(mut self, thresholds: Vec<u64>) -> Self {
        self.bulk_thresholds = thresholds;
        self
    }

    /// Sweeps the master seed (for replicated runs).
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sweeps the port-group shard count of the parallel core. Results
    /// are invariant in this axis by construction; sweeping it compares
    /// execution cost, not behavior.
    pub fn shards(mut self, shards: Vec<usize>) -> Self {
        self.shards = shards;
        self
    }

    /// Sweeps the deterministic fault plan (use [`FaultPlan::none`] as
    /// the baseline cell of a degradation study).
    pub fn faults(mut self, faults: Vec<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Sweeps the fidelity tier (run points exact, estimated, or both
    /// side by side — the `validate-estimates` harness's grid shape).
    pub fn fidelities(mut self, fidelities: Vec<Fidelity>) -> Self {
        self.fidelities = fidelities;
        self
    }

    /// The base spec the axes are applied to.
    pub fn base(&self) -> &ScenarioSpec {
        &self.base
    }

    fn axis_lens(&self) -> [usize; 16] {
        [
            self.loads.len().max(1),
            self.ports.len().max(1),
            self.reconfigs.len().max(1),
            self.epochs.len().max(1),
            self.max_entries.len().max(1),
            self.guards.len().max(1),
            self.schedulers.len().max(1),
            self.estimators.len().max(1),
            self.placements.len().max(1),
            self.patterns.len().max(1),
            self.sizes.len().max(1),
            self.bulk_thresholds.len().max(1),
            self.seeds.len().max(1),
            self.shards.len().max(1),
            self.faults.len().max(1),
            self.fidelities.len().max(1),
        ]
    }

    /// Number of points the grid enumerates.
    pub fn len(&self) -> usize {
        self.axis_lens().iter().product()
    }

    /// Whether the grid is empty (it never is: a grid is at least its
    /// base point).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Enumerates the exact cross product, odometer order (last axis
    /// fastest). Each point's name is `base-name/tag1/tag2/…` over the
    /// swept axes only.
    pub fn specs(&self) -> Vec<ScenarioSpec> {
        let lens = self.axis_lens();
        let total: usize = lens.iter().product();
        let mut out = Vec::with_capacity(total);
        for flat in 0..total {
            // Decompose `flat` into per-axis indices, last axis fastest.
            let mut rem = flat;
            let mut idx = [0usize; 16];
            for a in (0..lens.len()).rev() {
                idx[a] = rem % lens[a];
                rem /= lens[a];
            }
            let mut spec = self.base.clone();
            let mut tags: Vec<String> = Vec::new();
            let tag = |t: String, swept: bool, tags: &mut Vec<String>| {
                if swept {
                    tags.push(t);
                }
            };
            if let Some(&v) = self.loads.get(idx[0]) {
                spec.load = v;
                tag(format!("load{v:.2}"), self.loads.len() > 1, &mut tags);
            }
            if let Some(&v) = self.ports.get(idx[1]) {
                spec.n_ports = v;
                tag(format!("n{v}"), self.ports.len() > 1, &mut tags);
            }
            if let Some(&v) = self.reconfigs.get(idx[2]) {
                spec.reconfig = v;
                tag(format!("rc{v}"), self.reconfigs.len() > 1, &mut tags);
            }
            if let Some(&v) = self.epochs.get(idx[3]) {
                spec.epoch = Some(v);
                tag(format!("ep{v}"), self.epochs.len() > 1, &mut tags);
            }
            if let Some(&v) = self.max_entries.get(idx[4]) {
                spec.max_entries = Some(v);
                tag(format!("me{v}"), self.max_entries.len() > 1, &mut tags);
            }
            if let Some(&v) = self.guards.get(idx[5]) {
                spec.guard = v;
                tag(format!("g{v}"), self.guards.len() > 1, &mut tags);
            }
            if let Some(v) = self.schedulers.get(idx[6]) {
                spec.scheduler = v.clone();
                tag(v.tag(), self.schedulers.len() > 1, &mut tags);
            }
            if let Some(v) = self.estimators.get(idx[7]) {
                spec.estimator = v.clone();
                tag(v.label(), self.estimators.len() > 1, &mut tags);
            }
            if let Some(v) = self.placements.get(idx[8]) {
                spec.placement = v.clone();
                tag(v.label(), self.placements.len() > 1, &mut tags);
            }
            if let Some(v) = self.patterns.get(idx[9]) {
                spec.pattern = v.clone();
                tag(v.label(), self.patterns.len() > 1, &mut tags);
            }
            if let Some(v) = self.sizes.get(idx[10]) {
                spec.sizes = v.clone();
                tag(v.label().to_string(), self.sizes.len() > 1, &mut tags);
            }
            if let Some(&v) = self.bulk_thresholds.get(idx[11]) {
                spec.bulk_threshold = Some(v);
                tag(format!("bt{v}"), self.bulk_thresholds.len() > 1, &mut tags);
            }
            if let Some(&v) = self.seeds.get(idx[12]) {
                spec.seed = v;
                tag(format!("s{v}"), self.seeds.len() > 1, &mut tags);
            }
            if let Some(&v) = self.shards.get(idx[13]) {
                spec.shards = v.max(1);
                tag(format!("sh{v}"), self.shards.len() > 1, &mut tags);
            }
            if let Some(v) = self.faults.get(idx[14]) {
                spec.faults = Some(v.clone());
                tag(format!("f{}", v.label()), self.faults.len() > 1, &mut tags);
            }
            if let Some(&v) = self.fidelities.get(idx[15]) {
                spec.fidelity = v;
                tag(v.tag().to_string(), self.fidelities.len() > 1, &mut tags);
            }
            if !tags.is_empty() {
                spec.name = format!("{}/{}", spec.name, tags.join("/"));
            }
            out.push(spec);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    #[test]
    fn no_axes_is_just_the_base() {
        let g = SweepGrid::new(ScenarioSpec::new("b"));
        assert_eq!(g.len(), 1);
        let specs = g.specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0], *g.base());
        assert!(!g.is_empty());
    }

    #[test]
    fn cross_product_counts_multiply() {
        let g = SweepGrid::new(ScenarioSpec::new("b"))
            .loads(vec![0.1, 0.5, 0.9])
            .ports(vec![4, 8])
            .seeds(vec![1, 2, 3, 4]);
        assert_eq!(g.len(), 24);
        let specs = g.specs();
        assert_eq!(specs.len(), 24);
        // Every combination appears exactly once.
        for &l in &[0.1, 0.5, 0.9] {
            for &n in &[4usize, 8] {
                for &s in &[1u64, 2, 3, 4] {
                    let hits = specs
                        .iter()
                        .filter(|sp| sp.load == l && sp.n_ports == n && sp.seed == s)
                        .count();
                    assert_eq!(hits, 1, "combo load={l} n={n} seed={s}");
                }
            }
        }
    }

    #[test]
    fn point_names_tag_swept_axes_only() {
        let g = SweepGrid::new(ScenarioSpec::new("b"))
            .loads(vec![0.25, 0.75])
            .ports(vec![4]); // singleton: applied but untagged
        let names: Vec<String> = g.specs().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b/load0.25", "b/load0.75"]);
        let specs = g.specs();
        assert!(specs.iter().all(|s| s.n_ports == 4));
    }

    #[test]
    fn shards_axis_sweeps_and_tags() {
        let g = SweepGrid::new(ScenarioSpec::new("b")).shards(vec![1, 2, 4]);
        let specs = g.specs();
        assert_eq!(specs.len(), 3);
        let got: Vec<(usize, String)> = specs.into_iter().map(|s| (s.shards, s.name)).collect();
        assert_eq!(
            got,
            vec![
                (1, "b/sh1".to_string()),
                (2, "b/sh2".to_string()),
                (4, "b/sh4".to_string()),
            ]
        );
    }

    #[test]
    fn faults_axis_sweeps_and_tags() {
        let g = SweepGrid::new(ScenarioSpec::new("b"))
            .faults(vec![FaultPlan::none(), FaultPlan::storm()]);
        let specs = g.specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "b/fnone");
        assert_eq!(specs[0].faults, Some(FaultPlan::none()));
        assert_eq!(specs[1].name, "b/flink+misfire+stall");
        assert_eq!(specs[1].faults, Some(FaultPlan::storm()));
    }

    #[test]
    fn fidelity_axis_sweeps_and_tags() {
        let g = SweepGrid::new(ScenarioSpec::new("b"))
            .fidelities(vec![Fidelity::Exact, Fidelity::Estimate]);
        let specs = g.specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "b/exact");
        assert_eq!(specs[0].fidelity, Fidelity::Exact);
        assert_eq!(specs[1].name, "b/est");
        assert_eq!(specs[1].fidelity, Fidelity::Estimate);
        // Singleton axis: applied but untagged.
        let single = SweepGrid::new(ScenarioSpec::new("b"))
            .fidelities(vec![Fidelity::Estimate])
            .specs();
        assert_eq!(single[0].name, "b");
        assert_eq!(single[0].fidelity, Fidelity::Estimate);
    }

    #[test]
    fn last_axis_varies_fastest() {
        let g = SweepGrid::new(ScenarioSpec::new("b"))
            .loads(vec![0.1, 0.9])
            .seeds(vec![7, 8]);
        let specs = g.specs();
        let got: Vec<(f64, u64)> = specs.iter().map(|s| (s.load, s.seed)).collect();
        assert_eq!(got, vec![(0.1, 7), (0.1, 8), (0.9, 7), (0.9, 8)]);
    }
}
