//! # xds-scenario — declarative scenario library + parallel sweep engine
//!
//! The paper's framework exists to *rapidly explore* the hybrid-scheduler
//! design space: algorithm × demand pattern × reconfiguration time × epoch.
//! This crate turns that exploration into data instead of copy-pasted
//! experiment binaries, in four layers:
//!
//! 1. [`ScenarioSpec`] — one experiment point, fully declarative: topology
//!    size, traffic model, scheduler, estimator, placement/hardware model,
//!    epoch/reconfiguration timing, duration and seed. Built in code via a
//!    builder; every field is plain data, so specs are cloneable, hashable
//!    into stable point ids, and serializable into result rows.
//! 2. [`library`] — a named scenario catalogue (`uniform`, `permutation`,
//!    `hotspot`, `incast`, `shuffle`, `websearch`, `voip-mix`,
//!    `skewed-zipf`, `churn`, …) mapping names to specs backed by
//!    `xds-traffic` generators. See [`library::scenario`] and
//!    [`library::all_names`].
//! 3. [`SweepGrid`] — a base spec plus axes (loads, port counts,
//!    reconfiguration times, schedulers, estimators, seeds, …) enumerated
//!    as the exact cross product of declarative points.
//! 4. [`SweepExecutor`] — a parallel executor sharding grid points across
//!    `std::thread` workers. Each point derives its own deterministic
//!    `xds_sim::SimRng` stream from the spec seed, and results are
//!    collected in grid order, so a fixed-seed sweep produces
//!    **byte-identical JSON/CSV regardless of thread count**.
//!
//! ## Running a named scenario
//!
//! ```
//! use xds_scenario::{library, SweepExecutor};
//! use xds_sim::SimDuration;
//!
//! let spec = library::scenario("hotspot")
//!     .expect("known name")
//!     .with_ports(4)
//!     .with_duration(SimDuration::from_millis(2));
//! let results = SweepExecutor::with_threads(2).run(vec![spec]);
//! assert!(results.points[0].report.as_ref().unwrap().delivered_bytes() > 0);
//! ```
//!
//! ## Sweeping a grid
//!
//! ```
//! use xds_scenario::{ScenarioSpec, SchedulerKind, SweepExecutor, SweepGrid};
//! use xds_sim::SimDuration;
//!
//! let base = ScenarioSpec::new("demo")
//!     .with_ports(4)
//!     .with_duration(SimDuration::from_millis(1));
//! let grid = SweepGrid::new(base)
//!     .loads(vec![0.2, 0.6])
//!     .schedulers(vec![SchedulerKind::Islip { iterations: 3 }, SchedulerKind::GreedyLqf]);
//! assert_eq!(grid.len(), 4);
//! let results = SweepExecutor::default().run(grid.specs());
//! println!("{}", results.to_json());
//! ```
//!
//! ## Adding a scenario
//!
//! Add an arm to [`library::scenario`] (and its name to
//! [`library::all_names`]) returning a [`ScenarioSpec`] built from the
//! traffic patterns in [`TrafficPattern`] — or, for one-off studies, build
//! the spec inline and hand it straight to the executor. Anything the
//! builder can express is sweepable via [`SweepGrid`] with zero extra
//! plumbing.

#![warn(missing_docs)]

pub mod exec;
pub mod grid;
pub mod library;
pub mod output;
pub mod spec;

pub use exec::{parallel_map, run_point_guarded, SweepExecutor};
pub use grid::SweepGrid;
pub use output::{PointResult, SweepResults};
pub use spec::{
    AppMix, BuiltScenario, EstimatorKind, Fidelity, PlacementKind, ScenarioSpec, SchedulerKind,
    SwModelKind, SyncSpec, TrafficPattern,
};
pub use xds_core::instrument::InstrProfile;
pub use xds_core::{FaultPlan, LinkFaultSpec, MisfireSpec, StallSpec};
