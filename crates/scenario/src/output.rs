//! Machine-readable sweep output: JSON and CSV rows plus an aggregate
//! human table, with deterministic formatting so fixed-seed sweeps are
//! byte-identical across runs and thread counts.
//!
//! Serialization is hand-rolled (the workspace builds offline, without
//! serde): floats are printed with Rust's shortest-roundtrip `{:?}`
//! formatting, which is a pure function of the bit pattern.

use std::fmt::Write as _;
use std::path::Path;

use xds_core::report::RunReport;
use xds_metrics::Table;

use crate::spec::ScenarioSpec;

/// One executed grid point: the spec that described it and the report it
/// produced (or the reason it could not run).
#[derive(Debug)]
pub struct PointResult {
    /// The declarative point.
    pub spec: ScenarioSpec,
    /// The measurement bundle, or a per-point error.
    pub report: Result<RunReport, String>,
}

/// The ordered results of one sweep.
#[derive(Debug)]
pub struct SweepResults {
    /// Per-point results, in grid order.
    pub points: Vec<PointResult>,
}

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` deterministically (shortest roundtrip; JSON-safe).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// The columns every row carries, in order: `(name, value)` pairs. Spec
/// columns are derived here; every report-backed column comes from the
/// canonical [`RunReport::metric_columns`] accessor layer (the same one
/// `RunReport::summary_table` renders), so row emitters and summary
/// tables cannot drift apart. The deterministic internal-counter group
/// (`RunReport::counter_columns`) is appended only when `counters` is
/// set — the classic row layout is a compatibility surface.
fn row_fields(p: &PointResult, counters: bool) -> Vec<(&'static str, String)> {
    let s = &p.spec;
    let mut f: Vec<(&'static str, String)> = vec![
        ("scenario", format!("\"{}\"", json_escape(&s.name))),
        (
            "pattern",
            format!("\"{}\"", json_escape(&s.pattern.label())),
        ),
        ("sizes", format!("\"{}\"", s.sizes.label())),
        ("apps", format!("\"{}\"", s.apps.label())),
        ("scheduler", format!("\"{}\"", s.scheduler.tag())),
        ("estimator", format!("\"{}\"", s.estimator.label())),
        (
            "placement",
            format!("\"{}\"", json_escape(&s.placement.label())),
        ),
        ("profile", format!("\"{}\"", s.profile.label())),
        ("fidelity", format!("\"{}\"", s.fidelity.label())),
        ("n_ports", s.n_ports.to_string()),
        ("load", json_f64(s.load)),
        ("reconfig_ns", s.reconfig.as_nanos().to_string()),
        (
            "epoch_ns",
            s.epoch
                .map(|e| e.as_nanos().to_string())
                .unwrap_or_else(|| "null".into()),
        ),
        ("duration_ns", s.duration.as_nanos().to_string()),
        ("seed", s.seed.to_string()),
        (
            "faults",
            format!(
                "\"{}\"",
                s.faults
                    .as_ref()
                    .map_or_else(|| "none".into(), |p| p.label())
            ),
        ),
    ];
    match &p.report {
        Err(e) => {
            f.push(("error", format!("\"{}\"", json_escape(e))));
        }
        Ok(r) => {
            f.push(("error", "null".into()));
            for (name, value) in r.metric_columns() {
                f.push((name, value.json()));
            }
            if counters {
                for (name, value) in r.counter_columns() {
                    f.push((name, value.json()));
                }
            }
        }
    }
    f
}

/// Every column any row may carry, for the CSV header.
const CSV_COLUMNS: [&str; 47] = [
    "scenario",
    "pattern",
    "sizes",
    "apps",
    "scheduler",
    "estimator",
    "placement",
    "profile",
    "fidelity",
    "n_ports",
    "load",
    "reconfig_ns",
    "epoch_ns",
    "duration_ns",
    "seed",
    "faults",
    "error",
    "events",
    "offered_bytes",
    "offered_flows",
    "completed_flows",
    "delivered_ocs_bytes",
    "delivered_eps_bytes",
    "throughput_gbps",
    "goodput",
    "ocs_byte_share",
    "ocs_duty_cycle",
    "p50_bulk_ns",
    "p99_bulk_ns",
    "p50_inter_ns",
    "p99_inter_ns",
    "jitter_mean_ns",
    "jitter_max_ns",
    "fct_p99_ns",
    "drops_voq",
    "drops_eps",
    "drops_sync",
    "drops_link_dark",
    "peak_host_buffer",
    "peak_switch_buffer",
    "ocs_reconfigurations",
    "decisions",
    "decision_latency_mean_ns",
    "demand_error_mean",
    "fault_degraded_ns",
    "fault_failover_bytes",
    "ok",
];

/// The CSV header: the fixed classic columns, with the counter group
/// spliced in just before the trailing `ok` flag when opted in.
fn csv_header(counters: bool) -> Vec<&'static str> {
    let mut cols: Vec<&'static str> = CSV_COLUMNS.to_vec();
    if counters {
        let at = cols.len() - 1; // before "ok"
        for (i, name) in xds_core::CounterSet::names().into_iter().enumerate() {
            cols.insert(at + i, name);
        }
    }
    cols
}

impl SweepResults {
    /// Serializes every point as one JSON array of flat objects
    /// (classic column set — [`to_json_with`](Self::to_json_with) opts
    /// the counter group in).
    pub fn to_json(&self) -> String {
        self.to_json_with(false)
    }

    /// [`to_json`](Self::to_json), optionally appending the
    /// deterministic internal-counter columns to every successful row.
    pub fn to_json_with(&self, counters: bool) -> String {
        let mut out = String::from("[\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("  {");
            for (j, (k, v)) in row_fields(p, counters).iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{k}\": {v}");
            }
            out.push('}');
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Serializes every point as CSV with a fixed header (missing fields
    /// are empty cells; [`to_csv_with`](Self::to_csv_with) opts the
    /// counter group in).
    pub fn to_csv(&self) -> String {
        self.to_csv_with(false)
    }

    /// [`to_csv`](Self::to_csv), optionally splicing the deterministic
    /// internal-counter columns in before the trailing `ok` flag.
    pub fn to_csv_with(&self, counters: bool) -> String {
        let header = csv_header(counters);
        let mut out = String::new();
        out.push_str(&header.join(","));
        out.push('\n');
        for p in &self.points {
            let fields = row_fields(p, counters);
            let cells: Vec<String> = header
                .iter()
                .map(|col| {
                    if *col == "ok" {
                        return if p.report.is_ok() { "1" } else { "0" }.to_string();
                    }
                    fields
                        .iter()
                        .find(|(k, _)| k == col)
                        .map(|(_, v)| {
                            // JSON string literals drop their quotes in CSV;
                            // commas inside values get re-quoted CSV-style.
                            let raw = v.trim_matches('"').to_string();
                            if raw.contains(',') {
                                format!("\"{raw}\"")
                            } else {
                                raw
                            }
                        })
                        .unwrap_or_default()
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the headline aggregate table (one row per point).
    pub fn summary_table(&self, title: impl Into<String>) -> Table {
        let mut t = Table::new(
            title,
            &[
                "scenario",
                "sched",
                "n",
                "load",
                "thru(Gbps)",
                "goodput",
                "ocs%",
                "p99 bulk(us)",
                "p99 inter(us)",
                "drops",
                "status",
            ],
        );
        for p in &self.points {
            match &p.report {
                Ok(r) => {
                    // Cells come from the same accessor layer the
                    // JSON/CSV rows use (materialized once per point);
                    // only the formatting is local. Unmeasured
                    // observables (lean profile) render as `-`.
                    let cols = r.metric_columns();
                    let m = |name: &str| RunReport::column(&cols, name).as_f64();
                    let f = |name: &str, scale: f64, digits: usize| {
                        m(name)
                            .map(|v| format!("{:.*}", digits, v * scale))
                            .unwrap_or_else(|| "-".into())
                    };
                    t.row(vec![
                        p.spec.name.clone(),
                        p.spec.scheduler.label().to_string(),
                        p.spec.n_ports.to_string(),
                        format!("{:.2}", p.spec.load),
                        f("throughput_gbps", 1.0, 2),
                        f("goodput", 1.0, 3),
                        f("ocs_byte_share", 100.0, 1),
                        f("p99_bulk_ns", 1e-3, 1),
                        f("p99_inter_ns", 1e-3, 1),
                        r.drops.total().to_string(),
                        "ok".into(),
                    ]);
                }
                Err(e) => {
                    t.row(vec![
                        p.spec.name.clone(),
                        p.spec.scheduler.label().to_string(),
                        p.spec.n_ports.to_string(),
                        format!("{:.2}", p.spec.load),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("error: {e}"),
                    ]);
                }
            }
        }
        t
    }

    /// Writes `results/<name>.json` and `results/<name>.csv` (best-effort;
    /// failures are reported on stderr, the return lists what was
    /// written).
    pub fn write_artifacts(&self, name: &str) -> Vec<std::path::PathBuf> {
        self.write_artifacts_with(name, false)
    }

    /// [`write_artifacts`](Self::write_artifacts), optionally including
    /// the deterministic internal-counter column group in both files.
    pub fn write_artifacts_with(&self, name: &str, counters: bool) -> Vec<std::path::PathBuf> {
        let dir = Path::new("results");
        let mut written = Vec::new();
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("(could not create {}: {e})", dir.display());
            return written;
        }
        for (ext, body) in [
            ("json", self.to_json_with(counters)),
            ("csv", self.to_csv_with(counters)),
        ] {
            let path = dir.join(format!("{name}.{ext}"));
            match std::fs::write(&path, body) {
                Ok(()) => written.push(path),
                Err(e) => eprintln!("(could not save {}: {e})", path.display()),
            }
        }
        written
    }

    /// Serializes every point's epoch-resolution telemetry (points run
    /// under the `timeseries` instrumentation profile) as one flat JSON
    /// array: one object per `(point, epoch)` with the spec identity
    /// columns repeated, so the stream is directly plottable/joinable.
    /// Points without a recorded series contribute no rows.
    pub fn to_timeseries_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for (spec, r) in self.ok_reports() {
            let Some(series) = &r.timeseries else {
                continue;
            };
            for row in series.rows() {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"n_ports\": {}, \
                     \"seed\": {}, \"epoch\": {}, \"t_ns\": {}, \"demand_err\": {}, \
                     \"duty_cycle\": {}, \"backlog_bytes\": {}, \"decision_ns\": {}, \
                     \"entries\": {}}}",
                    json_escape(&spec.name),
                    spec.scheduler.tag(),
                    spec.n_ports,
                    spec.seed,
                    row.epoch,
                    row.at.as_nanos(),
                    row.demand_err_rel
                        .map(json_f64)
                        .unwrap_or_else(|| "null".into()),
                    row.duty_cycle
                        .map(json_f64)
                        .unwrap_or_else(|| "null".into()),
                    row.backlog_bytes,
                    row.decision_ns,
                    row.entries
                );
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// CSV form of [`to_timeseries_json`](Self::to_timeseries_json):
    /// fixed header, one line per `(point, epoch)`, absent values empty.
    pub fn to_timeseries_csv(&self) -> String {
        let mut out = String::from(
            "scenario,scheduler,n_ports,seed,epoch,t_ns,demand_err,duty_cycle,\
             backlog_bytes,decision_ns,entries\n",
        );
        for (spec, r) in self.ok_reports() {
            let Some(series) = &r.timeseries else {
                continue;
            };
            // Same quoting rule as `to_csv`: free-form point names may
            // contain commas and must not shift the column positions.
            let name = if spec.name.contains(',') {
                format!("\"{}\"", spec.name)
            } else {
                spec.name.clone()
            };
            for row in series.rows() {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{}",
                    name,
                    spec.scheduler.tag(),
                    spec.n_ports,
                    spec.seed,
                    row.epoch,
                    row.at.as_nanos(),
                    row.demand_err_rel.map(json_f64).unwrap_or_default(),
                    row.duty_cycle.map(json_f64).unwrap_or_default(),
                    row.backlog_bytes,
                    row.decision_ns,
                    row.entries
                );
            }
        }
        out
    }

    /// Whether any point recorded an epoch-resolution series.
    pub fn has_timeseries(&self) -> bool {
        self.ok_reports().any(|(_, r)| r.timeseries.is_some())
    }

    /// Writes `results/<name>.timeseries.json` and `.csv` (best-effort,
    /// like [`write_artifacts`](Self::write_artifacts)).
    pub fn write_timeseries_artifacts(&self, name: &str) -> Vec<std::path::PathBuf> {
        let dir = Path::new("results");
        let mut written = Vec::new();
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("(could not create {}: {e})", dir.display());
            return written;
        }
        for (ext, body) in [
            ("timeseries.json", self.to_timeseries_json()),
            ("timeseries.csv", self.to_timeseries_csv()),
        ] {
            let path = dir.join(format!("{name}.{ext}"));
            match std::fs::write(&path, body) {
                Ok(()) => written.push(path),
                Err(e) => eprintln!("(could not save {}: {e})", path.display()),
            }
        }
        written
    }

    /// Whether any point carried flight-recorder output (points run with
    /// `ScenarioSpec::with_trace(true)`).
    pub fn has_traces(&self) -> bool {
        self.ok_reports().any(|(_, r)| r.chrome_trace.is_some())
    }

    /// Writes each traced point's Chrome Trace Event JSON (best-effort,
    /// like [`write_artifacts`](Self::write_artifacts)): a single traced
    /// point lands in `results/<name>.trace.json`, several in
    /// `results/<name>.<point>.trace.json` each. Load the files in
    /// Perfetto or chrome://tracing.
    pub fn write_trace_artifacts(&self, name: &str) -> Vec<std::path::PathBuf> {
        let traced: Vec<(&ScenarioSpec, &str)> = self
            .ok_reports()
            .filter_map(|(s, r)| r.chrome_trace.as_deref().map(|t| (s, t)))
            .collect();
        let mut written = Vec::new();
        if traced.is_empty() {
            return written;
        }
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("(could not create {}: {e})", dir.display());
            return written;
        }
        let solo = traced.len() == 1;
        for (spec, json) in traced {
            let file = if solo {
                format!("{name}.trace.json")
            } else {
                format!("{name}.{}.trace.json", spec.name)
            };
            let path = dir.join(file);
            match std::fs::write(&path, json) {
                Ok(()) => written.push(path),
                Err(e) => eprintln!("(could not save {}: {e})", path.display()),
            }
        }
        written
    }

    /// The successful reports, in grid order, paired with their specs.
    pub fn ok_reports(&self) -> impl Iterator<Item = (&ScenarioSpec, &RunReport)> {
        self.points
            .iter()
            .filter_map(|p| p.report.as_ref().ok().map(|r| (&p.spec, r)))
    }

    /// The report at `idx`, if the point succeeded.
    pub fn report(&self, idx: usize) -> Option<&RunReport> {
        self.points.get(idx).and_then(|p| p.report.as_ref().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use crate::SweepExecutor;
    use xds_sim::SimDuration;

    fn small_results() -> SweepResults {
        SweepExecutor::with_threads(2).run(vec![
            ScenarioSpec::new("a")
                .with_ports(4)
                .with_duration(SimDuration::from_millis(1)),
            ScenarioSpec::new("bad").with_ports(1),
        ])
    }

    #[test]
    fn json_is_wellformed_enough_and_carries_errors() {
        let r = small_results();
        let json = r.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"scenario\":").count(), 2);
        assert!(json.contains("\"error\": null"));
        assert!(json.contains("need at least 2 ports"));
        // Balanced braces across rows.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn csv_has_header_and_one_line_per_point() {
        let r = small_results();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("scenario,pattern,"));
        let header_cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), header_cols, "ragged row: {l}");
        }
        assert!(lines[1].ends_with(",1"), "ok point flagged: {}", lines[1]);
        assert!(
            lines[2].ends_with(",0"),
            "error point flagged: {}",
            lines[2]
        );
    }

    #[test]
    fn summary_table_renders_both_outcomes() {
        let r = small_results();
        let t = r.summary_table("test");
        let text = t.render_text();
        assert!(text.contains("ok"));
        assert!(text.contains("error:"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }

    #[test]
    fn rows_carry_the_instrumentation_profile() {
        let r = small_results();
        assert!(r.to_json().contains("\"profile\": \"full\""));
        assert!(r.to_csv().lines().next().unwrap().contains(",profile,"));
        let lean = SweepExecutor::with_threads(1).run(vec![ScenarioSpec::new("l")
            .with_ports(4)
            .with_profile(crate::InstrProfile::Lean)
            .with_duration(SimDuration::from_millis(1))]);
        let json = lean.to_json();
        assert!(json.contains("\"profile\": \"lean\""));
        // Unmeasured observables are null, not a fake zero — a lean row
        // must never read as "measured zero latency / zero buffering".
        assert!(json.contains("\"p99_bulk_ns\": null"), "{json}");
        assert!(json.contains("\"peak_switch_buffer\": null"), "{json}");
        assert!(json.contains("\"completed_flows\": null"), "{json}");
        // The unobserved aggregate table renders dashes, not panics.
        let text = lean.summary_table("lean").render_text();
        assert!(text.contains('-'), "{text}");
    }

    #[test]
    fn rows_carry_the_fidelity_tier() {
        let r = small_results();
        assert!(r.to_json().contains("\"fidelity\": \"exact\""));
        assert!(r.to_csv().lines().next().unwrap().contains(",fidelity,"));
        let est = SweepExecutor::with_threads(1).run(vec![ScenarioSpec::new("e")
            .with_ports(4)
            .with_fidelity(crate::Fidelity::Estimate)
            .with_duration(SimDuration::from_millis(1))]);
        let json = est.to_json();
        assert!(json.contains("\"fidelity\": \"estimate\""), "{json}");
        assert!(
            json.contains("\"error\": null"),
            "estimate tier ran: {json}"
        );
        // Estimate rows stay rectangular under the exact-tier header.
        let csv = est.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        let header_cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), header_cols);
        assert!(lines[1].ends_with(",1"), "estimate point ok: {}", lines[1]);
    }

    #[test]
    fn counter_columns_are_opt_in_and_keep_rows_rectangular() {
        let r = small_results();
        // The classic layout is untouched by default.
        assert!(!r.to_json().contains("\"sched_probes\""));
        assert!(!r.to_csv().lines().next().unwrap().contains("pool_allocs"));
        // Opted in: JSON rows carry the group, CSV splices it before
        // the trailing `ok` flag, and rows stay rectangular even for
        // errored points (empty counter cells).
        let json = r.to_json_with(true);
        assert!(json.contains("\"sched_probes\":"), "{json}");
        assert!(json.contains("\"pool_allocs\":"));
        let csv = r.to_csv_with(true);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        let header: Vec<&str> = lines[0].split(',').collect();
        assert_eq!(header.last(), Some(&"ok"));
        assert!(header.contains(&"queue_spills"));
        let header_cols = header.len();
        assert_eq!(
            header_cols,
            CSV_COLUMNS.len() + xds_core::CounterSet::LEN,
            "counter group widens the header by exactly its size"
        );
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), header_cols, "ragged row: {l}");
        }
        // Trace artifacts exist only for traced points.
        assert!(!r.has_traces());
        let traced = SweepExecutor::with_threads(1).run(vec![ScenarioSpec::new("tr")
            .with_ports(4)
            .with_trace(true)
            .with_duration(SimDuration::from_millis(1))]);
        assert!(traced.has_traces());
    }

    #[test]
    fn timeseries_artifacts_stream_epoch_rows() {
        let ts = SweepExecutor::with_threads(1).run(vec![ScenarioSpec::new("ts")
            .with_ports(4)
            .with_profile(crate::InstrProfile::TimeSeries)
            .with_duration(SimDuration::from_millis(2))]);
        assert!(ts.has_timeseries());
        let json = ts.to_timeseries_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"epoch\": 0"), "{json}");
        assert!(json.contains("\"duty_cycle\""));
        assert!(json.contains("\"backlog_bytes\""));
        let csv = ts.to_timeseries_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert!(lines.len() >= 2, "header plus at least one epoch row");
        let header_cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), header_cols, "ragged row: {l}");
        }
        // Row count matches the recorded series exactly.
        let rows: usize = ts
            .ok_reports()
            .filter_map(|(_, r)| r.timeseries.as_ref())
            .map(|s| s.len())
            .sum();
        assert_eq!(lines.len() - 1, rows);
        assert_eq!(json.matches("\"epoch\":").count(), rows);
        // Full-profile sweeps produce empty streams, not errors.
        let none = small_results();
        assert!(!none.has_timeseries());
        assert_eq!(none.to_timeseries_json().matches("\"epoch\":").count(), 0);
    }
}
