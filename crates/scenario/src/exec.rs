//! The parallel sweep executor: shard grid points across OS threads,
//! collect reports in grid order.
//!
//! Every point is an independent single-threaded simulation whose RNG
//! streams derive only from its own spec, so parallelism is
//! embarrassingly clean: workers pull point indices off a shared atomic
//! counter, run them, and write results into their slots. Output order —
//! and therefore serialized JSON/CSV — is byte-identical for any worker
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use xds_core::report::RunReport;

use crate::output::{PointResult, SweepResults};
use crate::spec::ScenarioSpec;

/// Applies `f` to every item on a pool of `threads` workers, preserving
/// input order in the output. Items are pulled dynamically (work
/// stealing by atomic counter), so uneven point costs still balance.
pub fn parallel_map_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each index is claimed once");
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// [`parallel_map_threads`] with one worker per available core.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_threads(items, default_threads(), f)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Runs one point with panic isolation and an optional wall-clock budget.
///
/// A panic anywhere inside the point (spec materialization, the runtime,
/// report assembly) is caught and converted into a per-point error, so a
/// sweep containing a pathological corner still completes and reports the
/// corner as such. With a timeout set, the point runs on a watchdog
/// thread: if the wall-clock budget elapses first, the point is reported
/// as timed out and its worker thread is abandoned (it keeps the CPU
/// until it finishes, but its result is discarded). The timeout gates
/// only *whether* a result is accepted — a point that completes in time
/// returns exactly what an unwatched run would have, so fixed-seed sweeps
/// stay byte-identical.
pub fn run_point_guarded(
    spec: &ScenarioSpec,
    timeout: Option<Duration>,
) -> Result<RunReport, String> {
    let name = spec.name.clone();
    let run = {
        let spec = spec.clone();
        let name = name.clone();
        move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.run())).unwrap_or_else(
                |p| Err(format!("scenario {name}: panicked: {}", panic_message(&*p))),
            )
        }
    };
    let Some(limit) = timeout else {
        return run();
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name(format!("point-{name}"))
        .spawn(move || {
            let _ = tx.send(run());
        });
    if let Err(e) = spawned {
        return Err(format!("scenario {name}: watchdog spawn failed: {e}"));
    }
    // xlint: allow(wall-clock) — watchdog deadline is harness wall time; it gates result acceptance, never simulated behavior
    let deadline = std::time::Instant::now() + limit;
    loop {
        // xlint: allow(wall-clock) — remaining watchdog budget against the same harness-side deadline
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            // One last grace poll: a result that beat the deadline wins
            // even if this thread was scheduled late.
            if let Ok(r) = rx.try_recv() {
                return r;
            }
            return Err(format!(
                "scenario {name}: exceeded point timeout of {}s; worker abandoned",
                limit.as_secs_f64()
            ));
        }
        match rx.recv_timeout(left) {
            Ok(r) => return r,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err(format!("scenario {name}: worker vanished without a result"));
            }
        }
    }
}

/// Runs batches of [`ScenarioSpec`] points across worker threads.
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    threads: usize,
    point_timeout: Option<Duration>,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor {
            threads: default_threads(),
            point_timeout: None,
        }
    }
}

impl SweepExecutor {
    /// One worker per available core.
    pub fn new() -> Self {
        Self::default()
    }

    /// An executor with an explicit worker count (floored at 1).
    pub fn with_threads(threads: usize) -> Self {
        SweepExecutor {
            threads: threads.max(1),
            point_timeout: None,
        }
    }

    /// Sets a wall-clock budget per point (`None` = unbounded, the
    /// default). A point that overruns becomes an error row; see
    /// [`run_point_guarded`] for the exact semantics.
    pub fn with_point_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.point_timeout = timeout;
        self
    }

    /// The worker count this executor will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every point and returns results in input order. Invalid specs
    /// produce per-point errors, never a panic — a sweep that wanders into
    /// an inadmissible corner (e.g. epoch ≤ reconfiguration) still
    /// completes and reports the corner as such. Panicking points are
    /// isolated the same way, and points overrunning the executor's
    /// [`point timeout`](Self::with_point_timeout) become error rows.
    pub fn run(&self, specs: Vec<ScenarioSpec>) -> SweepResults {
        let timeout = self.point_timeout;
        let points = parallel_map_threads(specs, self.threads, move |spec| {
            let report = run_point_guarded(&spec, timeout);
            PointResult { spec, report }
        });
        SweepResults { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use xds_sim::SimDuration;

    #[test]
    fn parallel_map_preserves_order() {
        let got = parallel_map((0..100u64).collect(), |x| x * 2);
        assert_eq!(got, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let got: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let specs: Vec<ScenarioSpec> = (0..4)
            .map(|i| {
                ScenarioSpec::new(format!("p{i}"))
                    .with_ports(4)
                    .with_seed(i as u64 + 1)
                    .with_duration(SimDuration::from_millis(1))
            })
            .collect();
        let a = SweepExecutor::with_threads(1).run(specs.clone());
        let b = SweepExecutor::with_threads(4).run(specs);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn estimate_tier_is_byte_identical_across_thread_counts() {
        // The estimate tier must honor the same contract as the exact
        // tier: per-point streams fork off the spec seed on one thread,
        // so sweep artifacts cannot depend on worker count.
        let specs: Vec<ScenarioSpec> = (0..6)
            .map(|i| {
                ScenarioSpec::new(format!("e{i}"))
                    .with_ports(8)
                    .with_seed(i as u64 + 1)
                    .with_fidelity(crate::Fidelity::Estimate)
                    .with_duration(SimDuration::from_millis(1))
            })
            .collect();
        let a = SweepExecutor::with_threads(1).run(specs.clone());
        let b = SweepExecutor::with_threads(2).run(specs.clone());
        let c = SweepExecutor::with_threads(8).run(specs);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(b.to_json(), c.to_json());
        assert_eq!(a.to_csv(), c.to_csv());
    }

    #[test]
    fn invalid_point_reports_error_without_sinking_the_sweep() {
        let specs = vec![
            ScenarioSpec::new("ok")
                .with_ports(4)
                .with_duration(SimDuration::from_millis(1)),
            ScenarioSpec::new("bad").with_ports(1),
        ];
        let results = SweepExecutor::with_threads(2).run(specs);
        assert!(results.points[0].report.is_ok());
        assert!(results.points[1].report.is_err());
    }

    #[test]
    fn panicking_point_becomes_an_error_row_not_a_crashed_sweep() {
        let specs = vec![
            ScenarioSpec::new("ok")
                .with_ports(4)
                .with_duration(SimDuration::from_millis(1)),
            // Deliberately panics deep inside SimBuilder::build — past
            // every Err-returning validation layer.
            ScenarioSpec::new("boom")
                .with_ports(4)
                .with_faults(xds_core::FaultPlan::none().with_harness_panic()),
        ];
        let results = SweepExecutor::with_threads(2).run(specs);
        assert!(results.points[0].report.is_ok());
        let err = results.points[1].report.as_ref().unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("harness panic"), "{err}");
        // The error row serializes like any other failed point.
        assert!(results.to_csv().lines().nth(2).unwrap().ends_with(",0"));
    }

    #[test]
    fn point_timeout_turns_an_overrunning_point_into_an_error_row() {
        // A 2048-port sharded point takes far longer than a nanosecond.
        let slow = ScenarioSpec::new("slow")
            .with_ports(256)
            .with_duration(SimDuration::from_millis(50));
        let results = SweepExecutor::with_threads(1)
            .with_point_timeout(Some(std::time::Duration::from_nanos(1)))
            .run(vec![slow]);
        let err = results.points[0].report.as_ref().unwrap_err();
        assert!(err.contains("point timeout"), "{err}");
        // A generous budget accepts the result unchanged.
        let spec = ScenarioSpec::new("fast")
            .with_ports(4)
            .with_duration(SimDuration::from_millis(1));
        let unwatched = spec.clone().run().unwrap();
        let watched = SweepExecutor::with_threads(1)
            .with_point_timeout(Some(std::time::Duration::from_secs(600)))
            .run(vec![spec]);
        let r = watched.points[0].report.as_ref().unwrap();
        assert_eq!(r.events, unwatched.events);
        assert_eq!(r.counters, unwatched.counters);
    }
}
