//! The parallel sweep executor: shard grid points across OS threads,
//! collect reports in grid order.
//!
//! Every point is an independent single-threaded simulation whose RNG
//! streams derive only from its own spec, so parallelism is
//! embarrassingly clean: workers pull point indices off a shared atomic
//! counter, run them, and write results into their slots. Output order —
//! and therefore serialized JSON/CSV — is byte-identical for any worker
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::output::{PointResult, SweepResults};
use crate::spec::ScenarioSpec;

/// Applies `f` to every item on a pool of `threads` workers, preserving
/// input order in the output. Items are pulled dynamically (work
/// stealing by atomic counter), so uneven point costs still balance.
pub fn parallel_map_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each index is claimed once");
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// [`parallel_map_threads`] with one worker per available core.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_threads(items, default_threads(), f)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Runs batches of [`ScenarioSpec`] points across worker threads.
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    threads: usize,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor {
            threads: default_threads(),
        }
    }
}

impl SweepExecutor {
    /// One worker per available core.
    pub fn new() -> Self {
        Self::default()
    }

    /// An executor with an explicit worker count (floored at 1).
    pub fn with_threads(threads: usize) -> Self {
        SweepExecutor {
            threads: threads.max(1),
        }
    }

    /// The worker count this executor will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every point and returns results in input order. Invalid specs
    /// produce per-point errors, never a panic — a sweep that wanders into
    /// an inadmissible corner (e.g. epoch ≤ reconfiguration) still
    /// completes and reports the corner as such.
    pub fn run(&self, specs: Vec<ScenarioSpec>) -> SweepResults {
        let points = parallel_map_threads(specs, self.threads, |spec| {
            let report = spec.run();
            PointResult { spec, report }
        });
        SweepResults { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use xds_sim::SimDuration;

    #[test]
    fn parallel_map_preserves_order() {
        let got = parallel_map((0..100u64).collect(), |x| x * 2);
        assert_eq!(got, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let got: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let specs: Vec<ScenarioSpec> = (0..4)
            .map(|i| {
                ScenarioSpec::new(format!("p{i}"))
                    .with_ports(4)
                    .with_seed(i as u64 + 1)
                    .with_duration(SimDuration::from_millis(1))
            })
            .collect();
        let a = SweepExecutor::with_threads(1).run(specs.clone());
        let b = SweepExecutor::with_threads(4).run(specs);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn invalid_point_reports_error_without_sinking_the_sweep() {
        let specs = vec![
            ScenarioSpec::new("ok")
                .with_ports(4)
                .with_duration(SimDuration::from_millis(1)),
            ScenarioSpec::new("bad").with_ports(1),
        ];
        let results = SweepExecutor::with_threads(2).run(specs);
        assert!(results.points[0].report.is_ok());
        assert!(results.points[1].report.is_err());
    }
}
