//! The declarative experiment point: every knob of a testbed run as plain
//! data, so experiments can be enumerated, sharded and recorded instead of
//! hand-assembled per binary.

use xds_core::config::{NodeConfig, Placement};
use xds_core::demand::{
    CountMinEstimator, DemandEstimator, EwmaEstimator, MirrorEstimator, WindowEstimator,
};
use xds_core::fault::FaultPlan;
use xds_core::instrument::InstrProfile;
use xds_core::node::Workload;
use xds_core::report::RunReport;
use xds_core::runtime::SimBuilder;
use xds_core::sched::{
    BvnScheduler, EpsOnlyScheduler, GreedyLqfScheduler, HotspotScheduler, HungarianScheduler,
    IlqfScheduler, IslipScheduler, PimScheduler, RrmScheduler, Scheduler, SolsticeScheduler,
    TdmaScheduler, WavefrontScheduler,
};
use xds_estimate::EstimateProblem;
use xds_hw::{ClockDomain, HwAlgo, HwSchedulerModel, SwSchedulerModel, SyncModel};
use xds_net::PortNo;
use xds_sim::{SimDuration, SimRng, SimTime};
use xds_traffic::{CbrApp, FlowGenerator, FlowSizeDist, TrafficMatrix};

/// The fidelity tier a point is evaluated at: the exact event-driven
/// simulator, or the decomposed fast estimator (`xds-estimate`). A
/// second axis of every sweep — same spec, same seed, same columns,
/// different cost/accuracy trade. `sweep validate-estimates` quantifies
/// the gap per metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Full event-driven simulation (the default).
    #[default]
    Exact,
    /// Decomposed per-link queueing estimate: orders of magnitude
    /// cheaper, approximate.
    Estimate,
}

impl Fidelity {
    /// Column value for result rows ("exact" / "estimate").
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Exact => "exact",
            Fidelity::Estimate => "estimate",
        }
    }

    /// Short tag for grid point names ("exact" / "est").
    pub fn tag(self) -> &'static str {
        match self {
            Fidelity::Exact => "exact",
            Fidelity::Estimate => "est",
        }
    }

    /// Looks a tier up by name — the CLI entry point (`--fidelity`).
    /// Accepts both the column label and the grid tag.
    pub fn from_name(name: &str) -> Option<Fidelity> {
        match name {
            "exact" => Some(Fidelity::Exact),
            "estimate" | "est" => Some(Fidelity::Estimate),
            _ => None,
        }
    }
}

/// Who talks to whom: the declarative form of `xds_traffic::TrafficMatrix`
/// (plus the rotating patterns the matrix-cycle machinery drives).
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// All-to-all uniform load.
    Uniform,
    /// Cyclic-shift permutation `src → src + shift`.
    Permutation {
        /// Destination shift (taken mod `n`, floored at 1).
        shift: usize,
    },
    /// `pairs` hot pairs carrying `fraction` of the load over a uniform
    /// background.
    Hotspot {
        /// Number of hot pairs (clamped to `n`).
        pairs: usize,
        /// Fraction of total load on the hot pairs.
        fraction: f64,
        /// Rotation offset of the hot pairs.
        offset: usize,
    },
    /// `senders` sources converging on one destination.
    Incast {
        /// Sender count (clamped to `n - 1`).
        senders: usize,
        /// Target port (taken mod `n`).
        target: usize,
    },
    /// Zipf-skewed pair popularity.
    Zipf {
        /// Skew exponent (1.0 ≈ classic Zipf).
        exponent: f64,
    },
    /// The union of several disjoint cyclic permutations (`src → src+k`
    /// for each shift `k`): demand that needs exactly `shifts.len()` OCS
    /// configurations to cover — the decomposition-budget stress case.
    MultiRing {
        /// The shifts, each taken mod `n` and floored at 1.
        shifts: Vec<usize>,
    },
    /// The `n−1` stages of an all-to-all shuffle, rotated every `period`.
    ShuffleStages {
        /// Stage rotation period.
        period: SimDuration,
    },
    /// Adversarial demand churn: a hotspot whose hot pairs jump every
    /// `period`, cycling through `steps` offsets.
    ChurnHotspot {
        /// Number of hot pairs (clamped to `n`).
        pairs: usize,
        /// Fraction of total load on the hot pairs.
        fraction: f64,
        /// Hotspot rotation period.
        period: SimDuration,
        /// Number of distinct offsets cycled through.
        steps: usize,
    },
}

impl TrafficPattern {
    /// The initial traffic matrix for an `n`-port fabric.
    pub fn matrix(&self, n: usize, rng: &mut SimRng) -> TrafficMatrix {
        match self {
            TrafficPattern::Uniform => TrafficMatrix::uniform(n),
            TrafficPattern::Permutation { shift } => {
                TrafficMatrix::permutation(n, (*shift % n).max(1))
            }
            TrafficPattern::Hotspot {
                pairs,
                fraction,
                offset,
            } => TrafficMatrix::hotspot(n, (*pairs).clamp(1, n), *fraction, *offset),
            TrafficPattern::Incast { senders, target } => {
                TrafficMatrix::incast(n, (*senders).clamp(1, n - 1), *target % n)
            }
            TrafficPattern::Zipf { exponent } => TrafficMatrix::zipf(n, *exponent, rng),
            TrafficPattern::MultiRing { shifts } => {
                let mut w = vec![0.0; n * n];
                for &k in shifts {
                    let k = (k % n).max(1);
                    for s in 0..n {
                        w[s * n + (s + k) % n] = 1.0;
                    }
                }
                TrafficMatrix::from_weights(n, w).expect("ring union is valid")
            }
            TrafficPattern::ShuffleStages { .. } => TrafficMatrix::permutation(n, 1),
            TrafficPattern::ChurnHotspot {
                pairs, fraction, ..
            } => TrafficMatrix::hotspot(n, (*pairs).clamp(1, n), *fraction, 0),
        }
    }

    /// The mid-run rotation this pattern drives, if any.
    pub fn cycle(&self, n: usize) -> Option<(SimDuration, Vec<TrafficMatrix>)> {
        match self {
            TrafficPattern::ShuffleStages { period } => {
                let stages = TrafficMatrix::shuffle_stages(n);
                (stages.len() > 1).then_some((*period, stages))
            }
            TrafficPattern::ChurnHotspot {
                pairs,
                fraction,
                period,
                steps,
            } => {
                let p = (*pairs).clamp(1, n);
                // Offsets spread evenly over the whole port space (e.g.
                // n=16, steps=8 → 0,2,4,…,14): each rotation is a jump,
                // not a one-port slide, so slow estimators cannot coast.
                let steps = (*steps).max(1);
                let stride = (n / steps).max(1);
                let cycle: Vec<TrafficMatrix> = (0..steps)
                    .map(|k| TrafficMatrix::hotspot(n, p, *fraction, (k * stride) % n))
                    .collect();
                Some((*period, cycle))
            }
            _ => None,
        }
    }

    /// Short label for tables and result rows.
    pub fn label(&self) -> String {
        match self {
            TrafficPattern::Uniform => "uniform".into(),
            TrafficPattern::Permutation { shift } => format!("perm{shift}"),
            TrafficPattern::Hotspot {
                pairs, fraction, ..
            } => format!("hotspot{pairs}x{fraction:.2}"),
            TrafficPattern::Incast { senders, .. } => format!("incast{senders}"),
            TrafficPattern::Zipf { exponent } => format!("zipf{exponent:.2}"),
            TrafficPattern::MultiRing { shifts } => format!("rings{}", shifts.len()),
            TrafficPattern::ShuffleStages { .. } => "shuffle".into(),
            TrafficPattern::ChurnHotspot { .. } => "churn".into(),
        }
    }
}

/// The pluggable scheduling algorithm, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerKind {
    /// No circuits: pure packet switch baseline.
    EpsOnly,
    /// Demand-oblivious static rotation.
    Tdma,
    /// Round-robin matching.
    Rrm {
        /// Request–grant–accept iterations.
        iterations: u32,
    },
    /// Parallel iterative matching (randomized).
    Pim {
        /// Request–grant–accept iterations.
        iterations: u32,
        /// Seed of the arbiter's private RNG.
        seed: u64,
    },
    /// iSLIP.
    Islip {
        /// Request–grant–accept iterations.
        iterations: u32,
    },
    /// Iterative longest-queue-first.
    Ilqf {
        /// Iterations.
        iterations: u32,
    },
    /// Wavefront arbiter.
    Wavefront,
    /// Greedy longest-queue-first maximal matching.
    GreedyLqf,
    /// Hungarian exact max-weight assignment.
    Hungarian,
    /// Birkhoff–von-Neumann decomposition.
    Bvn {
        /// Max permutations per epoch.
        perms: u32,
    },
    /// Solstice-style greedy decomposition.
    Solstice {
        /// Max permutations per epoch.
        perms: u32,
    },
    /// c-Through-style day/night hotspot offload.
    Hotspot {
        /// Demand threshold for circuit setup (bytes).
        threshold_bytes: u64,
    },
}

impl SchedulerKind {
    /// Instantiates the scheduler for an `n`-port fabric.
    pub fn build(&self, n: usize) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::EpsOnly => Box::new(EpsOnlyScheduler::new()),
            SchedulerKind::Tdma => Box::new(TdmaScheduler::new(n)),
            SchedulerKind::Rrm { iterations } => Box::new(RrmScheduler::new(n, *iterations)),
            SchedulerKind::Pim { iterations, seed } => {
                Box::new(PimScheduler::new(n, *iterations, SimRng::new(*seed)))
            }
            SchedulerKind::Islip { iterations } => Box::new(IslipScheduler::new(n, *iterations)),
            SchedulerKind::Ilqf { iterations } => Box::new(IlqfScheduler::new(n, *iterations)),
            SchedulerKind::Wavefront => Box::new(WavefrontScheduler::new(n)),
            SchedulerKind::GreedyLqf => Box::new(GreedyLqfScheduler::new()),
            SchedulerKind::Hungarian => Box::new(HungarianScheduler::new()),
            SchedulerKind::Bvn { perms } => Box::new(BvnScheduler::new(*perms)),
            SchedulerKind::Solstice { perms } => Box::new(SolsticeScheduler::new(*perms)),
            SchedulerKind::Hotspot { threshold_bytes } => {
                Box::new(HotspotScheduler::new(*threshold_bytes))
            }
        }
    }

    /// Short label for tables and result rows.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::EpsOnly => "eps_only",
            SchedulerKind::Tdma => "tdma",
            SchedulerKind::Rrm { .. } => "rrm",
            SchedulerKind::Pim { .. } => "pim",
            SchedulerKind::Islip { .. } => "islip",
            SchedulerKind::Ilqf { .. } => "ilqf",
            SchedulerKind::Wavefront => "wavefront",
            SchedulerKind::GreedyLqf => "greedy_lqf",
            SchedulerKind::Hungarian => "hungarian",
            SchedulerKind::Bvn { .. } => "bvn",
            SchedulerKind::Solstice { .. } => "solstice",
            SchedulerKind::Hotspot { .. } => "hotspot",
        }
    }

    /// Fully-parameterized label (`islip_i3`, `bvn_p4`, `hotspot_t50000`,
    /// …): distinguishes variants of one algorithm in grid point names
    /// and machine-readable result rows.
    pub fn tag(&self) -> String {
        match self {
            SchedulerKind::Rrm { iterations } => format!("rrm_i{iterations}"),
            SchedulerKind::Pim { iterations, seed } => format!("pim_i{iterations}_s{seed}"),
            SchedulerKind::Islip { iterations } => format!("islip_i{iterations}"),
            SchedulerKind::Ilqf { iterations } => format!("ilqf_i{iterations}"),
            SchedulerKind::Bvn { perms } => format!("bvn_p{perms}"),
            SchedulerKind::Solstice { perms } => format!("solstice_p{perms}"),
            SchedulerKind::Hotspot { threshold_bytes } => format!("hotspot_t{threshold_bytes}"),
            _ => self.label().to_string(),
        }
    }

    /// Looks a kind up by its [`label`](Self::label), with conventional
    /// parameter defaults — the CLI entry point of the `sweep` binary.
    pub fn from_name(name: &str) -> Option<SchedulerKind> {
        Some(match name {
            "eps_only" => SchedulerKind::EpsOnly,
            "tdma" => SchedulerKind::Tdma,
            "rrm" => SchedulerKind::Rrm { iterations: 3 },
            "pim" => SchedulerKind::Pim {
                iterations: 3,
                seed: 1234,
            },
            "islip" => SchedulerKind::Islip { iterations: 3 },
            "ilqf" => SchedulerKind::Ilqf { iterations: 3 },
            "wavefront" => SchedulerKind::Wavefront,
            "greedy_lqf" => SchedulerKind::GreedyLqf,
            "hungarian" => SchedulerKind::Hungarian,
            "bvn" => SchedulerKind::Bvn { perms: 4 },
            "solstice" => SchedulerKind::Solstice { perms: 4 },
            "hotspot" => SchedulerKind::Hotspot {
                threshold_bytes: 50_000,
            },
            _ => return None,
        })
    }

    /// The full face-off roster used by the algorithm studies.
    pub fn roster() -> Vec<SchedulerKind> {
        [
            "eps_only",
            "tdma",
            "rrm",
            "pim",
            "islip",
            "wavefront",
            "greedy_lqf",
            "hungarian",
            "bvn",
            "solstice",
        ]
        .iter()
        .map(|n| Self::from_name(n).expect("roster names are valid"))
        .collect()
    }
}

/// The demand-estimation stage, as data.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorKind {
    /// Perfect occupancy mirror (the hardware advantage).
    Mirror,
    /// Exponentially-weighted moving average.
    Ewma {
        /// Smoothing factor in (0, 1]; higher tracks faster.
        alpha: f64,
    },
    /// Sliding-window sum of recent requests.
    Window {
        /// Window length.
        window: SimDuration,
    },
    /// Count-min sketch with periodic decay.
    CountMin {
        /// Hash rows.
        depth: usize,
        /// Counters per row.
        width: usize,
        /// Decay period.
        decay: SimDuration,
    },
}

impl EstimatorKind {
    /// Instantiates the estimator for an `n`-port fabric.
    pub fn build(&self, n: usize) -> Box<dyn DemandEstimator> {
        match self {
            EstimatorKind::Mirror => Box::new(MirrorEstimator::new(n)),
            EstimatorKind::Ewma { alpha } => Box::new(EwmaEstimator::new(n, *alpha)),
            EstimatorKind::Window { window } => Box::new(WindowEstimator::new(n, *window)),
            EstimatorKind::CountMin {
                depth,
                width,
                decay,
            } => Box::new(CountMinEstimator::new(n, *depth, *width, *decay)),
        }
    }

    /// Short label for tables and result rows (parameterized, so
    /// variants of one estimator stay distinguishable).
    pub fn label(&self) -> String {
        match self {
            EstimatorKind::Mirror => "mirror".into(),
            EstimatorKind::Ewma { alpha } => format!("ewma{alpha:.2}"),
            EstimatorKind::Window { window } => format!("window{window}"),
            EstimatorKind::CountMin { depth, width, .. } => format!("countmin{depth}x{width}"),
        }
    }
}

/// Software scheduler timing model selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwModelKind {
    /// Kernel-driver control path.
    KernelDriver,
    /// Tuned userspace path.
    TunedUserspace,
    /// Naive socket path.
    NaiveSocket,
}

impl SwModelKind {
    fn build(self) -> SwSchedulerModel {
        match self {
            SwModelKind::KernelDriver => SwSchedulerModel::kernel_driver(),
            SwModelKind::TunedUserspace => SwSchedulerModel::tuned_userspace(),
            SwModelKind::NaiveSocket => SwSchedulerModel::naive_socket(),
        }
    }
}

/// Host↔switch clock-sync quality selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncSpec {
    /// Zero offset, zero drift.
    Perfect,
    /// PTP-grade (~µs) sync.
    Ptp,
    /// NTP-grade (~ms) sync.
    Ntp,
    /// Explicit skew bound with no drift (the E8 sweep axis).
    SkewBound(SimDuration),
}

impl SyncSpec {
    fn build(self) -> SyncModel {
        match self {
            SyncSpec::Perfect => SyncModel::perfect(),
            SyncSpec::Ptp => SyncModel::ptp(),
            SyncSpec::Ntp => SyncModel::ntp(),
            SyncSpec::SkewBound(skew) => SyncModel {
                skew_bound: skew,
                drift_ppb: 0,
                resync_interval: SimDuration::from_secs(1),
            },
        }
    }

    /// Short label for tables and result rows.
    pub fn label(&self) -> String {
        match self {
            SyncSpec::Perfect => "perfect".into(),
            SyncSpec::Ptp => "ptp".into(),
            SyncSpec::Ntp => "ntp".into(),
            SyncSpec::SkewBound(s) => format!("skew{s}"),
        }
    }
}

/// Where the scheduler runs — the paper's axis — as data.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementKind {
    /// On-switch hardware scheduler (NetFPGA-SUME cost model; the
    /// algorithm's cycle cost follows the scheduler kind).
    Hardware,
    /// Hardware placement with an exactly-fixed decision latency (the E3
    /// sweep axis: isolates latency from everything else).
    HardwareFixedLatency {
        /// Decision latency applied to every epoch.
        latency: SimDuration,
    },
    /// Off-switch software scheduler with a control channel and skewed
    /// host clocks.
    Software {
        /// Decision-latency model.
        model: SwModelKind,
        /// Clock-sync quality.
        sync: SyncSpec,
    },
}

impl PlacementKind {
    /// Short label for tables and result rows.
    pub fn label(&self) -> String {
        match self {
            PlacementKind::Hardware => "hw".into(),
            PlacementKind::HardwareFixedLatency { latency } => format!("hw@{latency}"),
            PlacementKind::Software { sync, .. } => format!("sw/{}", sync.label()),
        }
    }
}

/// Interactive application mix layered over the background flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppMix {
    /// No interactive apps.
    None,
    /// `legs` VOIP call legs with the given packet interval.
    Voip {
        /// Number of call legs.
        legs: usize,
        /// Packet interval (20 ms is G.711; experiments accelerate it).
        interval: SimDuration,
    },
    /// `legs` gaming update streams.
    Gaming {
        /// Number of streams.
        legs: usize,
    },
}

impl AppMix {
    fn build(&self, n: usize) -> Vec<CbrApp> {
        let cross = (n / 2).max(1);
        let place = |i: usize| {
            let src = i % n;
            let dst = (src + cross) % n;
            (PortNo::from(src), PortNo::from(dst))
        };
        match self {
            AppMix::None => Vec::new(),
            AppMix::Voip { legs, interval } => (0..*legs)
                .map(|i| {
                    let (src, dst) = place(i);
                    let mut a =
                        CbrApp::voip(i as u64, src, dst, SimTime::from_micros(50 * i as u64));
                    a.interval = *interval;
                    a
                })
                .collect(),
            AppMix::Gaming { legs } => (0..*legs)
                .map(|i| {
                    let (src, dst) = place(i);
                    CbrApp::gaming(i as u64, src, dst, SimTime::from_micros(50 * i as u64))
                })
                .collect(),
        }
    }

    /// Short label for tables and result rows.
    pub fn label(&self) -> String {
        match self {
            AppMix::None => "-".into(),
            AppMix::Voip { legs, .. } => format!("voip{legs}"),
            AppMix::Gaming { legs } => format!("game{legs}"),
        }
    }
}

/// The runtime inputs a spec materializes into: configuration, workload,
/// scheduler, estimator — exactly what [`xds_core::runtime::SimBuilder`]
/// consumes (the spec's instrumentation profile rides separately).
pub type BuiltScenario = (
    NodeConfig,
    Workload,
    Box<dyn Scheduler>,
    Box<dyn DemandEstimator>,
);

/// One fully-described experiment point.
///
/// Construct with [`ScenarioSpec::new`] and the `with_*` builders; run
/// directly via [`ScenarioSpec::run`] or in bulk via
/// [`crate::SweepExecutor`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Point name (used in tables and result rows).
    pub name: String,
    /// Switch port count (= host count).
    pub n_ports: usize,
    /// Who talks to whom.
    pub pattern: TrafficPattern,
    /// Flow-size distribution of the background flows.
    pub sizes: FlowSizeDist,
    /// Offered load as a fraction of aggregate line rate.
    pub load: f64,
    /// Divide the offered load by the pattern's imbalance so `load` means
    /// "utilization of the busiest port" (keeps sweeps admissible).
    pub normalize_load: bool,
    /// EPS/OCS flow-size boundary override (bytes).
    pub bulk_threshold: Option<u64>,
    /// Interactive apps layered over the flows.
    pub apps: AppMix,
    /// The scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// The demand-estimation stage.
    pub estimator: EstimatorKind,
    /// Where the scheduler runs.
    pub placement: PlacementKind,
    /// OCS reconfiguration (switching) time.
    pub reconfig: SimDuration,
    /// Scheduler epoch override (`None` = the placement's default).
    pub epoch: Option<SimDuration>,
    /// Max OCS configurations per epoch override.
    pub max_entries: Option<usize>,
    /// Guard band per grant-window edge (slow scheduling).
    pub guard: SimDuration,
    /// Route interactive traffic through the OCS (ablation).
    pub voip_on_ocs: bool,
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Master seed: the root of every RNG stream this point uses.
    pub seed: u64,
    /// Port-group shard count for the parallel simulation core (1 = the
    /// classic single-queue core; `k > 1` reproduces it exactly — see
    /// the shard module's determinism contract).
    pub shards: usize,
    /// Instrumentation profile: `full` (default, classic report),
    /// `lean` (bench runs — identical events/bytes, no observation
    /// cost) or `timeseries` (full + per-epoch telemetry).
    pub profile: InstrProfile,
    /// Flight-recorder tracing: when `true` the run captures wall-clock
    /// spans (epoch phases, scheduler internals, grant bursts) and the
    /// report carries their Chrome Trace Event JSON. Off by default;
    /// never changes simulated behavior or the deterministic counters.
    pub trace: bool,
    /// Deterministic fault plan: link failures, OCS misfires, scheduler
    /// stalls. `None` (the default) leaves every RNG stream and golden
    /// artifact byte-identical to a fault-free build.
    pub faults: Option<FaultPlan>,
    /// Fidelity tier this point is evaluated at. `Exact` (the default)
    /// is the event-driven simulator; `Estimate` solves the point with
    /// the decomposed `xds-estimate` models instead — same seed
    /// derivation, same report columns, a fraction of the cost.
    pub fidelity: Fidelity,
}

impl ScenarioSpec {
    /// A sane default point: 8 ports, uniform bulk flows at 0.5 load,
    /// hardware iSLIP×3, occupancy-mirror estimation, 1 µs switching,
    /// 5 ms horizon, seed 1.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            n_ports: 8,
            pattern: TrafficPattern::Uniform,
            sizes: FlowSizeDist::Fixed(150_000),
            load: 0.5,
            normalize_load: true,
            bulk_threshold: None,
            apps: AppMix::None,
            scheduler: SchedulerKind::Islip { iterations: 3 },
            estimator: EstimatorKind::Mirror,
            placement: PlacementKind::Hardware,
            reconfig: SimDuration::from_micros(1),
            epoch: None,
            max_entries: None,
            guard: SimDuration::ZERO,
            voip_on_ocs: false,
            duration: SimDuration::from_millis(5),
            seed: 1,
            shards: 1,
            profile: InstrProfile::Full,
            trace: false,
            faults: None,
            fidelity: Fidelity::Exact,
        }
    }

    /// Sets the port count.
    pub fn with_ports(mut self, n: usize) -> Self {
        self.n_ports = n;
        self
    }

    /// Sets the traffic pattern.
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the flow-size distribution.
    pub fn with_sizes(mut self, sizes: FlowSizeDist) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sets the offered load.
    pub fn with_load(mut self, load: f64) -> Self {
        self.load = load;
        self
    }

    /// Sets whether `load` is divided by the pattern's imbalance
    /// (default `true`: "load" means busiest-port utilization). Disable
    /// to feed the generator the raw aggregate fraction, e.g. to
    /// deliberately saturate a hotspot.
    pub fn with_load_normalization(mut self, normalize: bool) -> Self {
        self.normalize_load = normalize;
        self
    }

    /// Sets the EPS/OCS bulk threshold.
    pub fn with_bulk_threshold(mut self, bytes: u64) -> Self {
        self.bulk_threshold = Some(bytes);
        self
    }

    /// Sets the interactive app mix.
    pub fn with_apps(mut self, apps: AppMix) -> Self {
        self.apps = apps;
        self
    }

    /// Sets the scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the demand estimator.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the scheduler placement.
    pub fn with_placement(mut self, placement: PlacementKind) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the OCS reconfiguration time.
    pub fn with_reconfig(mut self, reconfig: SimDuration) -> Self {
        self.reconfig = reconfig;
        self
    }

    /// Overrides the scheduler epoch.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Overrides the per-epoch configuration budget.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = Some(max_entries);
        self
    }

    /// Sets the guard band.
    pub fn with_guard(mut self, guard: SimDuration) -> Self {
        self.guard = guard;
        self
    }

    /// Gates interactive traffic behind OCS grants (ablation).
    pub fn with_voip_on_ocs(mut self, on: bool) -> Self {
        self.voip_on_ocs = on;
        self
    }

    /// Sets the simulated horizon.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shard count of the parallel simulation core (floored at
    /// 1). Sharding never changes results — events, delivered bytes and
    /// behavioral counters are invariant in `k` — only how the run
    /// executes.
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Sets the instrumentation profile. The profile never changes
    /// simulated behavior — event counts and delivered bytes are
    /// identical across profiles — only what gets observed.
    pub fn with_profile(mut self, profile: InstrProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Enables the flight recorder for this point (see
    /// [`trace`](Self::trace)).
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Arms a deterministic fault plan (see [`faults`](Self::faults)).
    /// An inactive plan ([`FaultPlan::none`]) is treated as unset.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the fidelity tier (see [`fidelity`](Self::fidelity)).
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Renames the point (grids use this to tag axis values).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    fn node_config(&self, cfg_seed: u64) -> NodeConfig {
        let n = self.n_ports;
        let mut cfg = match &self.placement {
            PlacementKind::Hardware => NodeConfig::fast(
                n,
                self.reconfig,
                HwSchedulerModel::netfpga_sume(self.scheduler.build(n).hw_algo()),
            ),
            PlacementKind::HardwareFixedLatency { latency } => {
                let mut cfg = NodeConfig::fast(
                    n,
                    self.reconfig,
                    HwSchedulerModel::netfpga_sume(HwAlgo::Tdma),
                );
                // 1 GHz clock: one demand cycle per nanosecond of latency,
                // the algorithm itself costed at zero.
                cfg.placement = Placement::Hardware(HwSchedulerModel {
                    clock: ClockDomain::from_mhz(1000),
                    demand_cycles: latency.as_nanos().max(1),
                    algo: HwAlgo::Tdma,
                    grant_cycles: 0,
                });
                cfg
            }
            PlacementKind::Software { model, sync } => {
                let mut cfg = NodeConfig::slow(n, self.reconfig, model.build());
                if let Placement::Software { sync: s, .. } = &mut cfg.placement {
                    *s = sync.build();
                }
                cfg
            }
        };
        if let Some(e) = self.epoch {
            cfg.epoch = e;
        }
        if let Some(m) = self.max_entries {
            cfg.max_entries = m;
        }
        cfg.guard = self.guard;
        cfg.voip_on_ocs = self.voip_on_ocs;
        cfg.seed = cfg_seed;
        cfg
    }

    /// Materializes the runtime inputs. Every RNG stream (runtime, matrix
    /// shuffling, workload arrivals) forks deterministically off
    /// [`seed`](Self::seed), so a spec is exactly reproducible.
    pub fn build(&self) -> Result<BuiltScenario, String> {
        if self.n_ports < 2 {
            return Err(format!("scenario {}: need at least 2 ports", self.name));
        }
        if self.load <= 0.0 || !self.load.is_finite() {
            return Err(format!("scenario {}: load must be positive", self.name));
        }
        let mut root = SimRng::new(self.seed);
        let cfg_seed = root.next_u64();
        let mut matrix_rng = root.fork();
        let workload_rng = root.fork();

        let cfg = self.node_config(cfg_seed);
        cfg.validate()
            .map_err(|e| format!("scenario {}: {e}", self.name))?;

        let matrix = self.pattern.matrix(self.n_ports, &mut matrix_rng);
        let eff_load = if self.normalize_load {
            self.load / matrix.imbalance()
        } else {
            self.load
        };
        let mut gen = FlowGenerator::with_load(
            matrix,
            self.sizes.clone(),
            eff_load,
            cfg.line_rate,
            workload_rng,
        );
        if let Some(t) = self.bulk_threshold {
            gen = gen.with_bulk_threshold(t);
        }
        let mut workload = Workload::flows(gen).with_apps(self.apps.build(self.n_ports));
        if let Some((period, cycle)) = self.pattern.cycle(self.n_ports) {
            workload = workload.with_matrix_cycle(period, cycle);
        }
        let scheduler = self.scheduler.build(self.n_ports);
        let estimator = self.estimator.build(self.n_ports);
        Ok((cfg, workload, scheduler, estimator))
    }

    /// Runs the point to completion and returns its report: the exact
    /// event-driven simulation, or — when
    /// [`fidelity`](Self::fidelity) is [`Fidelity::Estimate`] — the
    /// decomposed fast estimate, observed at the spec's instrumentation
    /// [`profile`](Self::profile) either way.
    pub fn run(&self) -> Result<RunReport, String> {
        match self.fidelity {
            Fidelity::Exact => self.run_exact(),
            Fidelity::Estimate => self.run_estimate(),
        }
    }

    fn run_exact(&self) -> Result<RunReport, String> {
        let (cfg, workload, scheduler, estimator) = self.build()?;
        let sim = SimBuilder::new(cfg)
            .workload(workload)
            .scheduler(scheduler)
            .estimator(estimator)
            .instrumentation(self.profile.instrumentation())
            .trace(self.trace)
            .faults(self.faults.clone())
            .shards(self.shards)
            .build()
            .map_err(|e| format!("scenario {}: {e}", self.name))?;
        Ok(sim.run(SimTime::ZERO + self.duration))
    }

    /// Translates the spec for the estimate tier and solves it. The
    /// prologue deliberately mirrors [`build`](Self::build) — same
    /// validation, same root-RNG derivation order, same matrix draw and
    /// load normalization — so both tiers describe the *same* point and
    /// differ only in how they evaluate it.
    fn run_estimate(&self) -> Result<RunReport, String> {
        if self.n_ports < 2 {
            return Err(format!("scenario {}: need at least 2 ports", self.name));
        }
        if self.load <= 0.0 || !self.load.is_finite() {
            return Err(format!("scenario {}: load must be positive", self.name));
        }
        let mut root = SimRng::new(self.seed);
        let cfg_seed = root.next_u64();
        let mut matrix_rng = root.fork();
        let _workload_rng = root.fork();

        let cfg = self.node_config(cfg_seed);
        cfg.validate()
            .map_err(|e| format!("scenario {}: {e}", self.name))?;

        let matrix = self.pattern.matrix(self.n_ports, &mut matrix_rng);
        let eff_load = if self.normalize_load {
            self.load / matrix.imbalance()
        } else {
            self.load
        };
        // Lean instrumentation means "don't observe": the estimate tier
        // mirrors that by leaving observation-derived columns absent.
        let measured = self.profile != InstrProfile::Lean;
        let problem = EstimateProblem {
            cycle: self.pattern.cycle(self.n_ports),
            cfg,
            matrix,
            sizes: self.sizes.clone(),
            load: eff_load,
            bulk_threshold: self
                .bulk_threshold
                .unwrap_or(FlowGenerator::DEFAULT_BULK_THRESHOLD),
            apps: self.apps.build(self.n_ports),
            duration: self.duration,
            seed: self.seed,
            faults: self.faults.clone().filter(FaultPlan::is_active),
            scheduler_name: self.scheduler.label().to_string(),
            entries_per_epoch: match &self.scheduler {
                SchedulerKind::EpsOnly => 0,
                SchedulerKind::Bvn { perms } | SchedulerKind::Solstice { perms } => {
                    (*perms).max(1) as u64
                }
                _ => 1,
            },
            eps_only: self.scheduler == SchedulerKind::EpsOnly,
            oblivious: self.scheduler == SchedulerKind::Tdma,
            measured_deliveries: measured,
            measured_buffers: measured,
        };
        Ok(xds_estimate::estimate(&problem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds_and_runs() {
        let spec = ScenarioSpec::new("t")
            .with_ports(4)
            .with_duration(SimDuration::from_millis(1));
        let r = spec.run().expect("default spec runs");
        assert!(r.offered_bytes > 0);
        assert!(r.delivered_bytes() > 0);
    }

    #[test]
    fn same_seed_same_report_different_seed_differs() {
        let spec = ScenarioSpec::new("t")
            .with_ports(4)
            .with_duration(SimDuration::from_millis(2));
        let a = spec.clone().run().unwrap();
        let b = spec.clone().run().unwrap();
        assert_eq!(a.delivered_bytes(), b.delivered_bytes());
        assert_eq!(a.events, b.events);
        let c = spec.with_seed(99).run().unwrap();
        assert_ne!(a.events, c.events, "different seed, different run");
    }

    #[test]
    fn traced_spec_carries_a_chrome_trace_and_identical_counters() {
        let base = ScenarioSpec::new("t")
            .with_ports(4)
            .with_scheduler(SchedulerKind::Solstice { perms: 4 })
            .with_duration(SimDuration::from_millis(2));
        let plain = base.clone().run().unwrap();
        let traced = base.with_trace(true).run().unwrap();
        assert!(plain.chrome_trace.is_none());
        let json = traced.chrome_trace.as_ref().expect("recorder ran");
        xds_core::validate_chrome_trace(json).expect("valid Chrome trace");
        // The recorder observes; it must not perturb.
        assert_eq!(plain.events, traced.events);
        assert_eq!(plain.counters, traced.counters);
        assert!(traced.counters.sched_probes > 0, "solstice probes counted");
    }

    #[test]
    fn faulted_spec_degrades_deterministically_and_unset_plan_is_free() {
        let spec = ScenarioSpec::new("f")
            .with_ports(8)
            .with_faults(FaultPlan::storm())
            .with_duration(SimDuration::from_millis(2));
        let a = spec.clone().run().unwrap();
        let b = spec.clone().run().unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.counters, b.counters);
        assert!(a.counters.fault_events_injected > 0, "storm must inject");
        assert!(a.fault_degraded_ns > 0, "link flaps must open intervals");
        // An explicitly-inactive plan leaves the run byte-identical to a
        // fault-free build: no RNG fork, no masking, no new draws.
        let base = ScenarioSpec::new("f")
            .with_ports(8)
            .with_duration(SimDuration::from_millis(2));
        let plain = base.clone().run().unwrap();
        let off = base.with_faults(FaultPlan::none()).run().unwrap();
        assert_eq!(plain.events, off.events);
        assert_eq!(plain.counters, off.counters);
        assert_eq!(off.fault_degraded_ns, 0);
        assert_eq!(off.counters.fault_events_injected, 0);
    }

    #[test]
    fn software_placement_buffers_at_hosts() {
        let spec = ScenarioSpec::new("sw")
            .with_ports(4)
            .with_reconfig(SimDuration::from_micros(100))
            .with_placement(PlacementKind::Software {
                model: SwModelKind::TunedUserspace,
                sync: SyncSpec::Perfect,
            })
            .with_epoch(SimDuration::from_millis(1))
            .with_scheduler(SchedulerKind::Hotspot {
                threshold_bytes: 10_000,
            })
            .with_duration(SimDuration::from_millis(10));
        let r = spec.run().unwrap();
        assert!(r.peak_host_buffer > 0);
        assert_eq!(r.peak_switch_buffer, 0);
        assert!(r.delivered_ocs_bytes > 0, "grants must move bulk");
    }

    #[test]
    fn fixed_latency_placement_applies_exact_latency() {
        let spec = ScenarioSpec::new("lat")
            .with_ports(4)
            .with_placement(PlacementKind::HardwareFixedLatency {
                latency: SimDuration::from_micros(7),
            })
            .with_duration(SimDuration::from_millis(1));
        let r = spec.run().unwrap();
        // demand stage = 7000 cycles @ 1 GHz, plus the 1-cycle TDMA stage.
        assert!((r.decision_latency_mean_ns - 7_000.0).abs() <= 2.0);
    }

    #[test]
    fn invalid_specs_are_reported_not_panicked() {
        assert!(ScenarioSpec::new("bad").with_ports(1).run().is_err());
        assert!(ScenarioSpec::new("bad").with_load(0.0).run().is_err());
        let bad_epoch = ScenarioSpec::new("bad")
            .with_ports(4)
            .with_reconfig(SimDuration::from_micros(10))
            .with_epoch(SimDuration::from_micros(5));
        assert!(bad_epoch.run().is_err(), "epoch below reconfig must error");
    }

    #[test]
    fn churn_pattern_rotates_matrices() {
        let spec = ScenarioSpec::new("churn")
            .with_ports(8)
            .with_pattern(TrafficPattern::ChurnHotspot {
                pairs: 2,
                fraction: 0.8,
                period: SimDuration::from_micros(500),
                steps: 4,
            })
            .with_duration(SimDuration::from_millis(4));
        let (_, w, _, _) = spec.build().unwrap();
        let cycle = w.matrix_cycle.as_ref().expect("churn drives a cycle");
        // The rotation must jump across the whole port space (offsets
        // 0, 2, 4, … for n=8, steps=4), so consecutive matrices differ.
        assert_eq!(cycle.matrices.len(), 4);
        for pair in cycle.matrices.windows(2) {
            assert_ne!(pair[0], pair[1], "rotation must move the hotspot");
        }
        let r = spec.run().unwrap();
        assert!(r.ocs.reconfigurations > 0);
    }

    #[test]
    fn scheduler_tags_distinguish_parameter_variants() {
        let a = SchedulerKind::Islip { iterations: 1 };
        let b = SchedulerKind::Islip { iterations: 3 };
        assert_eq!(a.label(), b.label(), "same family label");
        assert_ne!(a.tag(), b.tag(), "tags must carry the parameters");
        let grid = crate::SweepGrid::new(ScenarioSpec::new("g")).schedulers(vec![a, b]);
        let names: Vec<String> = grid.specs().into_iter().map(|s| s.name).collect();
        assert_ne!(names[0], names[1], "point names must not collide");
    }

    #[test]
    fn load_normalization_can_be_disabled() {
        let base = ScenarioSpec::new("n")
            .with_ports(8)
            .with_pattern(TrafficPattern::Incast {
                senders: 7,
                target: 0,
            })
            .with_load(0.5)
            .with_duration(SimDuration::from_millis(2));
        let normalized = base.clone().run().unwrap();
        let raw = base.with_load_normalization(false).run().unwrap();
        // Incast imbalance is n: raw load offers ~8x the normalized bytes.
        assert!(
            raw.offered_bytes > 4 * normalized.offered_bytes,
            "raw {} vs normalized {}",
            raw.offered_bytes,
            normalized.offered_bytes
        );
    }

    #[test]
    fn scheduler_roster_builds_for_any_port_count() {
        for kind in SchedulerKind::roster() {
            for n in [2usize, 4, 16] {
                let s = kind.build(n);
                assert!(!s.name().is_empty());
            }
            assert_eq!(
                SchedulerKind::from_name(kind.label()).as_ref(),
                Some(&kind),
                "label/from_name round-trip"
            );
        }
    }

    #[test]
    fn app_mix_endpoints_stay_in_range() {
        for n in [2usize, 3, 8] {
            let apps = AppMix::Voip {
                legs: 10,
                interval: SimDuration::from_millis(1),
            }
            .build(n);
            for a in apps {
                assert!(a.src.index() < n && a.dst.index() < n);
                assert_ne!(a.src, a.dst);
            }
        }
    }
}
