//! The named scenario catalogue: the demand patterns the hybrid-switching
//! literature evaluates on, each as a ready-to-run (and ready-to-sweep)
//! [`ScenarioSpec`].
//!
//! Names are stable CLI-grade identifiers (`sweep run hotspot`), and every
//! entry deliberately differs from the default spec in the dimension it is
//! named for, so sweeping the library is already a scenario-diversity
//! study. To add a scenario, add an arm to [`scenario`] and its name to
//! [`ALL`].

use xds_core::fault::FaultPlan;
use xds_sim::SimDuration;
use xds_traffic::FlowSizeDist;

use crate::spec::{AppMix, ScenarioSpec, SchedulerKind, TrafficPattern};

/// Every name [`scenario`] recognizes, in catalogue order.
pub const ALL: [&str; 17] = [
    "uniform",
    "permutation",
    "hotspot",
    "incast",
    "shuffle",
    "websearch",
    "datamining",
    "voip-mix",
    "skewed-zipf",
    "churn",
    "scale-stress",
    "scale-stress-256",
    "scale-stress-512",
    "scale-stress-1024",
    "scale-stress-2048",
    "fault-storm",
    "flaky-links",
];

/// Every name the library recognizes, in catalogue order.
pub fn all_names() -> Vec<&'static str> {
    ALL.to_vec()
}

/// Looks a named scenario up. Returns `None` for unknown names.
///
/// All entries default to 8 ports, a 5 ms horizon and seed 1; scale them
/// with the [`ScenarioSpec`] builders or a [`crate::SweepGrid`].
pub fn scenario(name: &str) -> Option<ScenarioSpec> {
    let spec =
        match name {
            // All-to-all uniform: the friendliest case for packet switching,
            // the baseline every study starts from.
            "uniform" => ScenarioSpec::new("uniform").with_pattern(TrafficPattern::Uniform),

            // One hot destination per source: the best case for circuit
            // switching — a single permutation serves everything.
            "permutation" => ScenarioSpec::new("permutation")
                .with_pattern(TrafficPattern::Permutation { shift: 3 }),

            // A few rack pairs carry most of the load over a uniform
            // background: the c-Through/Helios motivating case.
            "hotspot" => ScenarioSpec::new("hotspot").with_pattern(TrafficPattern::Hotspot {
                pairs: 2,
                fraction: 0.6,
                offset: 0,
            }),

            // Many sources converge on one destination: the worst case for
            // any scheduler (the destination port is the bottleneck).
            "incast" => ScenarioSpec::new("incast")
                .with_pattern(TrafficPattern::Incast {
                    senders: 6,
                    target: 0,
                })
                .with_load(0.3),

            // Map-reduce-style staged shuffle: each stage is circuit-friendly,
            // the *transitions* cost reconfigurations.
            "shuffle" => ScenarioSpec::new("shuffle").with_pattern(TrafficPattern::ShuffleStages {
                period: SimDuration::from_millis(1),
            }),

            // Web-search (DCTCP-shaped) heavy-tailed sizes over uniform
            // pairs: mice ride the EPS, elephants need circuits.
            "websearch" => ScenarioSpec::new("websearch")
                .with_sizes(FlowSizeDist::WebSearch)
                .with_load(0.4),

            // Data-mining (VL2-shaped) sizes: even heavier tail, most bytes
            // in the elephants.
            "datamining" => ScenarioSpec::new("datamining")
                .with_sizes(FlowSizeDist::DataMining)
                .with_load(0.4),

            // Interactive VOIP legs over a web-search background: the §2
            // latency/jitter scenario.
            "voip-mix" => ScenarioSpec::new("voip-mix")
                .with_sizes(FlowSizeDist::WebSearch)
                .with_load(0.3)
                .with_apps(AppMix::Voip {
                    legs: 4,
                    interval: SimDuration::from_micros(500),
                }),

            // Zipf-skewed pair popularity: a handful of pairs dominate, the
            // rest form a long tail.
            "skewed-zipf" => ScenarioSpec::new("skewed-zipf")
                .with_pattern(TrafficPattern::Zipf { exponent: 1.2 }),

            // Large-fabric stress: 128 ports (sweepable to 256) of multi-ring
            // demand that needs all four configuration slots of a Solstice
            // decomposition per epoch — the scale point the perf baseline
            // (`sweep bench`) tracks, sized to saturate the schedule-
            // execution hot path rather than any single pair.
            "scale-stress" => ScenarioSpec::new("scale-stress")
                .with_ports(128)
                .with_pattern(TrafficPattern::MultiRing {
                    shifts: vec![1, 9, 33, 57],
                })
                .with_scheduler(SchedulerKind::Solstice { perms: 4 })
                .with_load(0.6)
                .with_duration(SimDuration::from_millis(2)),

            // The same multi-ring stress at half-kilofabric scale,
            // derived from the base entry so the specs cannot drift:
            // 512 ports exercise the chunked VOQ pool, slab-id schedules
            // and ladder event queue at the sizes they were built for.
            // The horizon is short — per-epoch scheduling is O(n²)-ish —
            // and sweepable up when a study needs more.
            // The 256-port middle rung, derived like the larger sizes.
            // This is the flight-recorder reference point: small enough
            // that a traced run stays interactive, large enough that the
            // Solstice probe/HK/memo spans carry real work.
            "scale-stress-256" => scenario("scale-stress")
                .expect("base entry exists")
                .with_name("scale-stress-256")
                .with_ports(256)
                .with_duration(SimDuration::from_millis(1)),

            "scale-stress-512" => scenario("scale-stress")
                .expect("base entry exists")
                .with_name("scale-stress-512")
                .with_ports(512)
                .with_duration(SimDuration::from_millis(1)),

            // Kilofabric stress: 1024 ports — the largest configuration
            // the pooled data structures are sized for (a million VOQ
            // headers, slab schedules, no per-packet allocation). Like
            // the 2048 rung it defaults to one shard per source port,
            // the fastest single-CPU layout measured (~1.5x the classic
            // core); `--shards 1` recovers the classic single-queue run.
            "scale-stress-1024" => scenario("scale-stress")
                .expect("base entry exists")
                .with_name("scale-stress-1024")
                .with_ports(1024)
                .with_shards(1024)
                .with_duration(SimDuration::from_micros(500)),

            // Two-kilofabric stress: 2048 ports, practical only on the
            // sharded core — a dense per-fabric VOQ bank would be ~4M
            // pairs (~200 MB), so the entry defaults to one shard per
            // source port: each window drains one L2-resident VOQ row
            // instead of streaming the whole bank, the fastest single-CPU
            // configuration measured. Results are invariant in the shard
            // count; the default only picks the execution layout.
            "scale-stress-2048" => scenario("scale-stress")
                .expect("base entry exists")
                .with_name("scale-stress-2048")
                .with_ports(2048)
                .with_shards(2048)
                .with_duration(SimDuration::from_micros(250)),

            // The websearch mix under every fault family at once — link
            // flaps, OCS misfires, scheduler stalls. The degraded-mode
            // reference point: failover and drop counters must be nonzero
            // and the run must stay deterministic across cores.
            "fault-storm" => scenario("websearch")
                .expect("base entry exists")
                .with_name("fault-storm")
                .with_faults(FaultPlan::storm()),

            // Uniform traffic over links that fail and repair on a slow
            // cycle: isolates the link-failover path from misfire/stall
            // effects.
            "flaky-links" => scenario("uniform")
                .expect("base entry exists")
                .with_name("flaky-links")
                .with_faults(FaultPlan::flaky_links()),

            // Adversarial demand churn: the hotspot jumps every millisecond,
            // stressing demand estimation and reconfiguration agility.
            "churn" => ScenarioSpec::new("churn")
                .with_pattern(TrafficPattern::ChurnHotspot {
                    pairs: 2,
                    fraction: 0.8,
                    period: SimDuration::from_millis(1),
                    steps: 4,
                })
                .with_scheduler(SchedulerKind::GreedyLqf),

            _ => return None,
        };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_at_least_eight_entries_all_resolvable() {
        assert!(ALL.len() >= 8);
        for name in ALL {
            let spec = scenario(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(spec.name, name);
        }
        assert!(scenario("no-such-scenario").is_none());
    }

    #[test]
    fn entries_are_pairwise_distinct() {
        let specs: Vec<ScenarioSpec> = ALL.iter().map(|n| scenario(n).unwrap()).collect();
        for i in 0..specs.len() {
            for j in i + 1..specs.len() {
                assert_ne!(specs[i], specs[j], "{} duplicates {}", ALL[i], ALL[j]);
            }
        }
    }

    #[test]
    fn every_entry_builds() {
        for name in ALL {
            let spec = scenario(name).unwrap();
            spec.build()
                .unwrap_or_else(|e| panic!("{name} failed to build: {e}"));
        }
    }
}
