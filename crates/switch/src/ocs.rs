//! Optical circuit switch model.
//!
//! The model captures the two properties every claim in the paper rests on:
//!
//! 1. **Circuit semantics** — while a configuration is active, input *i*
//!    reaches exactly the output the permutation maps it to (at full line
//!    rate, no buffering inside the switch);
//! 2. **Reconfiguration darkness** — between configurations, for a
//!    technology-dependent switching time (nanoseconds for PLZT switches
//!    [paper ref 1], milliseconds for 3D-MEMS), **no packet can pass** and
//!    in-flight traffic must be buffered upstream or dropped.
//!
//! Misrouting (sending on an unconfigured circuit, or during darkness) is a
//! hard error: on the real device that light would land on the wrong port.
//! Detecting it here is what lets integration tests prove the framework's
//! synchronization is correct.

use xds_sim::{SimDuration, SimTime};

use crate::perm::Permutation;

/// Errors from illegal transmissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcsError {
    /// Transmission attempted while the switch is reconfiguring.
    Dark {
        /// When the switch becomes usable again.
        until: SimTime,
    },
    /// Input is not connected to the requested output in the active
    /// configuration.
    NotConnected {
        /// The offending input port.
        input: usize,
        /// The requested output port.
        output: usize,
    },
}

impl core::fmt::Display for OcsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OcsError::Dark { until } => write!(f, "switch dark until {until}"),
            OcsError::NotConnected { input, output } => {
                write!(f, "no circuit {input} -> {output}")
            }
        }
    }
}

impl std::error::Error for OcsError {}

/// Lifetime statistics of the OCS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OcsStats {
    /// Completed reconfigurations.
    pub reconfigurations: u64,
    /// Total time spent dark.
    pub dark_time: SimDuration,
    /// Bytes carried on circuits.
    pub delivered_bytes: u64,
    /// Packets carried on circuits.
    pub delivered_packets: u64,
    /// Rejected transmissions (dark or misrouted) — should be zero in a
    /// correctly synchronized system.
    pub rejected: u64,
}

/// The optical circuit switch.
///
/// State is kept flat — the active configuration, the pending one, and an
/// optional dark deadline — so that reconfiguring **reuses** the two
/// permutation buffers instead of allocating: [`Ocs::configure`] borrows
/// the caller's permutation and copies it into the pending buffer, and
/// activation is a pointer swap. The OCS reconfigures once per schedule
/// entry per epoch; on large fabrics this path must not touch the
/// allocator.
#[derive(Debug, Clone)]
pub struct Ocs {
    n: usize,
    reconfig: SimDuration,
    /// The live configuration (meaningful while not dark).
    active: Permutation,
    /// The configuration being applied (meaningful while dark).
    next: Permutation,
    /// End of the current dark window, if reconfiguring.
    dark_until: Option<SimTime>,
    stats: OcsStats,
    /// Skip the dark window when the new configuration equals the current
    /// one (some devices can hold; default false — conservative).
    skip_identical: bool,
}

impl Ocs {
    /// Creates a switch with `n` ports and the given reconfiguration
    /// (switching) time, starting with no circuits configured.
    pub fn new(n: usize, reconfig: SimDuration) -> Self {
        assert!(n > 0, "OCS needs at least one port");
        Ocs {
            n,
            reconfig,
            active: Permutation::empty(n),
            next: Permutation::empty(n),
            dark_until: None,
            stats: OcsStats::default(),
            skip_identical: false,
        }
    }

    /// Enables skipping the dark window for identical reconfigurations.
    pub fn with_skip_identical(mut self, yes: bool) -> Self {
        self.skip_identical = yes;
        self
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configured switching (reconfiguration) time.
    pub fn reconfig_time(&self) -> SimDuration {
        self.reconfig
    }

    /// Begins applying a new configuration at `now`; returns the instant
    /// the circuits become usable. The switch is dark in between. The
    /// permutation is copied into the switch's pending buffer — no
    /// allocation when the port count is unchanged (always, in practice).
    ///
    /// # Panics
    /// Panics if the permutation's port count differs from the switch's.
    pub fn configure(&mut self, perm: &Permutation, now: SimTime) -> SimTime {
        assert_eq!(perm.n(), self.n, "configuration port count mismatch");
        if self.skip_identical && self.dark_until.is_none() && self.active == *perm {
            return now;
        }
        let until = now + self.reconfig;
        self.stats.reconfigurations += 1;
        self.stats.dark_time += self.reconfig;
        self.next.copy_from(perm);
        self.dark_until = Some(until);
        until
    }

    /// Advances internal state to `now` (dark → active transitions).
    /// Callers that poll (rather than schedule an event at the activation
    /// instant) use this.
    pub fn tick(&mut self, now: SimTime) {
        if let Some(until) = self.dark_until {
            if now >= until {
                core::mem::swap(&mut self.active, &mut self.next);
                self.dark_until = None;
            }
        }
    }

    /// Whether the switch is dark (reconfiguring) at `now`.
    pub fn is_dark(&self, now: SimTime) -> bool {
        matches!(self.dark_until, Some(until) if now < until)
    }

    /// The output circuit-connected to `input` at `now`, if any.
    pub fn output_for(&mut self, input: usize, now: SimTime) -> Option<usize> {
        self.tick(now);
        if self.dark_until.is_some() {
            None
        } else {
            self.active.output_of(input)
        }
    }

    /// The currently active permutation (after advancing to `now`).
    pub fn active_permutation(&mut self, now: SimTime) -> Option<&Permutation> {
        self.tick(now);
        if self.dark_until.is_some() {
            None
        } else {
            Some(&self.active)
        }
    }

    /// Validates and accounts a transmission of `bytes` from `input` to
    /// `output` starting at `now`.
    pub fn transmit(
        &mut self,
        input: usize,
        output: usize,
        bytes: u64,
        now: SimTime,
    ) -> Result<(), OcsError> {
        self.transmit_batch(input, output, bytes, 1, now)
    }

    /// [`transmit`](Self::transmit) for a burst of `packets` packets
    /// totalling `bytes`, all starting on the same circuit at `now` —
    /// grant execution moves whole VOQ bursts per slot, and validating
    /// the circuit once per burst instead of once per packet keeps that
    /// hot path off the permutation lookup. Accounting is identical to
    /// `packets` individual calls (including `rejected` on failure).
    pub fn transmit_batch(
        &mut self,
        input: usize,
        output: usize,
        bytes: u64,
        packets: u64,
        now: SimTime,
    ) -> Result<(), OcsError> {
        self.tick(now);
        if let Some(until) = self.dark_until {
            self.stats.rejected += packets;
            return Err(OcsError::Dark { until });
        }
        if self.active.output_of(input) == Some(output) {
            self.stats.delivered_bytes += bytes;
            self.stats.delivered_packets += packets;
            Ok(())
        } else {
            self.stats.rejected += packets;
            Err(OcsError::NotConnected { input, output })
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> OcsStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn starts_with_no_circuits() {
        let mut ocs = Ocs::new(4, SimDuration::from_nanos(100));
        assert!(!ocs.is_dark(t(0)));
        assert_eq!(ocs.output_for(0, t(0)), None);
        assert_eq!(
            ocs.transmit(0, 1, 100, t(0)),
            Err(OcsError::NotConnected {
                input: 0,
                output: 1
            })
        );
    }

    #[test]
    fn configuration_takes_effect_after_dark_window() {
        let mut ocs = Ocs::new(4, SimDuration::from_nanos(100));
        let active_at = ocs.configure(&Permutation::identity(4), t(50));
        assert_eq!(active_at, t(150));
        assert!(ocs.is_dark(t(149)));
        assert_eq!(ocs.output_for(0, t(149)), None);
        assert!(matches!(
            ocs.transmit(0, 0, 100, t(100)),
            Err(OcsError::Dark { .. })
        ));
        // At the activation instant, circuits carry traffic.
        assert_eq!(ocs.output_for(0, t(150)), Some(0));
        ocs.transmit(0, 0, 1500, t(150)).unwrap();
        let s = ocs.stats();
        assert_eq!(s.reconfigurations, 1);
        assert_eq!(s.dark_time, SimDuration::from_nanos(100));
        assert_eq!(s.delivered_bytes, 1500);
        assert_eq!(s.rejected, 1); // the transmission attempted while dark
    }

    #[test]
    fn misrouting_is_detected() {
        let mut ocs = Ocs::new(4, SimDuration::from_nanos(10));
        ocs.configure(&Permutation::rotation(4, 1), t(0));
        assert_eq!(ocs.output_for(0, t(10)), Some(1));
        assert!(ocs.transmit(0, 2, 64, t(10)).is_err());
        assert!(ocs.transmit(0, 1, 64, t(10)).is_ok());
    }

    #[test]
    fn reconfiguration_replaces_circuits() {
        let mut ocs = Ocs::new(3, SimDuration::from_nanos(10));
        ocs.configure(&Permutation::identity(3), t(0));
        assert_eq!(ocs.output_for(1, t(10)), Some(1));
        ocs.configure(&Permutation::rotation(3, 1), t(20));
        // Dark again during the swap.
        assert!(ocs.is_dark(t(25)));
        assert_eq!(ocs.output_for(1, t(30)), Some(2));
        assert_eq!(ocs.stats().reconfigurations, 2);
        assert_eq!(ocs.stats().dark_time, SimDuration::from_nanos(20));
    }

    #[test]
    fn skip_identical_avoids_dark_window() {
        let mut ocs = Ocs::new(2, SimDuration::from_millis(1)).with_skip_identical(true);
        let p = Permutation::identity(2);
        let first = ocs.configure(&p, t(0));
        assert_eq!(first, SimTime::from_millis(1));
        ocs.tick(first);
        let second = ocs.configure(&p, first);
        assert_eq!(second, first, "identical config should be a no-op");
        assert_eq!(ocs.stats().reconfigurations, 1);
    }

    #[test]
    fn without_skip_identical_always_pays() {
        let mut ocs = Ocs::new(2, SimDuration::from_micros(1));
        let p = Permutation::identity(2);
        let first = ocs.configure(&p, t(0));
        ocs.tick(first);
        let second = ocs.configure(&p, first);
        assert_eq!(second, first + SimDuration::from_micros(1));
        assert_eq!(ocs.stats().reconfigurations, 2);
    }

    #[test]
    fn nanosecond_vs_millisecond_switching_dark_time() {
        // The paper's core contrast: same schedule cadence, 6 orders of
        // magnitude difference in dark time.
        let mut fast = Ocs::new(64, SimDuration::from_nanos(10));
        let mut slow = Ocs::new(64, SimDuration::from_millis(10));
        let mut now = t(0);
        for k in 0..5 {
            let f = fast.configure(&Permutation::rotation(64, k + 1), now);
            let s = slow.configure(&Permutation::rotation(64, k + 1), now);
            now = f.max(s) + SimDuration::from_micros(100);
        }
        assert_eq!(fast.stats().dark_time, SimDuration::from_nanos(50));
        assert_eq!(slow.stats().dark_time, SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "port count mismatch")]
    fn wrong_port_count_panics() {
        let mut ocs = Ocs::new(4, SimDuration::from_nanos(10));
        ocs.configure(&Permutation::identity(8), t(0));
    }
}
