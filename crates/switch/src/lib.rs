//! # xds-switch — data-plane models: links, queues, EPS, OCS
//!
//! The *switching logic* partition of the paper's Figure 2, as laptop-scale
//! models (per DESIGN.md's substitution table):
//!
//! * [`Permutation`] — a (partial) input→output matching, the unit of
//!   circuit configuration the scheduler hands to the OCS;
//! * [`Link`] — rate + propagation delay;
//! * [`DropTailQueue`] — bounded FIFO used for VOQs and host queues;
//! * [`Eps`] — an output-queued electrical packet switch carrying the
//!   "residual traffic and short bursts";
//! * [`Ocs`] — an optical circuit switch with a configurable reconfiguration
//!   ("dark") window during which **no packets can pass** — the physical
//!   fact Figure 1's buffering argument rests on;
//! * [`BufferTracker`] — peak/current buffered bytes accounted per
//!   placement site (host vs switch), which is exactly the y-axis of
//!   Figure 1.

#![warn(missing_docs)]

pub mod buffer;
pub mod eps;
pub mod link;
pub mod ocs;
pub mod perm;
pub mod queue;

pub use buffer::{BufferTracker, Site};
pub use eps::{Eps, EpsStats};
pub use link::Link;
pub use ocs::{Ocs, OcsError, OcsStats};
pub use perm::Permutation;
pub use queue::DropTailQueue;
