//! Electrical packet switch: output-queued, store-and-forward.
//!
//! Serves the paper's "remaining traffic and short bursts". Modelled as one
//! bounded FIFO per output port draining at the EPS port rate; the enqueue
//! call computes the departure time directly (no per-byte events), which is
//! exact for FIFO service and keeps the simulator fast.
//!
//! In hybrid architectures the EPS is typically provisioned well below the
//! optical line rate (the whole point of offloading elephants to circuits),
//! so the per-port rate is independent of the OCS rate.

use std::collections::VecDeque;

use xds_sim::{BitRate, SimDuration, SimTime, TxTimeCache};

/// Per-run statistics of the EPS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpsStats {
    /// Bytes accepted and (eventually) delivered.
    pub delivered_bytes: u64,
    /// Packets accepted.
    pub delivered_packets: u64,
    /// Packets rejected because the output queue was full.
    pub drops: u64,
    /// Bytes rejected.
    pub dropped_bytes: u64,
}

#[derive(Debug, Clone, Default)]
struct OutPort {
    /// Departure times and sizes of packets still occupying the queue.
    in_flight: VecDeque<(SimTime, u64)>,
    queued_bytes: u64,
    peak_bytes: u64,
    busy_until: SimTime,
}

/// An output-queued electrical packet switch.
#[derive(Debug, Clone)]
pub struct Eps {
    rate: BitRate,
    /// One-entry serialization memo (packets repeat the MTU size).
    tx_cache: TxTimeCache,
    cap_bytes: u64,
    ports: Vec<OutPort>,
    stats: EpsStats,
}

impl Eps {
    /// Creates a switch with `n` output ports, each draining at `rate` with
    /// `cap_bytes` of buffering.
    pub fn new(n: usize, rate: BitRate, cap_bytes: u64) -> Self {
        assert!(n > 0, "EPS needs at least one port");
        assert!(cap_bytes > 0, "EPS buffer must be positive");
        Eps {
            rate,
            tx_cache: rate.tx_cache(),
            cap_bytes,
            ports: vec![OutPort::default(); n],
            stats: EpsStats::default(),
        }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.ports.len()
    }

    /// Per-port drain rate.
    pub fn rate(&self) -> BitRate {
        self.rate
    }

    fn gc(port: &mut OutPort, now: SimTime) {
        while let Some(&(dep, bytes)) = port.in_flight.front() {
            if dep <= now {
                port.in_flight.pop_front();
                debug_assert!(
                    port.queued_bytes >= bytes,
                    "EPS release accounting: departing packet not in occupancy"
                );
                port.queued_bytes -= bytes;
            } else {
                break;
            }
        }
        debug_assert!(
            !port.in_flight.is_empty() || port.queued_bytes == 0,
            "EPS occupancy retained after every packet departed"
        );
    }

    /// Offers a packet of `bytes` to output `out` at `now`.
    ///
    /// Returns the departure time (when the last bit leaves the egress
    /// port) or `Err(())` on a full queue.
    #[allow(clippy::result_unit_err)] // Err(()) is the documented drop signal
    pub fn enqueue(&mut self, out: usize, bytes: u64, now: SimTime) -> Result<SimTime, ()> {
        let port = &mut self.ports[out];
        Self::gc(port, now);
        if port.queued_bytes + bytes > self.cap_bytes {
            self.stats.drops += 1;
            self.stats.dropped_bytes += bytes;
            return Err(());
        }
        let start = port.busy_until.max(now);
        let departure = start + self.tx_cache.tx_time(bytes);
        port.busy_until = departure;
        port.in_flight.push_back((departure, bytes));
        port.queued_bytes += bytes;
        port.peak_bytes = port.peak_bytes.max(port.queued_bytes);
        self.stats.delivered_bytes += bytes;
        self.stats.delivered_packets += 1;
        Ok(departure)
    }

    /// Current queued bytes at `out` (after lazy GC).
    pub fn queued_bytes(&mut self, out: usize, now: SimTime) -> u64 {
        let port = &mut self.ports[out];
        Self::gc(port, now);
        port.queued_bytes
    }

    /// High-water mark of queued bytes at `out`.
    pub fn peak_bytes(&self, out: usize) -> u64 {
        self.ports[out].peak_bytes
    }

    /// Sum of high-water marks across ports (upper bound on total buffer
    /// the EPS needed).
    pub fn total_peak_bytes(&self) -> u64 {
        self.ports.iter().map(|p| p.peak_bytes).sum()
    }

    /// Queueing delay a new packet would currently experience at `out`.
    pub fn current_delay(&mut self, out: usize, now: SimTime) -> SimDuration {
        let port = &mut self.ports[out];
        Self::gc(port, now);
        port.busy_until.saturating_since(now)
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> EpsStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn idle_port_forwards_at_line_rate() {
        let mut eps = Eps::new(2, BitRate::GBPS_1, 100_000);
        // 1500B at 1G = 12 µs.
        let dep = eps.enqueue(0, 1500, t(0)).unwrap();
        assert_eq!(dep, SimTime::from_micros(12));
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut eps = Eps::new(1, BitRate::GBPS_1, 100_000);
        let d1 = eps.enqueue(0, 1500, t(0)).unwrap();
        let d2 = eps.enqueue(0, 1500, t(0)).unwrap();
        assert_eq!(d2, d1 + SimDuration::from_micros(12));
        assert_eq!(eps.queued_bytes(0, t(0)), 3000);
        // After the first departs, occupancy shrinks.
        assert_eq!(eps.queued_bytes(0, d1), 1500);
        assert_eq!(eps.queued_bytes(0, d2), 0);
    }

    #[test]
    fn ports_are_independent() {
        let mut eps = Eps::new(2, BitRate::GBPS_1, 100_000);
        eps.enqueue(0, 1500, t(0)).unwrap();
        let dep = eps.enqueue(1, 1500, t(0)).unwrap();
        assert_eq!(dep, SimTime::from_micros(12), "port 1 unaffected by port 0");
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut eps = Eps::new(1, BitRate::GBPS_1, 3000);
        eps.enqueue(0, 1500, t(0)).unwrap();
        eps.enqueue(0, 1500, t(0)).unwrap();
        assert!(eps.enqueue(0, 1500, t(0)).is_err());
        let s = eps.stats();
        assert_eq!(s.drops, 1);
        assert_eq!(s.dropped_bytes, 1500);
        assert_eq!(s.delivered_packets, 2);
        // Capacity frees once the head departs.
        assert!(eps.enqueue(0, 1500, SimTime::from_micros(12)).is_ok());
    }

    /// Drop-and-release audit: a rejected packet must never enter the
    /// occupancy accounting, and each accepted packet's bytes must leave
    /// it exactly once — over-releasing would free buffer capacity that
    /// was never held (mirroring the packet-pool conservation rule at
    /// the host/VOQ boundary).
    #[test]
    fn rejected_packets_never_enter_occupancy() {
        let mut eps = Eps::new(1, BitRate::GBPS_1, 3000);
        let d1 = eps.enqueue(0, 1500, t(0)).unwrap();
        let d2 = eps.enqueue(0, 1500, t(0)).unwrap();
        for _ in 0..3 {
            assert!(eps.enqueue(0, 1500, t(0)).is_err());
        }
        assert_eq!(eps.queued_bytes(0, t(0)), 3000, "drops held no bytes");
        // Departures release exactly the accepted bytes, exactly once:
        // occupancy reaches zero and stays there.
        assert_eq!(eps.queued_bytes(0, d1), 1500);
        assert_eq!(eps.queued_bytes(0, d2), 0);
        assert_eq!(eps.queued_bytes(0, d2 + SimDuration::from_micros(50)), 0);
        let s = eps.stats();
        assert_eq!((s.drops, s.dropped_bytes), (3, 4500));
        assert_eq!(s.delivered_bytes, 3000);
    }

    #[test]
    fn idle_gap_resets_busy_time() {
        let mut eps = Eps::new(1, BitRate::GBPS_1, 100_000);
        let d1 = eps.enqueue(0, 1500, t(0)).unwrap();
        let later = d1 + SimDuration::from_micros(100);
        let d2 = eps.enqueue(0, 1500, later).unwrap();
        assert_eq!(d2, later + SimDuration::from_micros(12));
    }

    #[test]
    fn peak_bytes_and_delay() {
        let mut eps = Eps::new(1, BitRate::GBPS_1, 100_000);
        eps.enqueue(0, 1500, t(0)).unwrap();
        eps.enqueue(0, 1500, t(0)).unwrap();
        assert_eq!(eps.peak_bytes(0), 3000);
        assert_eq!(eps.total_peak_bytes(), 3000);
        // Delay for a third packet: 24 µs of backlog.
        assert_eq!(eps.current_delay(0, t(0)), SimDuration::from_micros(24));
        assert_eq!(
            eps.current_delay(0, SimTime::from_micros(30)),
            SimDuration::ZERO
        );
    }
}
