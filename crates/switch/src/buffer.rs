//! Buffer-placement accounting: the y-axis of the paper's Figure 1.
//!
//! Figure 1 contrasts **host buffering** (slow scheduling: packets wait at
//! the hosts for grants) with **switch buffering** (fast scheduling:
//! packets wait in ToR VOQs). The tracker accumulates current and peak
//! buffered bytes per site, with departure-time-deferred decrements so that
//! occupancy is exact at every enqueue instant (occupancy can only decrease
//! between enqueues, so peaks are never missed).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use xds_sim::SimTime;

/// Where the bytes are parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// In host memory (the "Slow Scheduling" regime of Figure 1).
    Host,
    /// In the ToR switch (the "Fast Scheduling" regime of Figure 1).
    Switch,
}

impl Site {
    /// Index into per-site arrays.
    fn idx(self) -> usize {
        match self {
            Site::Host => 0,
            Site::Switch => 1,
        }
    }

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Site::Host => "host",
            Site::Switch => "switch",
        }
    }
}

/// Tracks current and peak buffered bytes per site.
#[derive(Debug, Default)]
pub struct BufferTracker {
    current: [u64; 2],
    peak: [u64; 2],
    /// `(release time, site idx, bytes)` min-heap.
    pending: BinaryHeap<Reverse<(SimTime, usize, u64)>>,
}

impl BufferTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn drain(&mut self, now: SimTime) {
        while let Some(&Reverse((at, site, bytes))) = self.pending.peek() {
            if at <= now {
                self.pending.pop();
                debug_assert!(self.current[site] >= bytes, "buffer underflow");
                self.current[site] = self.current[site].saturating_sub(bytes);
            } else {
                break;
            }
        }
    }

    /// Records `bytes` becoming buffered at `site` at time `now`.
    pub fn on_enqueue(&mut self, site: Site, bytes: u64, now: SimTime) {
        self.drain(now);
        let i = site.idx();
        self.current[i] += bytes;
        self.peak[i] = self.peak[i].max(self.current[i]);
    }

    /// Records that `bytes` will leave `site` at `release` (e.g. the
    /// packet's transmission completion).
    pub fn on_dequeue_at(&mut self, site: Site, bytes: u64, release: SimTime) {
        self.pending.push(Reverse((release, site.idx(), bytes)));
    }

    /// Immediately removes `bytes` from `site` (drop or instant transfer).
    pub fn on_dequeue_now(&mut self, site: Site, bytes: u64, now: SimTime) {
        self.drain(now);
        let i = site.idx();
        debug_assert!(self.current[i] >= bytes, "buffer underflow");
        self.current[i] = self.current[i].saturating_sub(bytes);
    }

    /// Current occupancy of `site` at `now`.
    pub fn current(&mut self, site: Site, now: SimTime) -> u64 {
        self.drain(now);
        self.current[site.idx()]
    }

    /// Peak occupancy of `site` observed so far.
    pub fn peak(&self, site: Site) -> u64 {
        self.peak[site.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_sim::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn enqueue_dequeue_balance() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Switch, 1500, t(0));
        b.on_enqueue(Site::Switch, 1500, t(10));
        assert_eq!(b.current(Site::Switch, t(10)), 3000);
        b.on_dequeue_now(Site::Switch, 1500, t(20));
        assert_eq!(b.current(Site::Switch, t(20)), 1500);
        assert_eq!(b.peak(Site::Switch), 3000);
    }

    #[test]
    fn deferred_release_applies_at_time() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Host, 1000, t(0));
        b.on_dequeue_at(Site::Host, 1000, t(100));
        assert_eq!(b.current(Site::Host, t(99)), 1000);
        assert_eq!(b.current(Site::Host, t(100)), 0);
    }

    #[test]
    fn sites_are_independent() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Host, 700, t(0));
        b.on_enqueue(Site::Switch, 20, t(0));
        assert_eq!(b.peak(Site::Host), 700);
        assert_eq!(b.peak(Site::Switch), 20);
        assert_eq!(b.current(Site::Host, t(0)), 700);
        assert_eq!(b.current(Site::Switch, t(0)), 20);
    }

    #[test]
    fn peak_observed_at_enqueue_instants_is_exact() {
        let mut b = BufferTracker::new();
        // Saw-tooth: enqueue 3×1000 each released 10ns later.
        let mut now = t(0);
        for _ in 0..3 {
            b.on_enqueue(Site::Switch, 1000, now);
            b.on_dequeue_at(Site::Switch, 1000, now + SimDuration::from_nanos(10));
            now += SimDuration::from_nanos(5);
        }
        // At t=5 and t=10 two packets overlap (released at 10/15/20).
        assert_eq!(b.peak(Site::Switch), 2000);
    }

    #[test]
    fn out_of_order_releases_handled() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Switch, 100, t(0));
        b.on_enqueue(Site::Switch, 200, t(0));
        // Register the later release first.
        b.on_dequeue_at(Site::Switch, 200, t(50));
        b.on_dequeue_at(Site::Switch, 100, t(20));
        assert_eq!(b.current(Site::Switch, t(30)), 200);
        assert_eq!(b.current(Site::Switch, t(60)), 0);
    }
}
