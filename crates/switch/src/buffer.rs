//! Buffer-placement accounting: the y-axis of the paper's Figure 1.
//!
//! Figure 1 contrasts **host buffering** (slow scheduling: packets wait at
//! the hosts for grants) with **switch buffering** (fast scheduling:
//! packets wait in ToR VOQs). The tracker accumulates current and peak
//! buffered bytes per site, with departure-time-deferred decrements so that
//! occupancy is exact at every enqueue instant (occupancy can only decrease
//! between enqueues, so peaks are never missed).

use xds_sim::SimTime;

/// An exact **monotone radix queue** of pending releases.
///
/// Both operations the tracker performs are monotone in simulated time —
/// releases are scheduled in the future, and occupancy is queried at
/// non-decreasing enqueue instants — which is the textbook setting for a
/// radix heap: entries live in buckets indexed by the highest bit in
/// which their key differs from the last drain time (`floor`), pushes
/// are O(1), and each entry is redistributed to strictly lower buckets
/// at most once per differing bit. This replaced a binary heap that paid
/// `O(log n)` sifts twice per simulated packet.
#[derive(Debug)]
struct ReleaseQueue {
    /// `buckets[0]`: keys equal to `floor`. `buckets[b]` (b ≥ 1): keys
    /// whose highest differing bit from `floor` is `b - 1`. Entries are
    /// `(key, bytes | site << 63)` — 16 bytes each, half the memory
    /// traffic of the naive tuple on a path that runs once per packet
    /// (byte counts are far below 2^63, so the tag bit is free).
    buckets: Vec<Vec<(u64, u64)>>,
    /// Reused redistribution buffer (bucket capacities cycle through it).
    scratch: Vec<(u64, u64)>,
    floor: u64,
    len: usize,
}

/// Packs `(site, bytes)` into the tagged word.
#[inline]
fn pack(site: u8, bytes: u64) -> u64 {
    debug_assert!(bytes < 1 << 63, "byte count overflows the site tag");
    bytes | (site as u64) << 63
}

/// Unpacks the tagged word back into `(site, bytes)`.
#[inline]
fn unpack(word: u64) -> (u8, u64) {
    ((word >> 63) as u8, word & ((1 << 63) - 1))
}

impl ReleaseQueue {
    fn new() -> Self {
        ReleaseQueue {
            buckets: (0..65).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
            floor: 0,
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        let x = key ^ self.floor;
        if x == 0 {
            0
        } else {
            64 - x.leading_zeros() as usize
        }
    }

    /// Pushes a release; `key` must be ≥ the last `drain_upto` bound
    /// (guaranteed: releases are in the future of the simulation clock).
    #[inline]
    fn push(&mut self, key: u64, site: u8, bytes: u64) {
        debug_assert!(key >= self.floor, "monotonicity violated");
        let b = self.bucket_of(key);
        self.buckets[b].push((key, pack(site, bytes)));
        self.len += 1;
    }

    /// Applies `f` to every entry with key ≤ `t`, removing them, and
    /// returns the exact minimum remaining key (`None` when empty). `t`
    /// must be non-decreasing across calls.
    fn drain_upto(&mut self, t: u64, mut f: impl FnMut(u8, u64)) -> Option<u64> {
        loop {
            // Keys equal to the floor are immediately due when floor ≤ t.
            if !self.buckets[0].is_empty() {
                if self.floor > t {
                    return Some(self.floor);
                }
                self.len -= self.buckets[0].len();
                let mut due = std::mem::take(&mut self.buckets[0]);
                for &(_, word) in &due {
                    let (site, bytes) = unpack(word);
                    f(site, bytes);
                }
                due.clear();
                self.buckets[0] = due;
            }
            if self.len == 0 {
                return None;
            }
            // Advance the floor to the minimum key: it lives in the
            // lowest non-empty bucket (radix-heap invariant; bucket 0 is
            // empty here, so that minimum is the global one).
            let b = (1..self.buckets.len())
                .find(|&b| !self.buckets[b].is_empty())
                .expect("len > 0");
            let min = self.buckets[b]
                .iter()
                .map(|&(k, ..)| k)
                .min()
                .expect("non-empty");
            if min > t {
                return Some(min);
            }
            self.floor = min;
            // Redistribute: every entry lands in a strictly lower bucket
            // (its highest differing bit from the new floor shrank).
            std::mem::swap(&mut self.scratch, &mut self.buckets[b]);
            for &(k, word) in &self.scratch {
                let nb = self.bucket_of(k);
                debug_assert!(nb < b);
                self.buckets[nb].push((k, word));
            }
            self.scratch.clear();
        }
    }
}

/// Where the bytes are parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// In host memory (the "Slow Scheduling" regime of Figure 1).
    Host,
    /// In the ToR switch (the "Fast Scheduling" regime of Figure 1).
    Switch,
}

impl Site {
    /// Index into per-site arrays.
    fn idx(self) -> usize {
        match self {
            Site::Host => 0,
            Site::Switch => 1,
        }
    }

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Site::Host => "host",
            Site::Switch => "switch",
        }
    }
}

/// Tracks current and peak buffered bytes per site.
#[derive(Debug)]
pub struct BufferTracker {
    current: [u64; 2],
    peak: [u64; 2],
    /// Pending releases, radix-bucketed (see [`ReleaseQueue`]).
    pending: ReleaseQueue,
    /// Cached earliest pending release: `on_enqueue` runs once per packet
    /// and can skip the queue entirely (one compare) while nothing is
    /// due. Conservative (may be earlier than the true minimum).
    next_release: SimTime,
}

impl Default for BufferTracker {
    fn default() -> Self {
        BufferTracker {
            current: [0; 2],
            peak: [0; 2],
            pending: ReleaseQueue::new(),
            next_release: SimTime::MAX,
        }
    }
}

impl BufferTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn drain(&mut self, now: SimTime) {
        if now < self.next_release {
            return;
        }
        let current = &mut self.current;
        let remaining = self.pending.drain_upto(now.as_nanos(), |site, bytes| {
            let site = site as usize;
            debug_assert!(current[site] >= bytes, "buffer underflow");
            current[site] = current[site].saturating_sub(bytes);
        });
        self.next_release = remaining.map(SimTime::from_nanos).unwrap_or(SimTime::MAX);
    }

    /// Records `bytes` becoming buffered at `site` at time `now`.
    pub fn on_enqueue(&mut self, site: Site, bytes: u64, now: SimTime) {
        self.drain(now);
        let i = site.idx();
        self.current[i] += bytes;
        self.peak[i] = self.peak[i].max(self.current[i]);
    }

    /// Records that `bytes` will leave `site` at `release` (e.g. the
    /// packet's transmission completion).
    pub fn on_dequeue_at(&mut self, site: Site, bytes: u64, release: SimTime) {
        self.next_release = self.next_release.min(release);
        self.pending
            .push(release.as_nanos(), site.idx() as u8, bytes);
    }

    /// Batch form of [`on_dequeue_at`](Self::on_dequeue_at) for one site:
    /// takes `(release_ns, bytes)` pairs, **coalesces equal release
    /// times** into single queue entries and pushes the merged set. The
    /// accounting is identical to pushing each pair individually —
    /// occupancy at every query instant is unchanged — but the queue
    /// carries one entry per distinct timestamp instead of one per
    /// packet. That matters for grant bursts at fabric scale: every
    /// granted pair serializes the same MTU ladder from the same slot
    /// start, so hundreds of pairs' releases land on identical
    /// timestamps and collapse to one ladder. Clears `releases`.
    pub fn on_dequeue_at_batch(&mut self, site: Site, releases: &mut Vec<(u64, u64)>) {
        if releases.is_empty() {
            return;
        }
        // Mostly-sorted input (a handful of interleaved ascending
        // ladders): pdqsort's run detection makes this cheap.
        releases.sort_unstable_by_key(|&(t, _)| t);
        self.next_release = self.next_release.min(SimTime::from_nanos(releases[0].0));
        let site = site.idx() as u8;
        let mut pending = (releases[0].0, 0u64);
        for &(t, bytes) in releases.iter() {
            if t == pending.0 {
                pending.1 += bytes;
            } else {
                self.pending.push(pending.0, site, pending.1);
                pending = (t, bytes);
            }
        }
        self.pending.push(pending.0, site, pending.1);
        releases.clear();
    }

    /// Immediately removes `bytes` from `site` (drop or instant transfer).
    pub fn on_dequeue_now(&mut self, site: Site, bytes: u64, now: SimTime) {
        self.drain(now);
        let i = site.idx();
        debug_assert!(self.current[i] >= bytes, "buffer underflow");
        self.current[i] = self.current[i].saturating_sub(bytes);
    }

    /// Current occupancy of `site` at `now`.
    pub fn current(&mut self, site: Site, now: SimTime) -> u64 {
        self.drain(now);
        self.current[site.idx()]
    }

    /// Peak occupancy of `site` observed so far.
    pub fn peak(&self, site: Site) -> u64 {
        self.peak[site.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_sim::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn enqueue_dequeue_balance() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Switch, 1500, t(0));
        b.on_enqueue(Site::Switch, 1500, t(10));
        assert_eq!(b.current(Site::Switch, t(10)), 3000);
        b.on_dequeue_now(Site::Switch, 1500, t(20));
        assert_eq!(b.current(Site::Switch, t(20)), 1500);
        assert_eq!(b.peak(Site::Switch), 3000);
    }

    #[test]
    fn deferred_release_applies_at_time() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Host, 1000, t(0));
        b.on_dequeue_at(Site::Host, 1000, t(100));
        assert_eq!(b.current(Site::Host, t(99)), 1000);
        assert_eq!(b.current(Site::Host, t(100)), 0);
    }

    #[test]
    fn sites_are_independent() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Host, 700, t(0));
        b.on_enqueue(Site::Switch, 20, t(0));
        assert_eq!(b.peak(Site::Host), 700);
        assert_eq!(b.peak(Site::Switch), 20);
        assert_eq!(b.current(Site::Host, t(0)), 700);
        assert_eq!(b.current(Site::Switch, t(0)), 20);
    }

    #[test]
    fn peak_observed_at_enqueue_instants_is_exact() {
        let mut b = BufferTracker::new();
        // Saw-tooth: enqueue 3×1000 each released 10ns later.
        let mut now = t(0);
        for _ in 0..3 {
            b.on_enqueue(Site::Switch, 1000, now);
            b.on_dequeue_at(Site::Switch, 1000, now + SimDuration::from_nanos(10));
            now += SimDuration::from_nanos(5);
        }
        // At t=5 and t=10 two packets overlap (released at 10/15/20).
        assert_eq!(b.peak(Site::Switch), 2000);
    }

    #[test]
    fn out_of_order_releases_handled() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Switch, 100, t(0));
        b.on_enqueue(Site::Switch, 200, t(0));
        // Register the later release first.
        b.on_dequeue_at(Site::Switch, 200, t(50));
        b.on_dequeue_at(Site::Switch, 100, t(20));
        assert_eq!(b.current(Site::Switch, t(30)), 200);
        assert_eq!(b.current(Site::Switch, t(60)), 0);
    }

    #[test]
    fn batched_releases_match_individual_releases() {
        // Interleaved equal ladders (what a multi-pair grant burst
        // produces) pushed per packet vs batched: occupancy must agree
        // at every probe instant, and the batch must clear its input.
        let ladder: Vec<(u64, u64)> = (1..=4)
            .flat_map(|k| [(k * 10, 100u64), (k * 10, 250)])
            .map(|(t_, b_)| (t_ + 5, b_))
            .collect();
        let mut one = BufferTracker::new();
        let mut batch = BufferTracker::new();
        for b in [&mut one, &mut batch] {
            b.on_enqueue(Site::Switch, 2 * (100 + 250) * 4, t(0));
        }
        for &(at, bytes) in &ladder {
            one.on_dequeue_at(Site::Switch, bytes, t(at));
        }
        let mut scratch = ladder.clone();
        batch.on_dequeue_at_batch(Site::Switch, &mut scratch);
        assert!(scratch.is_empty(), "batch must recycle the scratch");
        for probe in [0, 14, 15, 16, 25, 35, 45, 46, 100] {
            assert_eq!(
                one.current(Site::Switch, t(probe)),
                batch.current(Site::Switch, t(probe)),
                "divergence at t={probe}"
            );
        }
        assert_eq!(one.peak(Site::Switch), batch.peak(Site::Switch));
    }

    #[test]
    fn batched_releases_interleave_with_enqueues() {
        let mut b = BufferTracker::new();
        b.on_enqueue(Site::Host, 1_000, t(0));
        let mut rel = vec![(40u64, 600u64), (20, 400)];
        b.on_dequeue_at_batch(Site::Host, &mut rel);
        assert_eq!(b.current(Site::Host, t(19)), 1_000);
        assert_eq!(b.current(Site::Host, t(20)), 600);
        // New enqueue between the two releases still sees exact state.
        b.on_enqueue(Site::Host, 50, t(25));
        assert_eq!(b.current(Site::Host, t(25)), 650);
        assert_eq!(b.current(Site::Host, t(40)), 50);
        // An empty batch is a no-op.
        let mut empty: Vec<(u64, u64)> = Vec::new();
        b.on_dequeue_at_batch(Site::Host, &mut empty);
        assert_eq!(b.current(Site::Host, t(41)), 50);
    }
}
