//! Point-to-point link model: serialization plus propagation.

use xds_sim::{BitRate, SimDuration, SimTime};

/// A full-duplex point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Line rate.
    pub rate: BitRate,
    /// One-way propagation delay.
    pub propagation: SimDuration,
}

impl Link {
    /// A typical intra-rack host↔ToR link: given rate, 5 m of fibre
    /// (~25 ns).
    pub fn intra_rack(rate: BitRate) -> Link {
        Link {
            rate,
            propagation: SimDuration::from_nanos(25),
        }
    }

    /// Serialization time for `bytes`.
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        self.rate.tx_time(bytes)
    }

    /// When the last bit of a packet sent at `start` arrives at the far
    /// end.
    pub fn arrival_time(&self, start: SimTime, bytes: u64) -> SimTime {
        start + self.tx_time(bytes) + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_is_tx_plus_propagation() {
        let l = Link {
            rate: BitRate::GBPS_10,
            propagation: SimDuration::from_nanos(25),
        };
        let t0 = SimTime::from_micros(1);
        // 1500B at 10G = 1200ns, +25ns propagation.
        assert_eq!(l.arrival_time(t0, 1500), t0 + SimDuration::from_nanos(1225));
    }

    #[test]
    fn intra_rack_preset() {
        let l = Link::intra_rack(BitRate::GBPS_10);
        assert_eq!(l.propagation, SimDuration::from_nanos(25));
        assert_eq!(l.rate, BitRate::GBPS_10);
    }
}
