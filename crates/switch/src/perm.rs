//! Partial permutations: the circuit configurations ("grant matrices" /
//! matchings) exchanged between scheduling and switching logic.
//!
//! A circuit switch physically connects each input to at most one output
//! and vice versa; a schedule is therefore a (possibly partial) permutation
//! of the port set. The type enforces the matching property on
//! construction, so a malformed grant matrix cannot reach the OCS.

use xds_sim::SimRng;

/// A partial permutation over `n` ports: each input maps to at most one
/// output and each output has at most one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<Option<usize>>,
    inverse: Vec<Option<usize>>,
    assigned: usize,
}

impl Permutation {
    /// The empty matching over `n` ports.
    pub fn empty(n: usize) -> Self {
        Permutation {
            forward: vec![None; n],
            inverse: vec![None; n],
            assigned: 0,
        }
    }

    /// The identity permutation (port *i* → port *i*).
    pub fn identity(n: usize) -> Self {
        let mut p = Permutation::empty(n);
        for i in 0..n {
            p.set(i, i).expect("identity is a matching");
        }
        p
    }

    /// The rotation permutation (port *i* → port *(i+k) mod n*), the slot
    /// sequence of a static TDMA / round-robin scheduler.
    pub fn rotation(n: usize, k: usize) -> Self {
        let mut p = Permutation::empty(n);
        for i in 0..n {
            p.set(i, (i + k) % n).expect("rotation is a matching");
        }
        p
    }

    /// A uniformly random full permutation.
    pub fn random(n: usize, rng: &mut SimRng) -> Self {
        let targets = rng.permutation_indices(n);
        let mut p = Permutation::empty(n);
        for (i, &o) in targets.iter().enumerate() {
            p.set(i, o).expect("shuffled targets form a matching");
        }
        p
    }

    /// Builds from explicit pairs; fails on conflicts or out-of-range ports.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Result<Self, String> {
        let mut p = Permutation::empty(n);
        for &(i, o) in pairs {
            p.set(i, o)?;
        }
        Ok(p)
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.forward.len()
    }

    /// Number of assigned input→output pairs.
    pub fn assigned(&self) -> usize {
        self.assigned
    }

    /// True when every input is matched.
    pub fn is_full(&self) -> bool {
        self.assigned == self.forward.len()
    }

    /// True when no input is matched.
    pub fn is_empty(&self) -> bool {
        self.assigned == 0
    }

    /// Adds the pair `input → output`.
    ///
    /// Fails if either endpoint is out of range or already matched.
    pub fn set(&mut self, input: usize, output: usize) -> Result<(), String> {
        let n = self.forward.len();
        if input >= n || output >= n {
            return Err(format!("pair ({input}, {output}) out of range for n={n}"));
        }
        if let Some(o) = self.forward[input] {
            return Err(format!("input {input} already matched to {o}"));
        }
        if let Some(i) = self.inverse[output] {
            return Err(format!("output {output} already matched to {i}"));
        }
        self.forward[input] = Some(output);
        self.inverse[output] = Some(input);
        self.assigned += 1;
        Ok(())
    }

    /// The output matched to `input`, if any.
    pub fn output_of(&self, input: usize) -> Option<usize> {
        self.forward.get(input).copied().flatten()
    }

    /// The input matched to `output`, if any.
    pub fn input_of(&self, output: usize) -> Option<usize> {
        self.inverse.get(output).copied().flatten()
    }

    /// Iterates over assigned `(input, output)` pairs in input order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.forward
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|o| (i, o)))
    }

    /// Overwrites `self` with `other`, reusing the existing allocations
    /// when the port counts match (the hot-path alternative to `clone()`:
    /// the OCS reconfigures thousands of times per run and must not
    /// allocate per configuration).
    pub fn copy_from(&mut self, other: &Permutation) {
        self.forward.clone_from(&other.forward);
        self.inverse.clone_from(&other.inverse);
        self.assigned = other.assigned;
    }

    /// Verifies internal consistency (debug aid for property tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.forward.len();
        if self.inverse.len() != n {
            return Err("forward/inverse length mismatch".into());
        }
        let mut count = 0;
        for (i, &fo) in self.forward.iter().enumerate() {
            if let Some(o) = fo {
                count += 1;
                if self.inverse[o] != Some(i) {
                    return Err(format!(
                        "inverse of {o} is {:?}, expected {i}",
                        self.inverse[o]
                    ));
                }
            }
        }
        if count != self.assigned {
            return Err(format!(
                "assigned count {} != actual {count}",
                self.assigned
            ));
        }
        Ok(())
    }
}

impl core::fmt::Display for Permutation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (i, o) in self.pairs() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}->{o}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_rotation() {
        let id = Permutation::identity(4);
        assert!(id.is_full());
        for i in 0..4 {
            assert_eq!(id.output_of(i), Some(i));
        }
        let rot = Permutation::rotation(4, 1);
        assert_eq!(rot.output_of(3), Some(0));
        assert_eq!(rot.input_of(0), Some(3));
        // rotation by 0 is identity
        assert_eq!(Permutation::rotation(4, 0), Permutation::identity(4));
        // rotation wraps modulo n
        assert_eq!(Permutation::rotation(4, 5), Permutation::rotation(4, 1));
    }

    #[test]
    fn conflicts_rejected() {
        let mut p = Permutation::empty(4);
        p.set(0, 1).unwrap();
        assert!(p.set(0, 2).is_err(), "input reuse");
        assert!(p.set(3, 1).is_err(), "output reuse");
        assert!(p.set(4, 0).is_err(), "input out of range");
        assert!(p.set(0, 7).is_err(), "output out of range");
        assert_eq!(p.assigned(), 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn from_pairs_validates() {
        assert!(Permutation::from_pairs(3, &[(0, 1), (1, 0), (2, 2)]).is_ok());
        assert!(Permutation::from_pairs(3, &[(0, 1), (1, 1)]).is_err());
    }

    #[test]
    fn random_is_a_full_matching() {
        let mut rng = SimRng::new(1);
        for _ in 0..20 {
            let p = Permutation::random(16, &mut rng);
            assert!(p.is_full());
            p.check_invariants().unwrap();
        }
    }

    #[test]
    fn pairs_iterates_assigned_only() {
        let p = Permutation::from_pairs(5, &[(1, 4), (3, 0)]).unwrap();
        let pairs: Vec<_> = p.pairs().collect();
        assert_eq!(pairs, vec![(1, 4), (3, 0)]);
        assert_eq!(p.assigned(), 2);
        assert!(!p.is_full());
        assert!(!p.is_empty());
    }

    #[test]
    fn display_is_compact() {
        let p = Permutation::from_pairs(4, &[(0, 2), (1, 3)]).unwrap();
        assert_eq!(p.to_string(), "{0->2, 1->3}");
        assert_eq!(Permutation::empty(2).to_string(), "{}");
    }

    #[test]
    fn empty_permutation_maps_nothing() {
        let p = Permutation::empty(4);
        assert!(p.is_empty());
        for i in 0..4 {
            assert_eq!(p.output_of(i), None);
            assert_eq!(p.input_of(i), None);
        }
        // Out-of-range queries answer None rather than panicking.
        assert_eq!(p.output_of(99), None);
    }
}
