//! Bounded drop-tail FIFO used for VOQs and host staging queues.

use std::collections::VecDeque;

use xds_net::Packet;

/// A byte- and packet-bounded FIFO. Rejects (rather than silently drops)
/// packets that don't fit, so the caller can count drops by cause.
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    q: VecDeque<Packet>,
    bytes: u64,
    cap_bytes: u64,
    cap_pkts: usize,
    peak_bytes: u64,
    drops: u64,
    dropped_bytes: u64,
    enqueued_total: u64,
}

impl DropTailQueue {
    /// Creates a queue bounded by both byte and packet capacity.
    pub fn new(cap_bytes: u64, cap_pkts: usize) -> Self {
        assert!(
            cap_bytes > 0 && cap_pkts > 0,
            "queue capacity must be positive"
        );
        DropTailQueue {
            q: VecDeque::new(),
            bytes: 0,
            cap_bytes,
            cap_pkts,
            peak_bytes: 0,
            drops: 0,
            dropped_bytes: 0,
            enqueued_total: 0,
        }
    }

    /// An effectively unbounded queue (for host buffering, whose size is
    /// the thing we measure rather than cap).
    pub fn unbounded() -> Self {
        DropTailQueue::new(u64::MAX, usize::MAX)
    }

    /// Attempts to enqueue; on overflow the packet is returned to the
    /// caller and counted as a drop.
    pub fn push(&mut self, p: Packet) -> Result<(), Packet> {
        if self.bytes + p.bytes as u64 > self.cap_bytes || self.q.len() + 1 > self.cap_pkts {
            self.drops += 1;
            self.dropped_bytes += p.bytes as u64;
            return Err(p);
        }
        self.bytes += p.bytes as u64;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        self.enqueued_total += 1;
        self.q.push_back(p);
        Ok(())
    }

    /// Dequeues the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.q.pop_front()?;
        self.bytes -= p.bytes as u64;
        Some(p)
    }

    /// Peeks at the head packet.
    pub fn peek(&self) -> Option<&Packet> {
        self.q.front()
    }

    /// Queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// High-water mark of queued bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// `(dropped packets, dropped bytes)`.
    pub fn drops(&self) -> (u64, u64) {
        (self.drops, self.dropped_bytes)
    }

    /// Packets ever accepted.
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xds_net::{PortNo, TrafficClass};
    use xds_sim::SimTime;

    fn pkt(id: u64, bytes: u32) -> Packet {
        Packet::new(
            id,
            0,
            PortNo(0),
            PortNo(1),
            bytes,
            TrafficClass::Bulk,
            SimTime::ZERO,
            0,
        )
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10_000, 10);
        q.push(pkt(1, 100)).unwrap();
        q.push(pkt(2, 100)).unwrap();
        assert_eq!(q.pop().unwrap().id.0, 1);
        assert_eq!(q.pop().unwrap().id.0, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn byte_cap_enforced() {
        let mut q = DropTailQueue::new(250, 10);
        q.push(pkt(1, 100)).unwrap();
        q.push(pkt(2, 100)).unwrap();
        let rejected = q.push(pkt(3, 100)).unwrap_err();
        assert_eq!(rejected.id.0, 3);
        assert_eq!(q.drops(), (1, 100));
        assert_eq!(q.bytes(), 200);
        // After draining, capacity is available again.
        q.pop();
        q.push(pkt(4, 100)).unwrap();
    }

    #[test]
    fn packet_cap_enforced() {
        let mut q = DropTailQueue::new(u64::MAX, 2);
        q.push(pkt(1, 1)).unwrap();
        q.push(pkt(2, 1)).unwrap();
        assert!(q.push(pkt(3, 1)).is_err());
    }

    /// Drop accounting audit at the queue boundary: a rejected packet is
    /// *returned*, never stored — so the caller (who may own pooled
    /// storage for it) releases it exactly once, and accepted bytes are
    /// conserved between occupancy and the drop counters.
    #[test]
    fn rejected_packets_are_returned_and_bytes_conserved() {
        let mut q = DropTailQueue::new(1000, 100);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for i in 0..20 {
            match q.push(pkt(i, 150)) {
                Ok(()) => accepted += 150,
                Err(p) => {
                    assert_eq!(p.id.0, i, "the rejected packet comes back intact");
                    rejected += 150;
                }
            }
        }
        assert_eq!(q.bytes() + rejected, accepted + rejected);
        assert_eq!(q.drops(), (rejected / 150, rejected));
        // Draining returns every accepted byte exactly once.
        let mut drained = 0u64;
        while let Some(p) = q.pop() {
            drained += p.bytes as u64;
        }
        assert_eq!(drained, accepted);
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut q = DropTailQueue::new(10_000, 100);
        q.push(pkt(1, 400)).unwrap();
        q.push(pkt(2, 400)).unwrap();
        q.pop();
        q.push(pkt(3, 100)).unwrap();
        assert_eq!(q.peak_bytes(), 800);
        assert_eq!(q.bytes(), 500);
        assert_eq!(q.enqueued_total(), 3);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = DropTailQueue::new(1000, 10);
        q.push(pkt(7, 10)).unwrap();
        assert_eq!(q.peek().unwrap().id.0, 7);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        DropTailQueue::new(0, 1);
    }
}
