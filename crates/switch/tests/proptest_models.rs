//! Property tests for the data-plane models.

use proptest::prelude::*;
use xds_sim::{BitRate, SimDuration, SimTime};
use xds_switch::{Eps, Ocs, Permutation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// EPS conservation: every offered byte is either delivered (has a
    /// departure time) or counted as dropped; per-port departures are
    /// monotone; occupancy never exceeds the configured buffer.
    #[test]
    fn eps_conserves_and_orders(pkts in proptest::collection::vec((0u64..4, 64u64..9_000, 0u64..2_000), 1..200)) {
        let cap = 20_000u64;
        let mut eps = Eps::new(4, BitRate::GBPS_1, cap);
        let mut now = SimTime::ZERO;
        let mut offered = 0u64;
        let mut delivered = 0u64;
        let mut last_dep = [SimTime::ZERO; 4];
        for &(port, bytes, gap) in &pkts {
            now += SimDuration::from_nanos(gap);
            offered += bytes;
            let p = port as usize;
            if let Ok(dep) = eps.enqueue(p, bytes, now) {
                delivered += bytes;
                prop_assert!(dep >= last_dep[p], "departures must be FIFO-monotone");
                prop_assert!(dep > now, "departure cannot precede arrival");
                last_dep[p] = dep;
            }
            prop_assert!(eps.queued_bytes(p, now) <= cap);
        }
        let s = eps.stats();
        prop_assert_eq!(s.delivered_bytes, delivered);
        prop_assert_eq!(s.delivered_bytes + s.dropped_bytes, offered);
    }

    /// OCS: during the dark window nothing passes; after it, exactly the
    /// configured pairs pass; dark time accounting matches reconfig count.
    #[test]
    fn ocs_dark_window_is_absolute(shift in 1usize..8, reconfig_ns in 1u64..100_000, tries in proptest::collection::vec((0usize..8, 0usize..8), 1..50)) {
        let n = 8;
        let reconfig = SimDuration::from_nanos(reconfig_ns);
        let mut ocs = Ocs::new(n, reconfig);
        let t0 = SimTime::from_micros(1);
        let live = ocs.configure(&Permutation::rotation(n, shift), t0);
        prop_assert_eq!(live, t0 + reconfig);
        // Mid-dark: everything rejected.
        let mid = SimTime::from_nanos(t0.as_nanos() + reconfig_ns / 2);
        if mid < live {
            for &(i, j) in &tries {
                prop_assert!(ocs.transmit(i, j, 100, mid).is_err());
            }
        }
        // Live: exactly the rotation passes.
        for &(i, j) in &tries {
            let ok = ocs.transmit(i, j, 100, live).is_ok();
            prop_assert_eq!(ok, (i + shift) % n == j, "pair ({},{})", i, j);
        }
        prop_assert_eq!(ocs.stats().reconfigurations, 1);
        prop_assert_eq!(ocs.stats().dark_time, reconfig);
    }

    /// Permutations built from random conflict-free pair lists always
    /// satisfy their invariants; conflicting pairs are always rejected.
    #[test]
    fn permutation_construction_is_sound(pairs in proptest::collection::vec((0usize..16, 0usize..16), 0..32)) {
        let mut p = Permutation::empty(16);
        let mut used_in = [false; 16];
        let mut used_out = [false; 16];
        for &(i, o) in &pairs {
            let expect_ok = !used_in[i] && !used_out[o];
            let got = p.set(i, o).is_ok();
            prop_assert_eq!(got, expect_ok, "pair ({},{})", i, o);
            if expect_ok {
                used_in[i] = true;
                used_out[o] = true;
            }
        }
        p.check_invariants().unwrap();
        prop_assert_eq!(p.assigned(), used_in.iter().filter(|&&b| b).count());
    }
}
