//! Pipelined-datapath latency model.
//!
//! A hardware scheduler is a pipeline: demand snapshot → algorithm →
//! grant fan-out. Latency is the sum of stage depths; throughput is set by
//! the initiation interval (a new decision can start every II cycles even
//! while earlier ones are in flight). This is the model used to claim
//! "hardware may not be fast by default, but with proper implementation
//! fast, high performance operation can be achieved" (§3).

use xds_sim::SimDuration;

use crate::clock::ClockDomain;

/// One pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Human-readable stage name (shows up in the F2 latency budget).
    pub name: &'static str,
    /// Stage depth in cycles.
    pub cycles: u64,
}

/// A fixed-function pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    stages: Vec<Stage>,
    initiation_interval: u64,
}

impl Pipeline {
    /// Builds a pipeline; the initiation interval defaults to the deepest
    /// stage (a classic non-superpipelined design).
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        let ii = stages.iter().map(|s| s.cycles).max().expect("non-empty");
        Pipeline {
            stages,
            initiation_interval: ii.max(1),
        }
    }

    /// Overrides the initiation interval (e.g. a fully pipelined II = 1
    /// engine).
    pub fn with_initiation_interval(mut self, ii: u64) -> Self {
        assert!(ii >= 1, "initiation interval must be at least 1");
        self.initiation_interval = ii;
        self
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// End-to-end latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.cycles).sum()
    }

    /// End-to-end latency in time.
    pub fn latency(&self, clock: ClockDomain) -> SimDuration {
        clock.cycles_to_time(self.latency_cycles())
    }

    /// Decisions per second at steady state.
    pub fn decisions_per_sec(&self, clock: ClockDomain) -> f64 {
        clock.freq_hz() as f64 / self.initiation_interval as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pipeline {
        Pipeline::new(vec![
            Stage {
                name: "demand",
                cycles: 4,
            },
            Stage {
                name: "algo",
                cycles: 20,
            },
            Stage {
                name: "grant",
                cycles: 2,
            },
        ])
    }

    #[test]
    fn latency_is_stage_sum() {
        let p = sample();
        assert_eq!(p.latency_cycles(), 26);
        assert_eq!(
            p.latency(ClockDomain::NETFPGA_SUME),
            SimDuration::from_nanos(130)
        );
    }

    #[test]
    fn default_ii_is_deepest_stage() {
        let p = sample();
        // II = 20 cycles at 200 MHz → 10M decisions/s.
        assert!((p.decisions_per_sec(ClockDomain::NETFPGA_SUME) - 10e6).abs() < 1.0);
    }

    #[test]
    fn ii_override() {
        let p = sample().with_initiation_interval(1);
        assert!((p.decisions_per_sec(ClockDomain::NETFPGA_SUME) - 200e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        Pipeline::new(vec![]);
    }
}
