//! End-to-end decision latency of the *hardware* scheduler placement.
//!
//! Figure 2's scheduling logic as a pipeline: demand snapshot (the VOQ
//! status registers are on-chip — reading them is a pipeline stage, not an
//! I/O), the scheduling algorithm, and grant fan-out to processing and
//! switching logic over on-chip wires.

use xds_sim::{SimDuration, SimRng};

use crate::clock::ClockDomain;
use crate::cost::HwAlgo;
use crate::pipeline::{Pipeline, Stage};

/// Timing model of an on-switch (FPGA) scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwSchedulerModel {
    /// The datapath clock.
    pub clock: ClockDomain,
    /// Cycles to snapshot VOQ occupancy into the demand matrix registers.
    pub demand_cycles: u64,
    /// The scheduling algorithm.
    pub algo: HwAlgo,
    /// Cycles to fan the grant matrix out to the VOQ managers and the OCS
    /// driver.
    pub grant_cycles: u64,
}

impl HwSchedulerModel {
    /// The NetFPGA-SUME preset: 200 MHz clock, 4-cycle demand snapshot
    /// (register mux + pipeline), 2-cycle grant fan-out.
    pub fn netfpga_sume(algo: HwAlgo) -> Self {
        HwSchedulerModel {
            clock: ClockDomain::NETFPGA_SUME,
            demand_cycles: 4,
            algo,
            grant_cycles: 2,
        }
    }

    /// The three-stage pipeline (for reports and the F2 latency budget).
    pub fn pipeline(&self, n_ports: usize) -> Pipeline {
        Pipeline::new(vec![
            Stage {
                name: "demand-estimation",
                cycles: self.demand_cycles,
            },
            Stage {
                name: "schedule-computation",
                cycles: self.algo.schedule_cycles(n_ports),
            },
            Stage {
                name: "grant-distribution",
                cycles: self.grant_cycles,
            },
        ])
    }

    /// Total decision latency for an `n_ports` switch. Hardware is
    /// deterministic: no jitter term (the `_rng` parameter exists so both
    /// placements share a call signature).
    pub fn decision_latency(&self, n_ports: usize, _rng: &mut SimRng) -> SimDuration {
        self.pipeline(n_ports).latency(self.clock)
    }

    /// Deterministic latency (for analytic tables).
    pub fn mean_decision_latency(&self, n_ports: usize) -> SimDuration {
        self.pipeline(n_ports).latency(self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sume_islip_latency_is_deterministic_and_sub_microsecond() {
        let m = HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 });
        let mut rng = SimRng::new(0);
        let l1 = m.decision_latency(64, &mut rng);
        let l2 = m.decision_latency(64, &mut rng);
        assert_eq!(l1, l2, "hardware latency must not jitter");
        assert!(l1 < SimDuration::from_micros(1), "latency {l1}");
        assert_eq!(l1, m.mean_decision_latency(64));
    }

    #[test]
    fn pipeline_has_three_named_stages() {
        let m = HwSchedulerModel::netfpga_sume(HwAlgo::Wavefront);
        let p = m.pipeline(16);
        let names: Vec<&str> = p.stages().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "demand-estimation",
                "schedule-computation",
                "grant-distribution"
            ]
        );
        // 4 + (2·16−1) + 2 cycles = 37 cycles = 185 ns at 200 MHz.
        assert_eq!(p.latency_cycles(), 37);
        assert_eq!(m.mean_decision_latency(16), SimDuration::from_nanos(185));
    }

    #[test]
    fn hungarian_in_hardware_is_visibly_slow() {
        let fast = HwSchedulerModel::netfpga_sume(HwAlgo::Islip { iterations: 3 });
        let slow = HwSchedulerModel::netfpga_sume(HwAlgo::Hungarian);
        assert!(
            slow.mean_decision_latency(64) > fast.mean_decision_latency(64) * 100,
            "cubic algorithm should dwarf log-depth one"
        );
    }
}
