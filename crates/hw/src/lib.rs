//! # xds-hw — hardware/software scheduler placement models
//!
//! The paper's central argument is about *where the scheduler runs*:
//!
//! > "Compared to its software counterparts, hardware based schedulers can
//! > match the speeds of fast optical switches … This is inherent due to
//! > their hardware design: allowing quick demand estimation, fast schedule
//! > computation and rapid communication of computed schedules to the
//! > switch."
//!
//! We cannot ship a NetFPGA-SUME bitstream in a Rust crate; per DESIGN.md's
//! substitution table this crate models the *timing* and *capacity* of both
//! placements instead:
//!
//! * [`ClockDomain`] / [`Pipeline`] — cycle-accurate latency of a pipelined
//!   hardware scheduler;
//! * [`HwAlgo`] — per-algorithm cycle-cost models (how many cycles does an
//!   iSLIP iteration or a wavefront sweep take in gateware?);
//! * [`HwSchedulerModel`] / [`SwSchedulerModel`] — end-to-end decision
//!   latency for the hardware and software paths (the software path
//!   includes I/O round-trips and OS jitter — the §2 latency terms);
//! * [`SyncModel`] — host↔switch clock skew/drift and the guard bands they
//!   force (§2's "tight synchronization" argument, experiment E8);
//! * [`resources`] — LUT/FF/BRAM estimates checked against the
//!   NetFPGA-SUME's Virtex-7 690T capacity (experiment E7).

#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod hw_model;
pub mod pipeline;
pub mod resources;
pub mod sw_model;
pub mod sync;

pub use clock::ClockDomain;
pub use cost::HwAlgo;
pub use hw_model::HwSchedulerModel;
pub use pipeline::{Pipeline, Stage};
pub use resources::{ResourceEstimate, SUME_CAPACITY};
pub use sw_model::SwSchedulerModel;
pub use sync::SyncModel;
