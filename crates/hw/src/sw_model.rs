//! End-to-end decision latency of the *software* scheduler placement.
//!
//! §2 itemizes why software schedulers sit at milliseconds: "delays during
//! demand estimation, schedule calculation, Input/Output (IO) processing,
//! propagation delay between host and switch". The model has one term per
//! cause:
//!
//! * **I/O round trip** — reading VOQ/demand counters and writing the
//!   schedule over PCIe/driver/socket paths (one RTT each way, sampled);
//! * **compute** — base cost plus a per-matrix-entry term (demand matrices
//!   are n², and a software scheduler walks them sequentially);
//! * **OS jitter** — log-normal scheduling noise (deferred interrupts,
//!   scheduler preemption), occasionally catastrophic — exactly the tail
//!   that breaks tight synchronization.

use xds_sim::{Dist, Sample, SimDuration, SimRng};

/// Timing model of an off-switch (host software) scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SwSchedulerModel {
    /// One-way I/O latency distribution (applied twice: read demand, write
    /// schedule), nanoseconds.
    pub io_oneway_ns: Dist,
    /// Fixed compute cost, nanoseconds.
    pub base_compute_ns: f64,
    /// Per demand-matrix-entry compute cost, nanoseconds (× n²).
    pub per_entry_ns: f64,
    /// OS jitter distribution, nanoseconds (added once per decision).
    pub os_jitter_ns: Dist,
}

impl SwSchedulerModel {
    /// A kernel-driver control plane (ioctl + DMA descriptors): ~30 µs I/O
    /// one-way, ~100 µs-scale jitter tail. Lands at ~0.1–1 ms per decision
    /// — the paper's "order of milliseconds" regime for larger ports.
    pub fn kernel_driver() -> Self {
        SwSchedulerModel {
            io_oneway_ns: Dist::LogNormal {
                mu: (30_000.0f64).ln(),
                sigma: 0.4,
            },
            base_compute_ns: 20_000.0,
            per_entry_ns: 60.0,
            os_jitter_ns: Dist::LogNormal {
                mu: (80_000.0f64).ln(),
                sigma: 1.0,
            },
        }
    }

    /// A tuned userspace control plane (kernel-bypass I/O, pinned cores):
    /// ~5 µs I/O, small jitter. The best software can do; still 100× the
    /// hardware path.
    pub fn tuned_userspace() -> Self {
        SwSchedulerModel {
            io_oneway_ns: Dist::LogNormal {
                mu: (5_000.0f64).ln(),
                sigma: 0.2,
            },
            base_compute_ns: 5_000.0,
            per_entry_ns: 25.0,
            os_jitter_ns: Dist::LogNormal {
                mu: (3_000.0f64).ln(),
                sigma: 0.5,
            },
        }
    }

    /// A naive socket-based controller (the c-Through/Helios era control
    /// path): millisecond I/O and heavy jitter.
    pub fn naive_socket() -> Self {
        SwSchedulerModel {
            io_oneway_ns: Dist::LogNormal {
                mu: (500_000.0f64).ln(),
                sigma: 0.5,
            },
            base_compute_ns: 200_000.0,
            per_entry_ns: 150.0,
            os_jitter_ns: Dist::LogNormal {
                mu: (1_000_000.0f64).ln(),
                sigma: 1.2,
            },
        }
    }

    /// Samples one decision latency for an `n_ports` switch.
    pub fn decision_latency(&self, n_ports: usize, rng: &mut SimRng) -> SimDuration {
        let io = self.io_oneway_ns.sample(rng) + self.io_oneway_ns.sample(rng);
        let compute = self.base_compute_ns + self.per_entry_ns * (n_ports * n_ports) as f64;
        let jitter = self.os_jitter_ns.sample(rng);
        SimDuration::from_nanos((io + compute + jitter).max(0.0) as u64)
    }

    /// Analytic mean decision latency (for tables; uses distribution
    /// means).
    pub fn mean_decision_latency(&self, n_ports: usize) -> SimDuration {
        let io = 2.0 * self.io_oneway_ns.mean().expect("io dist has a mean");
        let compute = self.base_compute_ns + self.per_entry_ns * (n_ports * n_ports) as f64;
        let jitter = self.os_jitter_ns.mean().expect("jitter dist has a mean");
        SimDuration::from_nanos((io + compute + jitter) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_sampled(m: &SwSchedulerModel, n_ports: usize) -> f64 {
        let mut rng = SimRng::new(33);
        let k = 20_000;
        (0..k)
            .map(|_| m.decision_latency(n_ports, &mut rng).as_nanos() as f64)
            .sum::<f64>()
            / k as f64
    }

    #[test]
    fn presets_land_in_their_documented_regimes() {
        // 64-port demand matrix.
        let kernel = mean_sampled(&SwSchedulerModel::kernel_driver(), 64);
        let tuned = mean_sampled(&SwSchedulerModel::tuned_userspace(), 64);
        let naive = mean_sampled(&SwSchedulerModel::naive_socket(), 64);
        assert!(
            (100_000.0..2_000_000.0).contains(&kernel),
            "kernel driver ~0.1-2ms, got {kernel}ns"
        );
        assert!(
            (50_000.0..500_000.0).contains(&tuned),
            "tuned userspace ~0.05-0.5ms, got {tuned}ns"
        );
        assert!(naive > 2_000_000.0, "naive socket >2ms, got {naive}ns");
        // Ordering is the point.
        assert!(tuned < kernel && kernel < naive);
    }

    #[test]
    fn sampled_mean_tracks_analytic_mean() {
        let m = SwSchedulerModel::kernel_driver();
        let analytic = m.mean_decision_latency(32).as_nanos() as f64;
        let sampled = mean_sampled(&m, 32);
        assert!(
            (sampled - analytic).abs() / analytic < 0.15,
            "sampled {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn latency_grows_with_port_count() {
        let m = SwSchedulerModel::kernel_driver();
        assert!(m.mean_decision_latency(256) > m.mean_decision_latency(16));
    }

    #[test]
    fn software_has_jitter_hardware_does_not() {
        let m = SwSchedulerModel::tuned_userspace();
        let mut rng = SimRng::new(7);
        let a = m.decision_latency(16, &mut rng);
        let b = m.decision_latency(16, &mut rng);
        assert_ne!(a, b, "software decision latency must vary");
    }
}
