//! Clock domains: cycles ↔ simulated time.

use xds_sim::SimDuration;

/// A synchronous clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    freq_hz: u64,
}

impl ClockDomain {
    /// The NetFPGA-SUME datapath clock used by our models: 200 MHz
    /// (the SUME reference designs run their 256-bit AXI4-Stream datapath
    /// at 200 MHz to sustain 4×10GbE).
    pub const NETFPGA_SUME: ClockDomain = ClockDomain::from_mhz(200);

    /// Creates a domain from a frequency in Hz.
    pub const fn from_hz(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be positive");
        ClockDomain { freq_hz }
    }

    /// Creates a domain from a frequency in MHz.
    pub const fn from_mhz(mhz: u64) -> Self {
        ClockDomain::from_hz(mhz * 1_000_000)
    }

    /// Frequency in Hz.
    pub const fn freq_hz(self) -> u64 {
        self.freq_hz
    }

    /// The period of one cycle, rounded up to the nanosecond grid the
    /// simulator uses (a 200 MHz cycle is 5 ns exactly).
    pub fn cycle_time(self) -> SimDuration {
        self.cycles_to_time(1)
    }

    /// Duration of `cycles` cycles, rounded up to whole nanoseconds.
    pub fn cycles_to_time(self, cycles: u64) -> SimDuration {
        let ns = (cycles as u128 * 1_000_000_000).div_ceil(self.freq_hz as u128);
        SimDuration::from_nanos(ns as u64)
    }

    /// Whole cycles elapsing within `d` (rounded down).
    pub fn time_to_cycles(self, d: SimDuration) -> u64 {
        (d.as_nanos() as u128 * self.freq_hz as u128 / 1_000_000_000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sume_clock_is_5ns() {
        assert_eq!(
            ClockDomain::NETFPGA_SUME.cycle_time(),
            SimDuration::from_nanos(5)
        );
        assert_eq!(
            ClockDomain::NETFPGA_SUME.cycles_to_time(200),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn non_divisible_frequencies_round_up() {
        // 156.25 MHz → 6.4 ns/cycle → rounds to 7 ns.
        let c = ClockDomain::from_hz(156_250_000);
        assert_eq!(c.cycles_to_time(1), SimDuration::from_nanos(7));
        // But multi-cycle spans keep the error sub-cycle: 10 cycles = 64 ns.
        assert_eq!(c.cycles_to_time(10), SimDuration::from_nanos(64));
    }

    #[test]
    fn time_to_cycles_inverts() {
        let c = ClockDomain::NETFPGA_SUME;
        assert_eq!(c.time_to_cycles(SimDuration::from_micros(1)), 200);
        assert_eq!(c.time_to_cycles(SimDuration::from_nanos(4)), 0);
    }
}
