//! Host↔switch synchronization model.
//!
//! §2: software scheduling "requires tight synchronization between the
//! host and switch, which is difficult to achieve at faster switching
//! times and higher transmission rates". When hosts hold the packets
//! (slow scheduling), a host's notion of "my grant window starts now" is
//! wrong by its clock offset; packets that arrive at the switch outside
//! the configured window hit a dark or re-purposed circuit.
//!
//! The model: each host has a bounded offset (uniform in ±`skew_bound`)
//! that drifts between resynchronizations. The guard band a deployment
//! needs is `skew + drift·resync_interval` on *each side* of a slot —
//! capacity that is pure overhead, and proportionally worse the shorter
//! the slots (i.e. the faster the switching — the paper's argument).

use xds_sim::{SimDuration, SimRng};

/// Clock-synchronization quality between hosts and the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncModel {
    /// Bound on the residual offset right after a resync.
    pub skew_bound: SimDuration,
    /// Oscillator drift in parts-per-billion.
    pub drift_ppb: u64,
    /// Interval between resynchronizations.
    pub resync_interval: SimDuration,
}

impl SyncModel {
    /// Perfect synchronization (hardware scheduler: grants never leave the
    /// chip, there is nothing to synchronize).
    pub fn perfect() -> Self {
        SyncModel {
            skew_bound: SimDuration::ZERO,
            drift_ppb: 0,
            resync_interval: SimDuration::from_secs(1),
        }
    }

    /// PTP-grade synchronization: ~1 µs skew, 10 ppb drift, 1 s resync.
    pub fn ptp() -> Self {
        SyncModel {
            skew_bound: SimDuration::from_micros(1),
            drift_ppb: 10,
            resync_interval: SimDuration::from_secs(1),
        }
    }

    /// NTP-grade synchronization: ~1 ms skew (LAN), 100 ppb drift.
    pub fn ntp() -> Self {
        SyncModel {
            skew_bound: SimDuration::from_millis(1),
            drift_ppb: 100,
            resync_interval: SimDuration::from_secs(16),
        }
    }

    /// Maximum drift accumulated between resyncs.
    pub fn max_drift(&self) -> SimDuration {
        let ns = self.resync_interval.as_nanos() as u128 * self.drift_ppb as u128 / 1_000_000_000;
        SimDuration::from_nanos(ns as u64)
    }

    /// The worst-case offset any host can have at any time.
    pub fn worst_offset(&self) -> SimDuration {
        self.skew_bound + self.max_drift()
    }

    /// The guard band needed per slot edge to guarantee no dark-window
    /// violations.
    pub fn guard_needed(&self) -> SimDuration {
        self.worst_offset()
    }

    /// Samples a host's current offset in nanoseconds (signed: positive =
    /// host clock ahead of the switch).
    pub fn sample_offset_ns(&self, rng: &mut SimRng) -> i64 {
        let bound = self.worst_offset().as_nanos();
        if bound == 0 {
            return 0;
        }
        let mag = rng.below(2 * bound + 1) as i64;
        mag - bound as i64
    }

    /// Fraction of a slot wasted on guard bands (both edges) — the
    /// efficiency cost of synchronization at a given slot length.
    pub fn guard_overhead(&self, slot: SimDuration) -> f64 {
        if slot.is_zero() {
            return 1.0;
        }
        let g = 2 * self.guard_needed().as_nanos();
        (g as f64 / slot.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_sync_is_zero_everything() {
        let s = SyncModel::perfect();
        assert_eq!(s.guard_needed(), SimDuration::ZERO);
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(s.sample_offset_ns(&mut rng), 0);
        }
        assert_eq!(s.guard_overhead(SimDuration::from_micros(10)), 0.0);
    }

    #[test]
    fn drift_accumulates_between_resyncs() {
        let s = SyncModel {
            skew_bound: SimDuration::from_nanos(100),
            drift_ppb: 1000, // 1 µs per second
            resync_interval: SimDuration::from_secs(2),
        };
        assert_eq!(s.max_drift(), SimDuration::from_micros(2));
        assert_eq!(s.worst_offset(), SimDuration::from_nanos(2_100));
    }

    #[test]
    fn offsets_are_bounded_and_two_sided() {
        let s = SyncModel::ptp();
        let bound = s.worst_offset().as_nanos() as i64;
        let mut rng = SimRng::new(5);
        let mut saw_positive = false;
        let mut saw_negative = false;
        for _ in 0..10_000 {
            let o = s.sample_offset_ns(&mut rng);
            assert!(o.abs() <= bound, "offset {o} beyond ±{bound}");
            saw_positive |= o > 0;
            saw_negative |= o < 0;
        }
        assert!(saw_positive && saw_negative);
    }

    #[test]
    fn guard_overhead_explodes_for_short_slots() {
        // The quantitative form of §2's synchronization argument: PTP
        // guard bands are negligible for millisecond slots but eat
        // microsecond slots whole.
        let s = SyncModel::ptp();
        let slow_slots = s.guard_overhead(SimDuration::from_millis(10));
        let fast_slots = s.guard_overhead(SimDuration::from_micros(2));
        assert!(slow_slots < 0.01, "ms slots lose {slow_slots}");
        assert!(fast_slots >= 1.0, "µs slots lose {fast_slots}");
    }

    #[test]
    fn ntp_is_far_worse_than_ptp() {
        assert!(SyncModel::ntp().worst_offset() > SyncModel::ptp().worst_offset() * 100);
    }
}
