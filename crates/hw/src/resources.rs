//! FPGA resource estimation against the NetFPGA-SUME part.
//!
//! The SUME carries a Xilinx Virtex-7 XC7VX690T. Experiment E7 uses these
//! models to answer the feasibility question behind §3: *does the proposed
//! scheduler framework actually fit the board as ports scale?* The models
//! are first-order synthesis estimates (documented per term), not
//! place-and-route results; they reproduce the scaling shape, which is what
//! the experiment needs.

use crate::cost::HwAlgo;

/// Resource capacity of a target device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capacity {
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
}

/// The NetFPGA-SUME's Virtex-7 XC7VX690T.
pub const SUME_CAPACITY: Capacity = Capacity {
    luts: 433_200,
    ffs: 866_400,
    bram36: 1_470,
};

/// Estimated resource usage of a scheduler + VOQ subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceEstimate {
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
}

impl ResourceEstimate {
    /// Componentwise sum.
    pub fn plus(self, other: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            bram36: self.bram36 + other.bram36,
        }
    }

    /// Does the design fit the device?
    pub fn fits(&self, cap: Capacity) -> bool {
        self.luts <= cap.luts && self.ffs <= cap.ffs && self.bram36 <= cap.bram36
    }

    /// Utilization of the scarcest resource, as a fraction.
    pub fn worst_utilization(&self, cap: Capacity) -> f64 {
        let l = self.luts as f64 / cap.luts as f64;
        let f = self.ffs as f64 / cap.ffs as f64;
        let b = self.bram36 as f64 / cap.bram36 as f64;
        l.max(f).max(b)
    }
}

/// Estimates the scheduler core for `n` ports.
///
/// Terms:
/// * arbiters: iSLIP-class engines instantiate 2n programmable priority
///   encoders of width n (~`n/2` LUTs each) plus pointer registers;
/// * demand matrix: n² occupancy counters (16-bit) in FFs with LUT
///   compare/update logic;
/// * wavefront: n² crosspoint cells (~2 LUTs each);
/// * Hungarian: dominated by an n×n weight matrix datapath and sequential
///   control (~8 LUTs per cell) — big, and still slow (see
///   [`HwAlgo::schedule_cycles`]).
pub fn scheduler_core(algo: HwAlgo, n: usize) -> ResourceEstimate {
    let n = n as u64;
    let n2 = n * n;
    let demand = ResourceEstimate {
        luts: n2 * 3,
        ffs: n2 * 16,
        bram36: 0,
    };
    let engine = match algo {
        HwAlgo::Tdma => ResourceEstimate {
            luts: 64,
            ffs: 64,
            bram36: 0,
        },
        HwAlgo::Islip { .. } | HwAlgo::Pim { .. } | HwAlgo::Rrm { .. } => ResourceEstimate {
            luts: 2 * n * (n / 2 + 8),
            ffs: 2 * n * (n + 8),
            bram36: 0,
        },
        HwAlgo::Wavefront => ResourceEstimate {
            luts: n2 * 2,
            ffs: n2,
            bram36: 0,
        },
        HwAlgo::GreedyLqf => ResourceEstimate {
            luts: n2 * 2 + n * 32,
            ffs: n2 + n * 48,
            bram36: 0,
        },
        HwAlgo::Hungarian => ResourceEstimate {
            luts: n2 * 8,
            ffs: n2 * 24,
            bram36: n2 / 64,
        },
        HwAlgo::Bvn { .. } | HwAlgo::Solstice { .. } => ResourceEstimate {
            luts: n2 * 4 + n * 64,
            ffs: n2 * 8 + n * 64,
            bram36: n2 / 128,
        },
    };
    demand.plus(engine)
}

/// Estimates the VOQ buffering subsystem: `n²` queues of `bytes_per_voq`
/// pooled into BRAM (36 Kb blocks hold 4 KB; small VOQs share blocks via
/// a segmented buffer manager, as real designs do), plus per-queue
/// pointer/state logic.
pub fn voq_subsystem(n: usize, bytes_per_voq: u64) -> ResourceEstimate {
    let n = n as u64;
    let n2 = n * n;
    ResourceEstimate {
        luts: n2 * 12,
        ffs: n2 * 24,
        bram36: (n2 * bytes_per_voq).div_ceil(4096),
    }
}

/// Full design: scheduler + VOQs + fixed infrastructure (MACs, DMA, AXI
/// interconnect ≈ the NetFPGA reference pipeline's footprint).
pub fn full_design(algo: HwAlgo, n: usize, bytes_per_voq: u64) -> ResourceEstimate {
    let infra = ResourceEstimate {
        luts: 60_000,
        ffs: 90_000,
        bram36: 200,
    };
    scheduler_core(algo, n)
        .plus(voq_subsystem(n, bytes_per_voq))
        .plus(infra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_islip_design_fits_sume() {
        // 16 ports with 8 KB per VOQ — the nanosecond-switching regime of
        // Figure 1, where per-VOQ buffering is kilobytes.
        let est = full_design(HwAlgo::Islip { iterations: 3 }, 16, 8_192);
        assert!(est.fits(SUME_CAPACITY), "16-port design must fit: {est:?}");
        assert!(est.worst_utilization(SUME_CAPACITY) < 0.8);
    }

    #[test]
    fn buffering_for_millisecond_switching_does_not_fit() {
        // Figure 1's point in resource terms: a 64-port switch that must
        // buffer ~1 ms of line rate per VOQ cannot hold it in BRAM.
        // 1 ms at 10 Gb/s = 1.25 MB per port; even 1/64 of that per VOQ
        // explodes the BRAM budget.
        let est = full_design(HwAlgo::Islip { iterations: 3 }, 64, 1_250_000 / 64);
        assert!(
            !est.fits(SUME_CAPACITY),
            "ms-scale buffering should exceed BRAM: {est:?}"
        );
        // Whereas nanosecond switching needs only ~KB per VOQ, which the
        // pooled BRAM holds comfortably.
        let fast = full_design(HwAlgo::Islip { iterations: 3 }, 64, 1_024);
        assert!(fast.fits(SUME_CAPACITY), "KB-scale VOQs must fit: {fast:?}");
    }

    #[test]
    fn utilization_grows_with_ports() {
        let a = scheduler_core(HwAlgo::Wavefront, 16);
        let b = scheduler_core(HwAlgo::Wavefront, 64);
        assert!(b.luts > 10 * a.luts, "n² scaling expected");
    }

    #[test]
    fn hungarian_is_the_heaviest_core() {
        let h = scheduler_core(HwAlgo::Hungarian, 64);
        let i = scheduler_core(HwAlgo::Islip { iterations: 3 }, 64);
        let w = scheduler_core(HwAlgo::Wavefront, 64);
        assert!(h.luts > i.luts && h.luts > w.luts);
    }

    #[test]
    fn plus_and_fits_arithmetic() {
        let a = ResourceEstimate {
            luts: 10,
            ffs: 20,
            bram36: 1,
        };
        let b = a.plus(a);
        assert_eq!(b.luts, 20);
        let tiny = Capacity {
            luts: 19,
            ffs: 100,
            bram36: 10,
        };
        assert!(!b.fits(tiny));
        assert!(a.fits(tiny));
        assert!((a.worst_utilization(tiny) - 10.0 / 19.0).abs() < 1e-12);
    }
}
