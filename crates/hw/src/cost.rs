//! Hardware cycle-cost models per scheduling algorithm.
//!
//! These are engineering estimates of what each algorithm costs when
//! synthesized as gateware, with the parallelism hardware actually offers.
//! They drive experiment E7 (scalability) and explain *why* the
//! hardware-friendly algorithms (iSLIP, wavefront, TDMA) are the ones
//! proposed for on-switch scheduling while optimal matchings (Hungarian)
//! stay in software:
//!
//! | algorithm | model | rationale |
//! |---|---|---|
//! | TDMA | 1 cycle | a counter |
//! | iSLIP/PIM/RRM | `iters × (2·⌈log₂n⌉ + 2)` | all N grant + accept arbiters run in parallel; each is a `⌈log₂n⌉`-deep priority-encoder tree, one cycle of pointer update each phase |
//! | wavefront | `2n − 1` | one diagonal of the crossbar per cycle |
//! | greedy LQF | `n·⌈log₂n⌉` | iterative max-selection over a comparator tree, one row/column eliminated per pick |
//! | Hungarian | `n³ / 4` | textbook O(n³) with modest 4-way ILP — *not* line-rate feasible beyond small n |
//! | BvN/TMS | `perms × (n·⌈log₂n⌉ + n)` | one augmenting-path matching per extracted permutation |
//! | Solstice | `perms × (n·⌈log₂n⌉ + n)` | same engine, threshold-halving selection |

/// Scheduling algorithms with hardware cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwAlgo {
    /// Static rotation — a slot counter.
    Tdma,
    /// iSLIP with the given iteration count.
    Islip {
        /// Number of request–grant–accept iterations.
        iterations: u32,
    },
    /// Parallel iterative matching (random arbiters).
    Pim {
        /// Number of iterations.
        iterations: u32,
    },
    /// Round-robin matching (single-pointer arbiters).
    Rrm {
        /// Number of iterations.
        iterations: u32,
    },
    /// Wavefront arbiter (diagonal sweep of the crossbar).
    Wavefront,
    /// Greedy longest-queue-first maximal matching.
    GreedyLqf,
    /// Hungarian maximum-weight matching (software-class algorithm).
    Hungarian,
    /// Birkhoff–von-Neumann / TMS decomposition extracting `perms`
    /// permutations.
    Bvn {
        /// Number of permutations extracted.
        perms: u32,
    },
    /// Solstice-style greedy hybrid decomposition extracting `perms`
    /// configurations.
    Solstice {
        /// Number of configurations extracted.
        perms: u32,
    },
}

fn ceil_log2(n: usize) -> u64 {
    debug_assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

impl HwAlgo {
    /// Estimated cycles to compute one schedule for an `n_ports` switch.
    pub fn schedule_cycles(self, n_ports: usize) -> u64 {
        assert!(n_ports >= 2, "need at least 2 ports");
        let n = n_ports as u64;
        let log = ceil_log2(n_ports).max(1);
        match self {
            HwAlgo::Tdma => 1,
            HwAlgo::Islip { iterations }
            | HwAlgo::Pim { iterations }
            | HwAlgo::Rrm { iterations } => iterations as u64 * (2 * log + 2),
            HwAlgo::Wavefront => 2 * n - 1,
            HwAlgo::GreedyLqf => n * log,
            HwAlgo::Hungarian => (n * n * n) / 4,
            HwAlgo::Bvn { perms } | HwAlgo::Solstice { perms } => perms as u64 * (n * log + n),
        }
    }

    /// Whether the algorithm is considered synthesizable at line-rate
    /// decision cadence (the paper's "hardware may not be fast by default"
    /// point: only parallel-friendly algorithms earn their place on the
    /// FPGA).
    pub fn is_hw_friendly(self) -> bool {
        !matches!(self, HwAlgo::Hungarian)
    }

    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            HwAlgo::Tdma => "tdma".into(),
            HwAlgo::Islip { iterations } => format!("islip_i{iterations}"),
            HwAlgo::Pim { iterations } => format!("pim_i{iterations}"),
            HwAlgo::Rrm { iterations } => format!("rrm_i{iterations}"),
            HwAlgo::Wavefront => "wavefront".into(),
            HwAlgo::GreedyLqf => "greedy_lqf".into(),
            HwAlgo::Hungarian => "hungarian".into(),
            HwAlgo::Bvn { perms } => format!("bvn_p{perms}"),
            HwAlgo::Solstice { perms } => format!("solstice_p{perms}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn tdma_is_one_cycle() {
        assert_eq!(HwAlgo::Tdma.schedule_cycles(64), 1);
    }

    #[test]
    fn islip_scales_logarithmically() {
        let a = HwAlgo::Islip { iterations: 1 }.schedule_cycles(16); // 2*4+2 = 10
        let b = HwAlgo::Islip { iterations: 1 }.schedule_cycles(256); // 2*8+2 = 18
        assert_eq!(a, 10);
        assert_eq!(b, 18);
        // 16× more ports < 2× more cycles — the hardware-parallelism story.
        assert!(b < 2 * a);
        // Iterations scale linearly.
        assert_eq!(HwAlgo::Islip { iterations: 4 }.schedule_cycles(16), 4 * a);
    }

    #[test]
    fn hungarian_explodes_cubically() {
        let small = HwAlgo::Hungarian.schedule_cycles(8);
        let big = HwAlgo::Hungarian.schedule_cycles(64);
        assert_eq!(small, 128);
        assert_eq!(big, 65_536);
        assert!(!HwAlgo::Hungarian.is_hw_friendly());
        assert!(HwAlgo::Islip { iterations: 3 }.is_hw_friendly());
    }

    #[test]
    fn wavefront_is_linear_in_ports() {
        assert_eq!(HwAlgo::Wavefront.schedule_cycles(64), 127);
    }

    #[test]
    fn decomposition_cost_scales_with_perms() {
        let one = HwAlgo::Bvn { perms: 1 }.schedule_cycles(32);
        let four = HwAlgo::Bvn { perms: 4 }.schedule_cycles(32);
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn labels_distinguish_parameters() {
        assert_eq!(HwAlgo::Islip { iterations: 3 }.label(), "islip_i3");
        assert_eq!(HwAlgo::Bvn { perms: 8 }.label(), "bvn_p8");
    }

    /// The headline comparison the paper's §2 implies: at 64 ports and
    /// 200 MHz, a hardware iSLIP decision is ~100 ns while a software
    /// scheduler is ~milliseconds — five orders of magnitude.
    #[test]
    fn hw_decision_for_64_ports_is_sub_microsecond() {
        use crate::clock::ClockDomain;
        let cycles = HwAlgo::Islip { iterations: 3 }.schedule_cycles(64);
        let latency = ClockDomain::NETFPGA_SUME.cycles_to_time(cycles);
        assert!(
            latency < xds_sim::SimDuration::from_micros(1),
            "latency {latency}"
        );
    }
}
