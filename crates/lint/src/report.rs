//! Finding type and the one-line reporter format.

use std::fmt;

/// One determinism-contract violation (or waiver-hygiene error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired (`wall-clock`, …, or `waiver` for hygiene errors).
    pub rule: &'static str,
    /// Human-readable description, including the offending token.
    pub message: String,
}

impl fmt::Display for Finding {
    /// `file:line: rule: message` — one line, `file:line` first so
    /// terminals and editors link it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Sorts findings into the canonical report order: path, then line,
/// then rule — byte-identical output for identical inputs.
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_editor_linkable() {
        let f = Finding {
            path: "crates/core/src/runtime.rs".into(),
            line: 42,
            rule: "wall-clock",
            message: "`Instant::now`: host clock read".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/core/src/runtime.rs:42: wall-clock: `Instant::now`: host clock read"
        );
    }
}
