//! Comment/string-stripping lexer and waiver extractor.
//!
//! `xlint` works on a *cleaned* view of each source file: every comment
//! and every string/char-literal body is replaced by spaces (one space
//! per character, newlines preserved), so line numbers in findings are
//! exact and a rule needle like `Instant::now` can never match prose, a
//! doc comment or a test's expected-output string. The stripper is a
//! small hand-rolled scanner — no `syn`, consistent with the
//! vendored-subset build policy — that understands the token classes
//! that matter for not mis-lexing real Rust: line comments, nested block
//! comments, plain/byte strings with escapes, raw strings with `#`
//! fences, char literals, and lifetimes (which look like unterminated
//! char literals and must *not* swallow the rest of the file).
//!
//! While stripping, the lexer records every determinism-contract
//! **waiver** comment it sees:
//!
//! ```text
//! // xlint: allow(<rule>) — <justification>
//! ```
//!
//! A waiver suppresses findings of `<rule>` on its own line and on the
//! line directly below (so it can sit above a wrapped expression). It
//! must be a plain `//` comment — doc comments never enact waivers, so
//! documentation (like this) can quote the syntax freely. The
//! justification is mandatory and the rule engine errors on waivers
//! that match nothing — see [`crate::rules`].

/// One parsed `xlint: allow(...)` waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based source line the waiver comment sits on.
    pub line: usize,
    /// Rule name inside `allow(...)` (not validated here).
    pub rule: String,
    /// Free-text justification after the `—`/`--` separator; empty when
    /// the author omitted it (the rule engine reports that as an error).
    pub justification: String,
    /// Whether the comment parsed as well-formed waiver syntax. A
    /// comment that mentions `xlint:` but cannot be parsed is reported
    /// instead of silently ignored — a typo must not disable a rule.
    pub well_formed: bool,
}

/// A source file with comments and literal bodies blanked out, plus the
/// waivers its comments carried.
#[derive(Debug)]
pub struct Cleaned {
    /// Same length and line structure as the input; comment and literal
    /// characters replaced by spaces.
    pub text: String,
    /// Every `xlint:` comment found, in source order.
    pub waivers: Vec<Waiver>,
}

/// Strips comments and string/char-literal bodies from `source`.
pub fn clean(source: &str) -> Cleaned {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut waivers = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes `c` to the cleaned output, blanked unless it is a newline.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. `///` docs): capture its text for
                // waiver parsing, blank it in the output.
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                // Waivers are plain `//` comments only: doc comments
                // (`///`, `//!`) describe code — rule documentation
                // must be able to quote the syntax without enacting it.
                let is_doc = comment.starts_with("///") || comment.starts_with("//!");
                if !is_doc {
                    if let Some(w) = parse_waiver(&comment, line) {
                        waivers.push(w);
                    }
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        blank(&mut out, '/');
                        blank(&mut out, '*');
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        blank(&mut out, '*');
                        blank(&mut out, '/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        blank(&mut out, chars[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                // String literal. Look back over `#` fences for a raw
                // prefix (`r"`, `r#"`, `br#"`, …): raw strings have no
                // escapes and close on `"` + the same number of `#`s.
                let mut hashes = 0usize;
                let mut j = i;
                while j > 0 && chars[j - 1] == '#' {
                    hashes += 1;
                    j -= 1;
                }
                let raw = j > 0 && (chars[j - 1] == 'r');
                out.push('"');
                i += 1;
                if raw {
                    while i < chars.len() {
                        if chars[i] == '"'
                            && chars[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        blank(&mut out, chars[i]);
                        i += 1;
                    }
                } else {
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => {
                                blank(&mut out, '\\');
                                i += 1;
                                if i < chars.len() {
                                    if chars[i] == '\n' {
                                        line += 1;
                                    }
                                    blank(&mut out, chars[i]);
                                    i += 1;
                                }
                            }
                            '"' => {
                                out.push('"');
                                i += 1;
                                break;
                            }
                            ch => {
                                if ch == '\n' {
                                    line += 1;
                                }
                                blank(&mut out, ch);
                                i += 1;
                            }
                        }
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. `'\x'`-style and `'c'` are
                // literals; `'ident` (no closing quote right after one
                // char) is a lifetime and passes through untouched.
                if chars.get(i + 1) == Some(&'\\') {
                    out.push('\'');
                    i += 1; // past '
                    blank(&mut out, '\\');
                    i += 1; // past backslash
                    while i < chars.len() && chars[i] != '\'' {
                        blank(&mut out, chars[i]);
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push('\'');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    out.push('\'');
                    blank(&mut out, chars[i + 1]);
                    out.push('\'');
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            '\n' => {
                line += 1;
                out.push('\n');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }

    Cleaned { text: out, waivers }
}

/// Parses one line-comment's text as a waiver, if it mentions `xlint:`.
///
/// Returns `None` for ordinary comments. A comment that *does* say
/// `xlint:` always yields a [`Waiver`]; malformed syntax is flagged via
/// `well_formed = false` so the rule engine can report it.
fn parse_waiver(comment: &str, line: usize) -> Option<Waiver> {
    let at = comment.find("xlint:")?;
    let rest = comment[at + "xlint:".len()..].trim_start();
    let malformed = |_: ()| Waiver {
        line,
        rule: String::new(),
        justification: String::new(),
        well_formed: false,
    };
    let Some(body) = rest.strip_prefix("allow(") else {
        return Some(malformed(()));
    };
    let Some(close) = body.find(')') else {
        return Some(malformed(()));
    };
    let rule = body[..close].trim().to_string();
    if rule.is_empty() {
        return Some(malformed(()));
    }
    // Justification: everything after the closing paren, minus the
    // customary `—` / `--` / `-` separator.
    let mut just = body[close + 1..].trim_start();
    for sep in ["—", "--", "-"] {
        if let Some(j) = just.strip_prefix(sep) {
            just = j;
            break;
        }
    }
    Some(Waiver {
        line,
        rule,
        justification: just.trim().to_string(),
        well_formed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = \"Instant::now\"; // Instant::now in prose\nlet b = 1;\n";
        let c = clean(src);
        assert!(!c.text.contains("Instant::now"));
        assert!(c.text.contains("let a = \""));
        assert!(c.text.contains("let b = 1;"));
        assert_eq!(c.text.lines().count(), src.lines().count());
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* outer /* HashMap */ still comment */ code\nlet r = r#\"std::thread \"quoted\"\"#;\n";
        let c = clean(src);
        assert!(!c.text.contains("HashMap"));
        assert!(!c.text.contains("std::thread"));
        assert!(c.text.contains("code"));
        assert!(c.text.contains("let r = r#\""));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) -> char { 'y' }\n";
        let c = clean(src);
        assert!(c.text.contains("<'a>"));
        assert!(c.text.contains("&'a str"));
        assert!(!c.text.contains("'y'"));
        let esc = clean("let c = '\\n'; let l: &'static str = \"\";\n");
        assert!(esc.text.contains("'static"));
        assert!(!esc.text.contains("\\n"));
    }

    #[test]
    fn waiver_parses_with_each_separator() {
        for sep in ["—", "--", "-"] {
            let src = format!("x(); // xlint: allow(wall-clock) {sep} phase timing\n");
            let c = clean(&src);
            assert_eq!(c.waivers.len(), 1, "sep {sep:?}");
            let w = &c.waivers[0];
            assert!(w.well_formed);
            assert_eq!(w.line, 1);
            assert_eq!(w.rule, "wall-clock");
            assert_eq!(w.justification, "phase timing");
        }
    }

    #[test]
    fn waiver_without_justification_is_empty_not_dropped() {
        let c = clean("// xlint: allow(random-state)\n");
        assert_eq!(c.waivers.len(), 1);
        assert!(c.waivers[0].well_formed);
        assert!(c.waivers[0].justification.is_empty());
    }

    #[test]
    fn malformed_waiver_is_flagged() {
        let c = clean("// xlint: alow(wall-clock) — typo\n");
        assert_eq!(c.waivers.len(), 1);
        assert!(!c.waivers[0].well_formed);
    }

    #[test]
    fn waiver_line_numbers_track_multiline_constructs() {
        let src =
            "let s = \"line\none\";\n/* block\ncomment */\n// xlint: allow(thread-spawn) — here\n";
        let c = clean(src);
        assert_eq!(c.waivers.len(), 1);
        assert_eq!(c.waivers[0].line, 5);
    }
}
