//! The rule engine: per-line token rules over cleaned source, the
//! golden-serialization scope scanner, waiver application, and the
//! manifest-level `unsafe-header` check.

use crate::config;
use crate::lexer::{self, Waiver};
use crate::report::Finding;

/// Rule names, as they appear in findings and `allow(...)` waivers.
pub const RULES: &[&str] = &[
    "wall-clock",
    "random-state",
    "thread-spawn",
    "unsafe-header",
    "golden-serialization",
];

/// A needle-based rule: flag identifier-boundary occurrences of any
/// needle, outside the allowlisted modules.
struct TokenRule {
    name: &'static str,
    needles: &'static [&'static str],
    allow: &'static [&'static str],
    message: &'static str,
}

const TOKEN_RULES: &[TokenRule] = &[
    TokenRule {
        name: "wall-clock",
        needles: &["Instant::now", "SystemTime"],
        allow: config::WALL_CLOCK_ALLOW,
        message: "host clock read in the simulation domain",
    },
    TokenRule {
        name: "random-state",
        needles: &["HashMap", "HashSet"],
        allow: config::RANDOM_STATE_ALLOW,
        message: "randomly seeded hash collection (use FastHashBuilder or BTreeMap/BTreeSet)",
    },
    TokenRule {
        name: "thread-spawn",
        needles: &["std::thread"],
        allow: config::THREAD_SPAWN_ALLOW,
        message: "thread use outside the shard window executor / SweepExecutor",
    },
];

/// Result of linting one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Surviving (unwaived) findings, plus any waiver-hygiene errors.
    pub findings: Vec<Finding>,
    /// Well-formed waivers the file carries (used or not).
    pub waivers: usize,
}

/// Lints one `.rs` source. `rel` is the repo-relative path used both
/// for allowlist matching and in findings.
pub fn check_source(rel: &str, source: &str) -> FileReport {
    let cleaned = lexer::clean(source);
    let lines: Vec<&str> = cleaned.text.lines().collect();
    let mut raw = Vec::new();

    for rule in TOKEN_RULES {
        if config::allowed(rel, rule.allow) {
            continue;
        }
        for (idx, line) in lines.iter().enumerate() {
            for needle in rule.needles {
                if has_token(line, needle) {
                    raw.push(Finding {
                        path: rel.to_string(),
                        line: idx + 1,
                        rule: rule.name,
                        message: format!("`{needle}`: {}", rule.message),
                    });
                }
            }
        }
    }

    for range in golden_scopes(&lines) {
        let end = range.1.min(lines.len().saturating_sub(1));
        for (idx, line) in lines.iter().enumerate().take(end + 1).skip(range.0) {
            for needle in config::GOLDEN_FORBIDDEN {
                if has_token(line, needle) {
                    raw.push(Finding {
                        path: rel.to_string(),
                        line: idx + 1,
                        rule: "golden-serialization",
                        message: format!(
                            "wall-clock-derived `{needle}` inside a golden-serialization body"
                        ),
                    });
                }
            }
        }
    }

    apply_waivers(rel, raw, &cleaned.waivers)
}

/// Applies the file's waivers to its raw findings: a finding is
/// suppressed by a same-rule waiver on its own line or the line above.
/// Waiver hygiene violations (malformed syntax, unknown rule, missing
/// justification, waiver matching nothing) become findings themselves,
/// so the exception list can never rot.
fn apply_waivers(rel: &str, raw: Vec<Finding>, waivers: &[Waiver]) -> FileReport {
    let mut findings = Vec::new();
    let mut used = vec![false; waivers.len()];
    let mut well_formed = 0usize;

    for (wi, w) in waivers.iter().enumerate() {
        if !w.well_formed {
            findings.push(Finding {
                path: rel.to_string(),
                line: w.line,
                rule: "waiver",
                message: "malformed waiver (expected `// xlint: allow(<rule>) — <justification>`)"
                    .to_string(),
            });
            used[wi] = true; // already reported; don't double-report as unused
            continue;
        }
        well_formed += 1;
        if !RULES.contains(&w.rule.as_str()) {
            findings.push(Finding {
                path: rel.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!("waiver names unknown rule `{}`", w.rule),
            });
            used[wi] = true;
            continue;
        }
        if w.justification.is_empty() {
            findings.push(Finding {
                path: rel.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!("waiver for `{}` has no justification", w.rule),
            });
            // Justification-less waivers still suppress: the error above
            // is the actionable finding, not the site it covers.
        }
    }

    for f in raw {
        let hit = waivers.iter().position(|w| {
            w.well_formed && w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line)
        });
        match hit {
            Some(wi) => used[wi] = true,
            None => findings.push(f),
        }
    }

    for (wi, w) in waivers.iter().enumerate() {
        if !used[wi] {
            findings.push(Finding {
                path: rel.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "waiver for `{}` matches no finding (stale — remove it)",
                    w.rule
                ),
            });
        }
    }

    crate::report::sort(&mut findings);
    FileReport {
        findings,
        waivers: well_formed,
    }
}

/// True when `line` contains `needle` at identifier boundaries (the
/// characters on both sides, if any, are not `[A-Za-z0-9_]`), so
/// `HashMap` never matches inside `FastHashMap`.
fn has_token(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(at) = line[from..].find(needle) {
        let start = from + at;
        let end = start + needle.len();
        let ok_left = start == 0 || !is_ident(bytes[start - 1]);
        let ok_right = end == bytes.len() || !is_ident(bytes[end]);
        if ok_left && ok_right {
            return true;
        }
        from = start + 1;
    }
    false
}

/// 0-based inclusive line ranges of every golden-serialization function
/// body (`fn <name>` for each configured name) in the cleaned lines.
fn golden_scopes(lines: &[&str]) -> Vec<(usize, usize)> {
    let mut scopes = Vec::new();
    for name in config::GOLDEN_FNS {
        for (idx, line) in lines.iter().enumerate() {
            let Some(at) = line.find("fn ") else { continue };
            let after = line[at + 3..].trim_start();
            if !(after.starts_with(name)
                && after[name.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_'))
            {
                continue;
            }
            // Brace-match from the signature to the end of the body.
            let mut depth = 0i32;
            let mut entered = false;
            'outer: for (j, body_line) in lines.iter().enumerate().skip(idx) {
                for c in body_line.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            entered = true;
                        }
                        '}' => {
                            depth -= 1;
                            if entered && depth == 0 {
                                scopes.push((idx, j));
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    scopes
}

/// The `unsafe-header` rule for one crate: `dir` is the crate directory
/// (repo-relative, for findings), `manifest` its `Cargo.toml` text,
/// `crate_root` its `src/lib.rs` text (empty when absent), and
/// `root_manifest` the workspace root `Cargo.toml`. The crate passes
/// when it adopts the workspace lint table (and that table forbids
/// `unsafe_code`) or when its crate root carries the literal header.
pub fn check_unsafe_header(
    dir: &str,
    manifest: &str,
    crate_root: &str,
    root_manifest: &str,
) -> Option<Finding> {
    let header = lexer::clean(crate_root)
        .text
        .contains("#![forbid(unsafe_code)]");
    let adopts = toml_section_has(manifest, "lints", "workspace = true");
    let workspace_forbids = toml_section_has(
        root_manifest,
        "workspace.lints.rust",
        "unsafe_code = \"forbid\"",
    );
    if header || (adopts && workspace_forbids) {
        return None;
    }
    let message = if adopts {
        "crate adopts [lints] workspace = true but the workspace table does not forbid unsafe_code"
    } else {
        "crate root lacks #![forbid(unsafe_code)] and the manifest does not adopt the \
         workspace lint table"
    };
    Some(Finding {
        path: format!("{}/Cargo.toml", dir.trim_end_matches('/')),
        line: 1,
        rule: "unsafe-header",
        message: message.to_string(),
    })
}

/// Minimal TOML scan: does `[section]` contain the exact (trimmed)
/// `key_value` line before the next section header? Comments are
/// stripped; quoting/whitespace beyond `trim` is not normalized — the
/// policy controls both sides of the comparison.
fn toml_section_has(toml: &str, section: &str, key_value: &str) -> bool {
    let mut in_section = false;
    for line in toml.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') && line.ends_with(']') {
            in_section = line[1..line.len() - 1].trim() == section;
            continue;
        }
        if in_section && line == key_value {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries_exclude_fasthash_aliases() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(has_token("let m: HashMap<u64, u32> = x;", "HashMap"));
        assert!(!has_token("let m: FastHashMap<u64, u32> = x;", "HashMap"));
        assert!(!has_token("struct HashMapLike;", "HashMap"));
        assert!(has_token("std::thread::spawn(f)", "std::thread"));
    }

    #[test]
    fn golden_scope_spans_the_function_body_only() {
        let src = "fn other() { phases(); }\nfn trace_json(&self) -> String {\n    let x = 1;\n    x.to_string()\n}\nfn after() { chrome_trace(); }\n";
        let lines: Vec<&str> = src.lines().collect();
        let scopes = golden_scopes(&lines);
        assert_eq!(scopes, vec![(1, 4)]);
    }

    #[test]
    fn golden_rule_fires_inside_trace_json() {
        let src = "impl R {\n    pub fn trace_json(&self) -> String {\n        format!(\"{}\", self.phases.estimate)\n    }\n}\n";
        let rep = check_source("crates/x/src/report.rs", src);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "golden-serialization");
        assert_eq!(rep.findings[0].line, 3);
    }

    #[test]
    fn waiver_suppresses_same_or_next_line_only() {
        let src = "// xlint: allow(wall-clock) — measured outside the sim domain\nlet t = Instant::now();\nlet u = Instant::now();\n";
        let rep = check_source("crates/x/src/a.rs", src);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].line, 3);
        assert_eq!(rep.waivers, 1);
    }

    #[test]
    fn unused_and_unjustified_waivers_are_errors() {
        let stale = check_source(
            "crates/x/src/a.rs",
            "// xlint: allow(wall-clock) — nothing here\n",
        );
        assert_eq!(stale.findings.len(), 1);
        assert!(stale.findings[0].message.contains("matches no finding"));

        let bare = check_source(
            "crates/x/src/a.rs",
            "let t = Instant::now(); // xlint: allow(wall-clock)\n",
        );
        assert_eq!(bare.findings.len(), 1);
        assert!(bare.findings[0].message.contains("no justification"));

        let unknown = check_source("crates/x/src/a.rs", "// xlint: allow(no-such-rule) — x\n");
        assert_eq!(unknown.findings.len(), 1);
        assert!(unknown.findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn unsafe_header_accepts_either_mechanism() {
        let root = "[workspace.lints.rust]\nunsafe_code = \"forbid\"\n";
        assert!(
            check_unsafe_header("c", "[package]\n", "#![forbid(unsafe_code)]\n", root).is_none()
        );
        assert!(
            check_unsafe_header("c", "[package]\n[lints]\nworkspace = true\n", "", root).is_none()
        );
        let f = check_unsafe_header("c", "[package]\n", "//! docs\n", root).unwrap();
        assert_eq!(f.rule, "unsafe-header");
        assert_eq!(f.path, "c/Cargo.toml");
        // Adoption without a forbidding workspace table is still a finding.
        assert!(
            check_unsafe_header("c", "[lints]\nworkspace = true\n", "", "[workspace]\n").is_some()
        );
    }
}
