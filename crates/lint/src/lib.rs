//! # xds-lint — the workspace determinism-contract static-analysis pass
//!
//! Everything this reproduction measures rests on one contract: the
//! simulation domain is a pure function of the scenario spec and seed.
//! Golden traces, K-shard byte-equivalence, thread-count-invariant
//! sweeps and pinnable counters are only meaningful because nothing
//! nondeterministic — wall-clock reads, randomly seeded hashing,
//! unordered iteration, stray threads — leaks into it. The dynamic
//! enforcement (golden-trace diffs, shard-equivalence suites) catches a
//! violation only *after* it costs a debugging session; `xlint` rejects
//! it at review time, before any simulation runs.
//!
//! The pass is deliberately dependency-free (a comment/string-stripping
//! lexer plus a line/token rule engine — no `syn`, consistent with the
//! vendored-subset build policy) and runs three ways: as the `xlint`
//! binary (one finding per line, `file:line` first), as the
//! `self_clean` integration test so plain `cargo test` catches
//! violations, and as a named `ci.sh` gate step that additionally pins
//! the waiver count.
//!
//! ## Rules
//!
//! | rule | forbids | allowed in |
//! |---|---|---|
//! | `wall-clock` | `Instant::now`, `SystemTime` | `crates/core/src/trace.rs`, `crates/bench/` |
//! | `random-state` | std `HashMap`/`HashSet` tokens | nowhere (use `FastHashBuilder`/`BTreeMap`) |
//! | `thread-spawn` | `std::thread` | `shard.rs` window executor, `SweepExecutor` |
//! | `unsafe-header` | crates without `forbid(unsafe_code)` | n/a (workspace lint table or literal header) |
//! | `golden-serialization` | `phases`/`chrome_trace`/`phase_*_ns` in `trace_json` bodies | n/a |
//!
//! Site-level exceptions are inline waivers —
//! `// xlint: allow(<rule>) — <justification>` — covering their own
//! line and the next. A waiver without a justification, or one that
//! matches nothing, is itself an error, so the exception list can never
//! rot. The full policy (allowlists, scan roots, crate list) lives in
//! [`config`] — changing it is a reviewable diff.

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::Finding;

/// Outcome of a whole-workspace scan.
#[derive(Debug)]
pub struct Scan {
    /// All surviving findings, in canonical (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// `.rs` files scanned by the source rules.
    pub files: usize,
    /// Well-formed waivers across the workspace — the number `ci.sh`
    /// pins, so growing the exception list requires an explicit diff.
    pub waivers: usize,
}

/// The workspace root this crate was built in, for the binary and the
/// self-clean test (`crates/lint` → two levels up).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

/// Runs every rule over the workspace at `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Scan> {
    let mut findings = Vec::new();
    let mut files = 0usize;
    let mut waivers = 0usize;

    for rel in collect_sources(root)? {
        let source = read(&root.join(&rel))?;
        let rep = rules::check_source(&rel, &source);
        files += 1;
        waivers += rep.waivers;
        findings.extend(rep.findings);
    }

    let root_manifest = read(&root.join("Cargo.toml"))?;
    for dir in config::CRATE_DIRS {
        let manifest = read(&root.join(dir).join("Cargo.toml"))?;
        let crate_root = fs::read_to_string(root.join(dir).join("src/lib.rs")).unwrap_or_default();
        findings.extend(rules::check_unsafe_header(
            dir,
            &manifest,
            &crate_root,
            &root_manifest,
        ));
    }

    report::sort(&mut findings);
    Ok(Scan {
        findings,
        files,
        waivers,
    })
}

/// `fs::read_to_string` with the failing path named in the error — a
/// bare ENOENT is useless when the policy expects 13 crate manifests.
fn read(path: &Path) -> io::Result<String> {
    fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

/// Every scannable `.rs` path under the configured roots,
/// repo-relative, sorted for deterministic reports.
fn collect_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for dir in config::SCAN_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            walk(root, &abs, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if config::skipped(&rel) || config::skipped(&format!("{rel}/")) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_skips_fixtures_vendor_and_target() {
        let root = default_root();
        let sources = collect_sources(&root).expect("workspace readable");
        assert!(sources.iter().any(|p| p == "crates/core/src/runtime.rs"));
        assert!(sources.iter().any(|p| p == "crates/lint/src/lib.rs"));
        assert!(!sources.iter().any(|p| p.starts_with("vendor/")));
        assert!(!sources.iter().any(|p| p.starts_with("target/")));
        assert!(!sources.iter().any(|p| p.contains("tests/fixtures/")));
        let mut sorted = sources.clone();
        sorted.sort();
        assert_eq!(sources, sorted, "deterministic scan order");
    }
}
