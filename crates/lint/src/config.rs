//! The checked-in determinism-contract policy: which directories are
//! scanned, which modules are allowlisted per rule, and which crates
//! must adopt the workspace lint table.
//!
//! Paths are repo-relative with `/` separators. An allowlist entry
//! ending in `/` is a directory prefix; anything else must match the
//! file path exactly. Changing any list here is a reviewable policy
//! change — that is the point of baking it into a source file instead
//! of accepting CLI flags.

/// Directories (relative to the repo root) whose `.rs` files are
/// scanned by the source rules.
pub const SCAN_DIRS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path prefixes never scanned: build output, vendored third-party
/// subsets (dev-deps outside the simulation domain, kept close to
/// upstream idiom), artifacts, and xlint's own deliberately-violating
/// fixture corpus.
pub const SKIP_PREFIXES: &[&str] = &[
    "target/",
    "vendor/",
    "results/",
    "crates/lint/tests/fixtures/",
];

/// `wall-clock`: `Instant::now`/`SystemTime` are determinism hazards —
/// host time must never influence the simulation domain. Allowed only
/// in the flight recorder (wall-clock is its entire subject) and the
/// bench harness (which measures the simulator from outside). The
/// phase-timing blocks of `runtime.rs`/`shard.rs` and the Solstice
/// trace spans carry inline waivers instead: those files are mostly
/// simulation-domain code, and a file-level allowlist entry would hide
/// a genuinely misplaced clock read there.
pub const WALL_CLOCK_ALLOW: &[&str] = &["crates/core/src/trace.rs", "crates/bench/"];

/// `random-state`: std's `HashMap`/`HashSet` default to a randomly
/// seeded SipHash, so iteration order varies run to run — deterministic
/// code must use `xds_metrics::FastHashBuilder`-backed maps or
/// `BTreeMap`/`BTreeSet`. No module is exempt; the one legitimate
/// mention (the `FastHashMap` alias definition) carries a waiver.
pub const RANDOM_STATE_ALLOW: &[&str] = &[];

/// `thread-spawn`: stray threads are both a determinism and a
/// reproducibility hazard. `std::thread` is allowed only in the shard
/// window executor and the sweep executor, whose merge points are
/// designed (and tested) to be schedule-invariant.
pub const THREAD_SPAWN_ALLOW: &[&str] =
    &["crates/core/src/shard.rs", "crates/scenario/src/exec.rs"];

/// `golden-serialization`: function names whose bodies form the
/// golden-trace serialization surface.
pub const GOLDEN_FNS: &[&str] = &["trace_json"];

/// Identifiers that are wall-clock-derived and must therefore never
/// appear inside a golden-serialization body: the epoch phase split,
/// the Chrome-trace payload, and the per-phase span fields the bench
/// artifact emits.
pub const GOLDEN_FORBIDDEN: &[&str] = &[
    "phases",
    "chrome_trace",
    "phase_estimate_ns",
    "phase_decompose_ns",
    "phase_apply_ns",
];

/// Every workspace crate directory, for the `unsafe-header` rule: each
/// must either adopt the workspace lint table (`[lints] workspace =
/// true` with `unsafe_code = "forbid"` in the root manifest) or carry
/// `#![forbid(unsafe_code)]` in its crate root (the vendored subsets do
/// the latter).
pub const CRATE_DIRS: &[&str] = &[
    ".",
    "crates/sim",
    "crates/net",
    "crates/traffic",
    "crates/switch",
    "crates/hw",
    "crates/metrics",
    "crates/core",
    "crates/estimate",
    "crates/scenario",
    "crates/bench",
    "crates/lint",
    "vendor/proptest",
    "vendor/criterion",
];

/// True when `path` (repo-relative, `/`-separated) is covered by an
/// allowlist entry: a `/`-terminated entry matches as a prefix, any
/// other entry matches exactly.
pub fn allowed(path: &str, allowlist: &[&str]) -> bool {
    allowlist.iter().any(|entry| {
        if let Some(prefix) = entry.strip_suffix('/') {
            path.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('/'))
            // `crates/bench/` covers `crates/bench/src/bench.rs`, not
            // `crates/bench2/...`.
        } else {
            path == *entry
        }
    })
}

/// True when `path` falls under a skipped prefix.
pub fn skipped(path: &str) -> bool {
    SKIP_PREFIXES.iter().any(|p| path.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_entries_cover_subpaths_exactly() {
        assert!(allowed("crates/bench/src/bench.rs", WALL_CLOCK_ALLOW));
        assert!(allowed("crates/core/src/trace.rs", WALL_CLOCK_ALLOW));
        assert!(!allowed("crates/core/src/runtime.rs", WALL_CLOCK_ALLOW));
        assert!(!allowed("crates/benchmarks/src/lib.rs", WALL_CLOCK_ALLOW));
    }

    #[test]
    fn fixture_corpus_is_never_scanned() {
        assert!(skipped(
            "crates/lint/tests/fixtures/wall_clock_violation.rs"
        ));
        assert!(skipped("vendor/criterion/src/lib.rs"));
        assert!(!skipped("crates/lint/tests/fixtures.rs"));
        assert!(!skipped("crates/lint/src/lib.rs"));
    }
}
