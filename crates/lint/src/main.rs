//! `xlint` — the workspace determinism-contract checker.
//!
//! ```text
//! xlint [--root DIR] [--stats]
//! ```
//!
//! Prints one `file:line: rule: message` finding per line and exits
//! non-zero when any survive. `--stats` appends machine-greppable
//! `files scanned:` / `waivers:` / `findings:` lines; `ci.sh` pins the
//! waiver count against a checked-in expected number.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut stats = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => stats = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xlint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "xlint: unknown argument `{other}` (usage: xlint [--root DIR] [--stats])"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(xds_lint::default_root);

    let scan = match xds_lint::scan_workspace(&root) {
        Ok(scan) => scan,
        Err(e) => {
            eprintln!("xlint: scanning {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for f in &scan.findings {
        println!("{f}");
    }
    if stats {
        println!("files scanned: {}", scan.files);
        println!("waivers: {}", scan.waivers);
        println!("findings: {}", scan.findings.len());
    }
    if scan.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
