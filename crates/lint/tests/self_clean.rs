//! The live workspace must lint clean: zero unwaived findings, every
//! waiver justified and load-bearing. This is the `cargo test` face of
//! the `xlint` gate — `ci.sh` additionally runs the binary and pins
//! the waiver count.

#[test]
fn workspace_has_zero_findings() {
    let root = xds_lint::default_root();
    let scan = xds_lint::scan_workspace(&root).expect("workspace sources readable");
    assert!(
        scan.findings.is_empty(),
        "xlint found determinism-contract violations:\n{}",
        scan.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity on scan coverage: the workspace is ~120 files; a scanner
    // that silently skipped a tree would pass the empty-findings assert
    // while checking nothing.
    assert!(
        scan.files > 100,
        "suspiciously few files scanned ({}) — did a scan root move?",
        scan.files
    );
    // Waivers exist (the phase-timing blocks carry them) and every one
    // is justified and matches a finding — enforced as findings above,
    // so here we only pin that the mechanism is exercised.
    assert!(
        scan.waivers > 0,
        "expected the checked-in waivers to be seen"
    );
}
