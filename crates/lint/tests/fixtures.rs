//! Pins `xlint`'s rule engine against the fixture corpus: for every
//! rule, at least one violating and one waived variant, with findings
//! matched exactly (rule + line), so a rule that silently stops firing
//! — or starts over-firing — fails here before it costs a golden-trace
//! debugging session.

use std::fs;
use std::path::{Path, PathBuf};

use xds_lint::rules;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Runs the source rules on one fixture under a neutral (never
/// allowlisted) repo-relative path and returns `(rule, line)` pairs.
fn check(name: &str) -> Vec<(&'static str, usize)> {
    let source = fs::read_to_string(fixture_dir().join(name)).expect("fixture readable");
    let rel = format!("crates/fixture/src/{name}");
    rules::check_source(&rel, &source)
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn wall_clock_violating_and_waived() {
    assert_eq!(
        check("wall_clock_violation.rs"),
        vec![("wall-clock", 6), ("wall-clock", 10)]
    );
    assert_eq!(check("wall_clock_waived.rs"), vec![]);
}

#[test]
fn random_state_violating_and_waived() {
    assert_eq!(
        check("random_state_violation.rs"),
        vec![
            ("random-state", 5),
            ("random-state", 8),
            ("random-state", 9)
        ]
    );
    assert_eq!(check("random_state_waived.rs"), vec![]);
}

#[test]
fn thread_spawn_violating_and_waived() {
    assert_eq!(
        check("thread_spawn_violation.rs"),
        vec![("thread-spawn", 6), ("thread-spawn", 9)]
    );
    assert_eq!(check("thread_spawn_waived.rs"), vec![]);
}

#[test]
fn golden_serialization_violating_and_waived() {
    assert_eq!(
        check("golden_serialization_violation.rs"),
        vec![("golden-serialization", 9), ("golden-serialization", 10)]
    );
    assert_eq!(check("golden_serialization_waived.rs"), vec![]);
}

#[test]
fn waiver_hygiene_is_enforced() {
    // A bare waiver suppresses its site but is itself the finding.
    assert_eq!(check("waiver_no_justification.rs"), vec![("waiver", 6)]);
    // Stale and unknown-rule waivers are findings too.
    assert_eq!(check("waiver_stale.rs"), vec![("waiver", 5), ("waiver", 8)]);
}

#[test]
fn allowlisted_modules_are_exempt() {
    // The same violating source, relocated into an allowlisted module,
    // is clean: the flight recorder may read the clock.
    let source =
        fs::read_to_string(fixture_dir().join("wall_clock_violation.rs")).expect("fixture");
    let rep = rules::check_source("crates/core/src/trace.rs", &source);
    assert_eq!(rep.findings, vec![]);
    let rep = rules::check_source("crates/bench/src/bench.rs", &source);
    assert_eq!(rep.findings, vec![]);
}

#[test]
fn unsafe_header_variants() {
    let root_manifest = "[workspace.lints.rust]\nunsafe_code = \"forbid\"\n";
    let case = |variant: &str| {
        let dir = fixture_dir().join("unsafe_header").join(variant);
        let manifest = fs::read_to_string(dir.join("Cargo.toml")).expect("manifest");
        let lib = fs::read_to_string(dir.join("src/lib.rs")).expect("lib.rs");
        rules::check_unsafe_header(
            &format!("crates/lint/tests/fixtures/unsafe_header/{variant}"),
            &manifest,
            &lib,
            root_manifest,
        )
    };
    let finding = case("violating").expect("must fire");
    assert_eq!(finding.rule, "unsafe-header");
    assert!(finding.path.ends_with("violating/Cargo.toml"));
    assert!(case("adopting").is_none());
    assert!(case("header").is_none());
}
