//! Fixture: wall-clock-derived fields inside a golden-serialization
//! body. Lines 9 and 10 are findings; the helper mentioning `phases`
//! outside `trace_json` (lines 15–17) is not.

pub struct R;

impl R {
    pub fn trace_json(&self) -> String {
        let mut out = format!("{}", self.phases.estimate);
        out.push_str(&self.chrome_trace.clone().unwrap_or_default());
        out
    }
}

pub fn phases_elsewhere_is_fine(phases: u64) -> u64 {
    phases + 1
}
