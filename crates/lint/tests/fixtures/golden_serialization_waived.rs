//! Fixture: a golden-serialization mention behind a justified waiver.
//! Zero findings.

pub struct R;

impl R {
    pub fn trace_json(&self) -> String {
        // xlint: allow(golden-serialization) — fixture: asserting the field is absent, not serializing it
        assert!(self.chrome_trace.is_none());
        String::from("{}")
    }
}
