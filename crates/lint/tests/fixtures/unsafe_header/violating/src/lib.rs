//! Fixture crate root without an unsafe_code forbid.
//! A comment saying #![forbid(unsafe_code)] must not count.
