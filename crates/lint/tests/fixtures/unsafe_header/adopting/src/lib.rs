//! Fixture crate root relying on the workspace lint table.
