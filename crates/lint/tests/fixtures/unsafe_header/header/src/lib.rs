//! Fixture crate root carrying the literal header.
#![forbid(unsafe_code)]
