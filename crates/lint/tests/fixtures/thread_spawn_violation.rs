//! Fixture: `std::thread` outside the shard window executor and the
//! `SweepExecutor`. The spawn on line 6 and the import on line 9 are
//! findings; `std::thread` in this prose is not.

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}

use std::thread;

pub fn reaches_threads_through_the_import() {
    let _ = thread::available_parallelism();
}
