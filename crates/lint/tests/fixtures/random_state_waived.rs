//! Fixture: a deliberate std-`HashMap` use behind a justified waiver
//! (the `FastHashMap`-alias-definition pattern). Zero findings.

// xlint: allow(random-state) — fixture: hasher pinned to a deterministic builder on this very line
pub type PinnedMap<K, V> = std::collections::HashMap<K, V, DetBuilder>;
