//! Fixture: randomly seeded std hash collections. The import on line 5
//! and the uses on lines 8 and 9 are findings; the `FastHashMap` on
//! line 10 is not (token boundaries exclude it).

use std::collections::HashMap;

pub fn build() {
    let a: HashMap<u64, u64> = HashMap::new();
    let b = std::collections::HashSet::<u32>::new();
    let c: FastHashMap<u64, u64> = FastHashMap::default();
    let _ = (a, b, c);
}
