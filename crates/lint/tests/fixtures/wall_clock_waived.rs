//! Fixture: the same clock reads, each carrying a justified waiver —
//! one on its own line, one on the line above. Zero findings.

pub fn epoch_stamp() -> std::time::Instant {
    std::time::Instant::now() // xlint: allow(wall-clock) — fixture: span capture outside the sim domain
}

pub fn wall_seconds() -> u64 {
    // xlint: allow(wall-clock) — fixture: artifact date stamp, never enters a golden
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
}
