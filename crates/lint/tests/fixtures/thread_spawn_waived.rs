//! Fixture: a `std::thread` use behind a justified waiver. Zero
//! findings.

pub fn scoped_workers() {
    // xlint: allow(thread-spawn) — fixture: schedule-invariant merge, results identical for any worker count
    std::thread::scope(|_s| {});
}
