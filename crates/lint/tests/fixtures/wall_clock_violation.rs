//! Fixture: unwaived host-clock reads in simulation-domain code.
//! `Instant::now` in prose like this must NOT count — only the reads
//! on lines 6 and 10 are findings.

pub fn epoch_stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn wall_seconds() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
}
