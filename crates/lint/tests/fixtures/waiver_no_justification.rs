//! Fixture: a waiver with no justification. The clock read itself is
//! suppressed, but the bare waiver on line 6 is a finding — the
//! exception list must explain itself.

pub fn stamp() -> std::time::Instant {
    // xlint: allow(wall-clock)
    std::time::Instant::now()
}
