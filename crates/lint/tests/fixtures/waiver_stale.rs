//! Fixture: a justified waiver that matches nothing (line 5) and a
//! waiver naming a rule that does not exist (line 8). Both are
//! findings — stale exceptions rot the allowlist.

// xlint: allow(thread-spawn) — nothing on the next line spawns anything
pub fn innocuous() {}

// xlint: allow(warp-core-breach) — no such rule
pub fn also_innocuous() {}
