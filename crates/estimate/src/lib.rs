//! `xds-estimate` — the fast-estimate fidelity tier.
//!
//! A second way to evaluate a scenario point, decomposed instead of
//! simulated: the fabric's destination links become independent
//! mini-problems solved by closed-form queueing models (stationary
//! traffic) or tiny seeded slotted simulations (rotating or faulted
//! traffic), and the per-link outcomes are composed back into a
//! [`RunReport`](xds_core::report::RunReport) whose columns are
//! bit-compatible with exact-tier sweep rows. The point of the tier is
//! scale: a kilofabric point that costs the exact simulator seconds
//! costs the estimator microseconds, at an accuracy loss that
//! `sweep validate-estimates` quantifies per metric.
//!
//! The tier honors the repo's determinism contract: every random
//! stream forks off the point's seed in a fixed order on one thread, no
//! wall-clock enters the estimate domain, and the same problem always
//! composes the same report byte-for-byte.

#![warn(missing_docs)]

mod compose;
mod minisim;
mod model;
mod profile;

pub use model::EstimateProblem;
pub use profile::{ClassProfile, SizeProfile};

use xds_core::report::RunReport;

/// Solves one translated scenario point at the estimate tier.
pub fn estimate(problem: &EstimateProblem) -> RunReport {
    model::solve(problem)
}
