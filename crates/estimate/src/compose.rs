//! Composition: per-link mini-problem outcomes folded back into one
//! [`RunReport`], the same measurement bundle the exact tier emits.
//!
//! The link solvers produce fluid quantities — delivered bytes, mean
//! waits, residual backlogs. This module converts them into the exact
//! tier's vocabulary: latency histograms synthesized from the mean
//! waits via a fixed exponential quantile ladder
//! ([`xds_metrics::record_wait_population`]), FCT statistics per size
//! class from the path rate plus wait, drop counters from overflow
//! bytes, and the schedule-level OCS ledger (reconfigurations, dark
//! time) from the derived [`ScheduleModel`]. Every synthesized field
//! flows through the same `RunReport::metric_columns` accessor layer,
//! so estimate rows are column-compatible with exact rows by
//! construction.

use xds_core::report::RunReport;
use xds_metrics::{record_wait_population, FctStats, SizeClass};
use xds_sim::{SimDuration, SimRng};
use xds_switch::Site;

use crate::model::{EstimateProblem, LinkOutcome, ScheduleModel};
use crate::profile::SizeProfile;

/// Samples drawn to estimate the mean decision latency of the placement
/// timing model (the exact tier samples it once per epoch).
const DECISION_SAMPLES: u32 = 32;

/// Exponential-tail multipliers for the synthesized FCT quantiles:
/// `-ln(1-q)` at q = 0.5 and 0.99, plus a 7σ-ish cap for the max.
const FCT_P50_MULT: f64 = 0.693;
const FCT_P99_MULT: f64 = 4.605;
const FCT_MAX_MULT: f64 = 7.0;

/// Composes the solved links of one point into a [`RunReport`].
pub(crate) fn compose(
    p: &EstimateProblem,
    sched: &ScheduleModel,
    profile: &SizeProfile,
    agg_bps: f64,
    links: &[LinkOutcome],
    degraded_ns: u64,
    decision_rng: &mut SimRng,
) -> RunReport {
    let n = p.cfg.n_ports;
    let mtu = (p.cfg.mtu as u64).max(1);
    let horizon_ns = p.duration.as_nanos().max(1);
    let horizon_s = p.duration.as_secs_f64();

    let mut r = RunReport::skeleton(
        p.scheduler_name.clone(),
        p.cfg.placement.label(),
        p.duration,
    );
    r.measured_deliveries = p.measured_deliveries;
    r.measured_buffers = p.measured_buffers;

    // ---- background totals across links -------------------------------
    let mut arrival = 0.0f64;
    let mut eps_del = 0.0f64;
    let mut ocs_del = 0.0f64;
    let mut voq_drop = 0.0f64;
    let mut eps_drop = 0.0f64;
    let mut dark_drop = 0.0f64;
    let mut failover = 0.0f64;
    let mut peak_backlog = 0.0f64;
    for l in links {
        arrival += l.arrival_bytes;
        eps_del += l.eps_delivered;
        ocs_del += l.ocs_delivered;
        voq_drop += l.voq_drop_bytes;
        eps_drop += l.eps_drop_bytes;
        dark_drop += l.dark_drop_bytes;
        failover += l.failover_bytes;
        peak_backlog = peak_backlog.max(l.backlog_bytes);
    }

    // ---- interactive apps (CBR streams ride the EPS path) -------------
    let eps_quantum_ns = p.cfg.eps_rate.tx_time(mtu).as_nanos();
    let mut app_bytes = 0u64;
    let mut app_pkts = 0u64;
    let mut jitter_acc = 0.0f64;
    let mut jitter_worst = 0.0f64;
    for app in &p.apps {
        let start_ns = app.start.as_nanos();
        if start_ns >= horizon_ns {
            continue;
        }
        let interval_ns = app.interval.as_nanos().max(1);
        let pkts = (horizon_ns - start_ns) / interval_ns;
        app_bytes += pkts * app.pkt_bytes as u64;
        app_pkts += pkts;
        let dst_wait = links
            .get(app.dst.index() % n)
            .map(|l| l.eps_wait_ns)
            .unwrap_or(0.0);
        if p.measured_deliveries && pkts > 0 {
            // One-way delay: serialization of the app packet plus the
            // destination link's EPS wait.
            let base = p.cfg.eps_rate.tx_time(app.pkt_bytes as u64).as_nanos();
            record_wait_population(&mut r.latency_interactive, base, dst_wait, pkts);
            // RFC 3550 jitter of a uniformly jittered sender (E|Δ| =
            // 2J/3) plus half the queueing variability.
            let j = (2.0 / 3.0) * app.send_jitter.as_nanos() as f64 + 0.5 * dst_wait;
            jitter_acc += j;
            jitter_worst = jitter_worst.max(j);
        }
    }
    if p.measured_deliveries && app_pkts > 0 {
        let mean = jitter_acc / p.apps.len().max(1) as f64;
        r.voip_jitter_mean_ns = Some(mean);
        r.voip_jitter_max_ns = Some((2.0 * jitter_worst).max(mean));
    }

    // ---- byte / flow ledgers ------------------------------------------
    r.offered_bytes = arrival.round() as u64 + app_bytes;
    let bg_flows = (agg_bps * horizon_s / profile.mean_bytes).round() as u64;
    r.offered_flows = bg_flows + p.apps.len() as u64;
    r.delivered_eps_bytes = eps_del.round() as u64 + app_bytes;
    r.delivered_ocs_bytes = ocs_del.round() as u64;

    r.drops.voq_full = (voq_drop / mtu as f64).round() as u64;
    r.drops.eps_full = (eps_drop / mtu as f64).round() as u64;
    r.drops.link_dark = (dark_drop / mtu as f64).round() as u64;

    r.eps.delivered_bytes = r.delivered_eps_bytes;
    r.eps.delivered_packets = eps_del.round() as u64 / mtu + app_pkts;
    r.eps.drops = r.drops.eps_full;
    r.eps.dropped_bytes = eps_drop.round() as u64;
    r.ocs.delivered_bytes = r.delivered_ocs_bytes;
    r.ocs.delivered_packets = r.delivered_ocs_bytes / mtu;

    // ---- schedule ledger ----------------------------------------------
    // Epoch starts arrive at the stretched cadence (a decision slower
    // than the epoch delays the next epoch start, exactly as in the
    // exact tier's event loop).
    r.decisions = horizon_ns / sched.cadence_ns.max(1);
    // Epochs that actually install a schedule: the installation
    // transient (`active`) eats the leading ones.
    let installs = (r.decisions as f64 * sched.active).floor() as u64;
    r.ocs.reconfigurations = installs * sched.entries;
    r.ocs.dark_time = if r.ocs.reconfigurations == 0 {
        // No reconfigurations (pure packet switch, or a horizon shorter
        // than one decision): the fabric is never dark and the duty-cycle
        // column reads 1.0, matching the exact tier.
        SimDuration::ZERO
    } else {
        SimDuration::from_nanos(
            p.cfg
                .reconfig
                .as_nanos()
                .saturating_mul(r.ocs.reconfigurations),
        )
        .min(p.duration)
    };
    let mut lat_acc = 0.0f64;
    for _ in 0..DECISION_SAMPLES {
        lat_acc += p.cfg.placement.decision_latency(n, decision_rng).as_nanos() as f64;
    }
    r.decision_latency_mean_ns = lat_acc / DECISION_SAMPLES as f64;

    // ---- packet latency histograms ------------------------------------
    let line_quantum_ns = p.cfg.line_rate.tx_time(mtu).as_nanos();
    if p.measured_deliveries {
        for l in links {
            let eps_pkts = (l.eps_delivered / mtu as f64) as u64;
            record_wait_population(
                &mut r.latency_short,
                eps_quantum_ns,
                l.eps_wait_ns,
                eps_pkts,
            );
            let ocs_pkts = (l.ocs_delivered / mtu as f64) as u64;
            record_wait_population(
                &mut r.latency_bulk,
                line_quantum_ns,
                l.ocs_wait_ns,
                ocs_pkts,
            );
        }
    }

    // ---- flow completion times ----------------------------------------
    if p.measured_deliveries {
        // Byte-weighted mean waits over the two paths.
        let wmean = |f: fn(&LinkOutcome) -> (f64, f64)| -> f64 {
            let (acc, w) = links
                .iter()
                .map(f)
                .fold((0.0, 0.0), |(a, b), (x, y)| (a + x * y, b + y));
            if w > 0.0 {
                acc / w
            } else {
                0.0
            }
        };
        let eps_wait = wmean(|l| (l.eps_wait_ns, l.eps_delivered.max(0.0)));
        let ocs_wait = wmean(|l| (l.ocs_wait_ns, l.ocs_delivered.max(0.0)));
        let eps_bps = p.cfg.eps_rate.bytes_per_sec() as f64;
        let ocs_bps = (p.cfg.line_rate.bytes_per_sec() as f64 * sched.duty * sched.active).max(1.0);
        let offered = r.offered_bytes.max(1) as f64;
        let delivery_frac =
            ((r.delivered_eps_bytes + r.delivered_ocs_bytes) as f64 / offered).min(1.0);

        let mut stats: Vec<(SizeClass, FctStats)> = Vec::new();
        for class in [SizeClass::Mice, SizeClass::Medium, SizeClass::Elephant] {
            let cp = profile.of(class);
            if cp.count_share <= 0.0 {
                continue;
            }
            // Mice ride the EPS; bulk classes ride circuits unless the
            // point is the pure packet-switch baseline.
            let (rate, wait) = if p.eps_only || class == SizeClass::Mice {
                (eps_bps.max(1.0), eps_wait)
            } else {
                (ocs_bps, ocs_wait)
            };
            let base = cp.mean_bytes / rate * 1e9 + line_quantum_ns as f64;
            let mean = base + wait;
            let complete = delivery_frac * (1.0 - mean / horizon_ns as f64).clamp(0.0, 1.0);
            let count = (bg_flows as f64 * cp.count_share * complete).round() as u64;
            if count == 0 {
                continue;
            }
            let s = FctStats {
                count,
                mean_ns: mean,
                p50_ns: (base + FCT_P50_MULT * wait).round() as u64,
                p99_ns: (base + FCT_P99_MULT * wait).round() as u64,
                max_ns: (base + FCT_MAX_MULT * wait).round() as u64,
            };
            stats.push((class, s));
        }
        r.completed_flows = stats.iter().map(|(_, s)| s.count).sum();
        if !stats.is_empty() {
            let total = r.completed_flows.max(1) as f64;
            let mean = stats
                .iter()
                .map(|(_, s)| s.mean_ns * s.count as f64)
                .sum::<f64>()
                / total;
            // Walk classes by ascending mean FCT to place the overall
            // quantiles in the right class.
            let mut by_mean: Vec<&FctStats> = stats.iter().map(|(_, s)| s).collect();
            by_mean.sort_by(|a, b| a.mean_ns.total_cmp(&b.mean_ns));
            let quantile_of = |q: f64| -> &FctStats {
                let target = q * total;
                let mut cum = 0.0;
                for s in &by_mean {
                    cum += s.count as f64;
                    if cum >= target {
                        return s;
                    }
                }
                by_mean.last().expect("nonempty")
            };
            r.fct_overall = Some(FctStats {
                count: r.completed_flows,
                mean_ns: mean,
                p50_ns: quantile_of(0.5).p50_ns,
                p99_ns: quantile_of(0.99).p99_ns,
                max_ns: by_mean.iter().map(|s| s.max_ns).max().unwrap_or(0),
            });
            for (class, s) in stats {
                match class {
                    SizeClass::Mice => r.fct_mice = Some(s),
                    SizeClass::Medium => r.fct_medium = Some(s),
                    SizeClass::Elephant => r.fct_elephant = Some(s),
                }
            }
        }
    }

    // ---- buffer peaks --------------------------------------------------
    if p.measured_buffers {
        match p.cfg.placement.buffering_site() {
            Site::Switch => r.peak_switch_buffer = peak_backlog.round() as u64,
            Site::Host => r.peak_host_buffer = peak_backlog.round() as u64,
        }
    }

    // ---- fault ledger & event scale ------------------------------------
    r.fault_degraded_ns = degraded_ns;
    r.fault_failover_bytes = failover.round() as u64;
    let total_pkts = r.eps.delivered_packets + r.ocs.delivered_packets;
    r.events = 2 * total_pkts + r.offered_flows + r.decisions;

    r
}
